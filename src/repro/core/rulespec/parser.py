"""The rule-specification language: lexer, AST and parser.

The paper: "We define a simple yet flexible rule specification language
that allows operators to quickly customize G-RCA into different RCA
tools as new problems need to be investigated."

A specification names the application and its symptom event, then lists
diagnosis rules.  Rules either pull their join parameters from the
Knowledge Library (``use library``) or spell them out::

    application "bgp-flaps"
    symptom "eBGP flap"

    # paper example: hold-timer delay + syslog timestamp noise
    rule "eBGP flap" -> "Interface flap" priority 160 {
        symptom expand start/start 180 5
        diagnostic expand start/end 5 5
        join router:neighbor-ip interface at interface
    }

    rule "Interface flap" -> "SONET restoration" use library priority 180

Comments run from ``#`` to end of line.  Event names are quoted strings;
location types and join levels use the :class:`LocationType` /
:class:`JoinLevel` enum values.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional


class RuleSpecError(ValueError):
    """Raised on lexical, syntactic or semantic errors in a spec."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


# ---------------------------------------------------------------------------
# lexer

_TOKEN_SPEC = [
    ("COMMENT", r"#[^\n]*"),
    ("STRING", r'"[^"\n]*"'),
    ("ARROW", r"->"),
    ("NUMBER", r"-?\d+(?:\.\d+)?"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("IDENT", r"[A-Za-z][A-Za-z0-9_/:\-]*"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("BAD", r"."),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int


def tokenize(text: str) -> List[Token]:
    """Split specification text into tokens; rejects bad characters."""
    tokens: List[Token] = []
    line = 1
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        value = match.group()
        if kind == "NEWLINE":
            line += 1
            continue
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "BAD":
            raise RuleSpecError(f"unexpected character {value!r}", line)
        if kind == "STRING":
            value = value[1:-1]
        tokens.append(Token(kind, value, line))
    return tokens


# ---------------------------------------------------------------------------
# AST


@dataclass
class ExpandClause:
    side: str  # "symptom" | "diagnostic"
    option: str  # "start/end" | "start/start" | "end/end"
    left: float
    right: float


@dataclass
class JoinClause:
    symptom_type: str
    diagnostic_type: str
    level: str


@dataclass
class RuleStmt:
    parent: str
    child: str
    use_library: bool = False
    priority: int = 0
    evidence_only: bool = False
    note: str = ""
    symptom_expand: Optional[ExpandClause] = None
    diagnostic_expand: Optional[ExpandClause] = None
    join: Optional[JoinClause] = None
    line: int = 0


@dataclass
class SpecAst:
    application: str = ""
    symptom: str = ""
    rules: List[RuleStmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# parser

_EXPAND_OPTIONS = ("start/end", "start/start", "end/end")


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            last_line = self._tokens[-1].line if self._tokens else 0
            raise RuleSpecError("unexpected end of specification", last_line)
        self._pos += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise RuleSpecError(f"expected {wanted}, got {token.text!r}", token.line)
        return token

    def parse(self) -> SpecAst:
        ast = SpecAst()
        while self._peek() is not None:
            token = self._next()
            if token.kind != "IDENT":
                raise RuleSpecError(f"expected a statement, got {token.text!r}", token.line)
            if token.text == "application":
                ast.application = self._expect("STRING").text
            elif token.text == "symptom":
                ast.symptom = self._expect("STRING").text
            elif token.text == "rule":
                ast.rules.append(self._parse_rule(token.line))
            else:
                raise RuleSpecError(f"unknown statement {token.text!r}", token.line)
        if not ast.symptom:
            raise RuleSpecError("specification lacks a symptom statement")
        return ast

    def _parse_rule(self, line: int) -> RuleStmt:
        parent = self._expect("STRING").text
        self._expect("ARROW")
        child = self._expect("STRING").text
        rule = RuleStmt(parent=parent, child=child, line=line)
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind == "IDENT" and token.text == "use":
                self._next()
                self._expect("IDENT", "library")
                rule.use_library = True
            elif token.kind == "IDENT" and token.text == "priority":
                self._next()
                rule.priority = int(float(self._expect("NUMBER").text))
            elif token.kind == "IDENT" and token.text == "evidence-only":
                self._next()
                rule.evidence_only = True
            elif token.kind == "IDENT" and token.text == "note":
                self._next()
                rule.note = self._expect("STRING").text
            elif token.kind == "LBRACE":
                self._next()
                self._parse_block(rule)
            else:
                break
        return rule

    def _parse_block(self, rule: RuleStmt) -> None:
        while True:
            token = self._next()
            if token.kind == "RBRACE":
                return
            if token.kind != "IDENT":
                raise RuleSpecError(f"expected a clause, got {token.text!r}", token.line)
            if token.text in ("symptom", "diagnostic"):
                clause = self._parse_expand(token.text, token.line)
                if token.text == "symptom":
                    rule.symptom_expand = clause
                else:
                    rule.diagnostic_expand = clause
            elif token.text == "join":
                rule.join = self._parse_join(token.line)
            elif token.text == "priority":
                rule.priority = int(float(self._expect("NUMBER").text))
            elif token.text == "evidence-only":
                rule.evidence_only = True
            elif token.text == "note":
                rule.note = self._expect("STRING").text
            else:
                raise RuleSpecError(f"unknown clause {token.text!r}", token.line)

    def _parse_expand(self, side: str, line: int) -> ExpandClause:
        self._expect("IDENT", "expand")
        option = self._expect("IDENT").text
        if option not in _EXPAND_OPTIONS:
            raise RuleSpecError(
                f"expand option must be one of {_EXPAND_OPTIONS}, got {option!r}", line
            )
        left = float(self._expect("NUMBER").text)
        right = float(self._expect("NUMBER").text)
        return ExpandClause(side, option, left, right)

    def _parse_join(self, line: int) -> JoinClause:
        symptom_type = self._expect("IDENT").text
        diagnostic_type = self._expect("IDENT").text
        self._expect("IDENT", "at")
        level = self._expect("IDENT").text
        del line
        return JoinClause(symptom_type, diagnostic_type, level)


def parse(text: str) -> SpecAst:
    """Parse a rule specification into its AST."""
    return _Parser(tokenize(text)).parse()
