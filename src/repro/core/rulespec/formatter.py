"""Serialize diagnosis graphs back to the rule-specification language.

The inverse of the compiler: lets an application built programmatically
(or refined interactively through the Correlation Tester workflow) be
exported as a spec for review, versioning and redeployment.  Round-trip
guarantee: ``compile_text(format_graph(graph))`` reproduces the graph.
"""

from __future__ import annotations

from typing import List

from ..graph import DiagnosisGraph, DiagnosisRule
from ..temporal import ExpandOption, TemporalExpansion

_OPTION_TEXT = {
    ExpandOption.START_END: "start/end",
    ExpandOption.START_START: "start/start",
    ExpandOption.END_END: "end/end",
}


def _quote(text: str) -> str:
    if '"' in text or "\n" in text:
        raise ValueError(f"cannot serialize name containing quotes/newlines: {text!r}")
    return f'"{text}"'


def _number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _expand_clause(side: str, expansion: TemporalExpansion) -> str:
    return (
        f"    {side} expand {_OPTION_TEXT[expansion.option]} "
        f"{_number(expansion.left)} {_number(expansion.right)}"
    )


def format_rule(rule: DiagnosisRule) -> str:
    """One ``rule`` statement with fully explicit clauses."""
    header = f"rule {_quote(rule.parent_event)} -> {_quote(rule.child_event)}"
    if rule.priority:
        header += f" priority {rule.priority}"
    if not rule.is_root_cause:
        header += " evidence-only"
    if rule.note:
        header += f" note {_quote(rule.note)}"
    body = [
        header + " {",
        _expand_clause("symptom", rule.temporal.symptom),
        _expand_clause("diagnostic", rule.temporal.diagnostic),
        f"    join {rule.spatial.symptom_type.value} "
        f"{rule.spatial.diagnostic_type.value} at {rule.spatial.level.value}",
        "}",
    ]
    return "\n".join(body)


def format_graph(graph: DiagnosisGraph) -> str:
    """The full specification text for a diagnosis graph.

    Rules are emitted in an order the compiler accepts: an edge appears
    only after its parent is reachable (breadth-first from the symptom).
    """
    lines: List[str] = []
    if graph.name:
        lines.append(f"application {_quote(graph.name)}")
    lines.append(f"symptom {_quote(graph.symptom_event)}")
    lines.append("")
    emitted = set()
    frontier = [graph.symptom_event]
    visited = {graph.symptom_event}
    while frontier:
        node = frontier.pop(0)
        for rule in graph.rules_from(node):
            key = (rule.parent_event, rule.child_event, id(rule))
            if key in emitted:
                continue
            emitted.add(key)
            lines.append(format_rule(rule))
            lines.append("")
            if rule.child_event not in visited:
                visited.add(rule.child_event)
                frontier.append(rule.child_event)
    return "\n".join(lines).rstrip() + "\n"
