"""The rule-specification language: text specs -> diagnosis graphs."""

from .compiler import SpecCompiler
from .formatter import format_graph, format_rule
from .parser import RuleSpecError, SpecAst, parse, tokenize

__all__ = [
    "RuleSpecError",
    "SpecAst",
    "SpecCompiler",
    "format_graph",
    "format_rule",
    "parse",
    "tokenize",
]
