"""The Result Browser (Fig. 1).

Operators use the Result Browser to (a) see root-cause *breakdowns* of
many diagnosed symptoms — the views published as Tables IV, VI and
VIII; (b) *filter* symptoms by root cause, e.g. to set aside explained
events and concentrate on the unexplained rest (Section II-E); (c)
*drill down* into one symptom, pulling the raw records around its time
and location from any store table; and (d) *trend* causes over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..collector.store import DataStore, Record
from .engine import Diagnosis
from .reasoning.rule_based import UNKNOWN


def escape_markdown_cell(text: str) -> str:
    """Escape a value for interpolation into a markdown table cell.

    Pipes delimit columns and newlines end rows, so a root-cause label
    containing either would corrupt the table.  Shared by
    :meth:`ResultBrowser.report` and the incident report renderer
    (:mod:`repro.incident.report`).
    """
    return (
        str(text)
        .replace("\\", "\\\\")
        .replace("|", "\\|")
        .replace("\n", " ")
    )


@dataclass(frozen=True)
class BreakdownRow:
    """One row of a root-cause breakdown table."""

    root_cause: str
    count: int
    percentage: float


class ResultBrowser:
    """Breakdowns, filtering, drill-down and trending over diagnoses."""

    def __init__(self, diagnoses: Sequence[Diagnosis]) -> None:
        self.diagnoses: List[Diagnosis] = list(diagnoses)

    def __len__(self) -> int:
        return len(self.diagnoses)

    # ------------------------------------------------------------------
    # breakdown (Tables IV / VI / VIII)

    def breakdown(
        self, order: Optional[Sequence[str]] = None, annotated: bool = False
    ) -> List[BreakdownRow]:
        """Counts and percentages by primary root cause.

        ``order`` fixes row order (a paper table's order, say); causes
        not listed are appended by descending count, with Unknown last.
        With ``annotated=True`` the Unknown bucket splits by evidence
        health (``Diagnosis.annotated_cause``): "no evidence found" vs
        "evidence unavailable".
        """
        counts: Dict[str, int] = {}
        for diagnosis in self.diagnoses:
            cause = diagnosis.annotated_cause if annotated else diagnosis.primary_cause
            counts[cause] = counts.get(cause, 0) + 1
        total = len(self.diagnoses)
        ordered: List[str] = []
        if order:
            ordered.extend(cause for cause in order if cause in counts)
        remaining = sorted(
            (c for c in counts if c not in ordered),
            key=lambda c: (c == UNKNOWN or c.startswith(UNKNOWN + " ("), -counts[c], c),
        )
        ordered.extend(remaining)
        return [
            BreakdownRow(cause, counts[cause], 100.0 * counts[cause] / total)
            for cause in ordered
        ]

    def format_breakdown(self, order: Optional[Sequence[str]] = None) -> str:
        """Render the breakdown in the paper's two-column table style."""
        rows = self.breakdown(order)
        width = max([len("Root Cause")] + [len(r.root_cause) for r in rows])
        lines = [f"{'Root Cause':<{width}}  Percentage (%)"]
        for row in rows:
            lines.append(f"{row.root_cause:<{width}}  {row.percentage:>12.2f}")
        return "\n".join(lines)

    def explained_fraction(self) -> float:
        """Share of symptoms with a diagnosed root cause (PIM's >98%)."""
        if not self.diagnoses:
            return 0.0
        explained = sum(1 for d in self.diagnoses if d.is_explained)
        return explained / len(self.diagnoses)

    # ------------------------------------------------------------------
    # filtering (the iterative-analysis workflow)

    def filter(
        self,
        cause: Optional[str] = None,
        explained: Optional[bool] = None,
        predicate: Optional[Callable[[Diagnosis], bool]] = None,
    ) -> "ResultBrowser":
        """A new browser restricted to matching diagnoses."""
        kept = []
        for diagnosis in self.diagnoses:
            if cause is not None and diagnosis.primary_cause != cause:
                continue
            if explained is not None and diagnosis.is_explained != explained:
                continue
            if predicate is not None and not predicate(diagnosis):
                continue
            kept.append(diagnosis)
        return ResultBrowser(kept)

    def unexplained(self) -> "ResultBrowser":
        """Symptoms with no known root cause — the mining input."""
        return self.filter(explained=False)

    def degraded(self) -> "ResultBrowser":
        """Diagnoses whose evidence feeds were impaired (caveated)."""
        return self.filter(predicate=lambda d: d.is_degraded)

    def low_confidence(self, threshold: float = 0.75) -> "ResultBrowser":
        """Diagnoses with confidence strictly below ``threshold``."""
        return self.filter(predicate=lambda d: d.confidence < threshold)

    def mean_confidence(self) -> float:
        """Average diagnosis confidence (1.0 when the view is empty)."""
        if not self.diagnoses:
            return 1.0
        return sum(d.confidence for d in self.diagnoses) / len(self.diagnoses)

    def with_cause(self, cause: str) -> "ResultBrowser":
        """A browser restricted to one primary root cause."""
        return self.filter(cause=cause)

    # ------------------------------------------------------------------
    # drill-down (manual data exploration)

    def drill_down(
        self,
        store: DataStore,
        diagnosis: Diagnosis,
        window_seconds: float = 600.0,
        tables: Optional[Sequence[str]] = None,
        router: Optional[str] = None,
    ) -> Dict[str, List[Record]]:
        """Raw records around one symptom's time (and router, if known).

        Mirrors "the integrated data drilling-through functionality ...
        to explore additional information such as syslog messages and
        workflow logs that appear on the same router or location as the
        event being analyzed".
        """
        start = diagnosis.symptom.start - window_seconds
        end = diagnosis.symptom.end + window_seconds
        if router is None:
            try:
                router = diagnosis.symptom.location.router_part
            except ValueError:
                router = None
        table_names = list(tables) if tables else sorted(store.tables)
        result: Dict[str, List[Record]] = {}
        for name in table_names:
            table = store.table(name)
            if router is not None and "router" in table.indexed_columns:
                records = table.query(start, end, router=router)
            else:
                records = table.query(start, end)
            if records:
                result[name] = records
        return result

    # ------------------------------------------------------------------
    # trending

    def trend(
        self, bucket_seconds: float = 86400.0
    ) -> Dict[str, List[Tuple[float, int]]]:
        """Per-cause counts over time buckets (daily by default).

        Buckets are floor-aligned to multiples of ``bucket_seconds``, so
        a pre-epoch timestamp lands in the bucket *below* it (e.g. start
        ``-10`` with daily buckets belongs to bucket ``-86400.0``), not
        in bucket ``0``.  ``bucket_seconds`` must be positive.
        """
        if bucket_seconds <= 0:
            raise ValueError(
                f"bucket_seconds must be positive, got {bucket_seconds!r}"
            )
        series: Dict[str, Dict[float, int]] = {}
        for diagnosis in self.diagnoses:
            bucket = diagnosis.symptom.start - (
                diagnosis.symptom.start % bucket_seconds
            )
            per_cause = series.setdefault(diagnosis.primary_cause, {})
            per_cause[bucket] = per_cause.get(bucket, 0) + 1
        return {
            cause: sorted(buckets.items()) for cause, buckets in sorted(series.items())
        }

    def report(self, title: str = "Root cause analysis report") -> str:
        """A self-contained markdown report of this browser's view.

        The textual equivalent of the Result Browser GUI: breakdown
        table, explained fraction, daily trend and a worked example
        trace per cause.
        """
        lines = [f"# {title}", ""]
        lines.append(f"Symptoms diagnosed: **{len(self.diagnoses)}** — "
                     f"explained: **{100 * self.explained_fraction():.1f}%**")
        degraded = len(self.degraded())
        if degraded:
            lines.append("")
            lines.append(
                f"Degraded evidence: **{degraded}** diagnoses carry caveats — "
                f"mean confidence **{self.mean_confidence():.2f}**"
            )
        lines.append("")
        lines.append("## Root cause breakdown")
        lines.append("")
        lines.append("| Root Cause | Count | Percentage (%) |")
        lines.append("|---|---:|---:|")
        for row in self.breakdown():
            lines.append(
                f"| {escape_markdown_cell(row.root_cause)} "
                f"| {row.count} | {row.percentage:.2f} |"
            )
        lines.append("")
        lines.append("## Daily trend")
        lines.append("")
        lines.append("```")
        lines.append(self.format_trend())
        lines.append("```")
        lines.append("")
        lines.append("## Example diagnoses")
        seen = set()
        for diagnosis in self.diagnoses:
            cause = diagnosis.primary_cause
            if cause in seen:
                continue
            seen.add(cause)
            lines.append("")
            lines.append(f"### {cause}")
            lines.append("```")
            lines.append(diagnosis.explain())
            lines.append("```")
        return "\n".join(lines) + "\n"

    def trend_shift(
        self, split_time: float, min_count: int = 5
    ) -> Dict[str, Tuple[float, float]]:
        """Per-cause daily rates before vs after ``split_time``.

        The "identify anomalous behavior that requires investigation
        (e.g. behavioral changes after new software upgrades)" use of
        the BGP application: a cause whose rate jumps after a change
        window stands out.  Causes with fewer than ``min_count`` total
        events are omitted (too noisy to trend).
        """
        starts = [d.symptom.start for d in self.diagnoses]
        if not starts:
            return {}
        lo, hi = min(starts), max(starts)
        before_days = max((split_time - lo) / 86400.0, 1e-9)
        after_days = max((hi - split_time) / 86400.0, 1e-9)
        rates: Dict[str, Tuple[float, float]] = {}
        counts: Dict[str, List[int]] = {}
        for diagnosis in self.diagnoses:
            pair = counts.setdefault(diagnosis.primary_cause, [0, 0])
            pair[diagnosis.symptom.start >= split_time] += 1
        for cause, (before, after) in sorted(counts.items()):
            if before + after < min_count:
                continue
            rates[cause] = (before / before_days, after / after_days)
        return rates

    def format_trend(self, bucket_seconds: float = 86400.0) -> str:
        """Render the trend as aligned text (cause x bucket counts).

        ``bucket_seconds`` must be positive (see :meth:`trend`).
        """
        if bucket_seconds <= 0:
            raise ValueError(
                f"bucket_seconds must be positive, got {bucket_seconds!r}"
            )
        trend = self.trend(bucket_seconds)
        all_buckets = sorted({b for rows in trend.values() for b, _ in rows})
        if not all_buckets:
            return "(no diagnoses)"
        width = max(len(c) for c in trend)
        lines = []
        for cause, rows in trend.items():
            counts = dict(rows)
            cells = " ".join(f"{counts.get(b, 0):>5}" for b in all_buckets)
            lines.append(f"{cause:<{width}}  {cells}")
        return "\n".join(lines)
