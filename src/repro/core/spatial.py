"""Spatial join rules and the location resolver (Section II-C, Fig. 2).

A spatial joining rule is (symptom location type, diagnostic location
type, joining level).  The engine "automatically converts the locations
of symptom and diagnostic events into the same 'join level' location so
that they can be directly compared" — that conversion is the
:class:`LocationResolver`, which folds in every Section II-B utility:
containment from configs, /30 and bundle mappings, the layer-1
inventory, OSPF path simulation with ECMP and BGP egress emulation.

Because routing state is time-varying, every expansion takes the
timestamp of the symptom event and reconstructs the network condition
*at that time*.

That reconstruction is the engine's hottest path — for pair locations
it re-runs OSPF/ECMP path simulation and BGP best-path emulation — yet
routing state only changes at discrete instants.  The resolver therefore
memoizes expansions under a bounded LRU keyed on ``(location, join
level, routing epoch)``, where the epoch is a
:class:`~repro.routing.epoch.RoutingEpoch` version token covering
exactly the state that expansion reads: a cached entry is served for any
timestamp in the same epoch and retired the moment the underlying
OSPF/BGP/config/ingress-map state actually changes.  See
``docs/spatial.md`` for the fingerprinting and invalidation rules.
"""

from __future__ import annotations

import enum
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..routing.epoch import RoutingEpoch
from ..routing.paths import PathService
from .locations import Location, LocationType


class JoinLevel(enum.Enum):
    """The level two locations are converted to before comparison."""

    SAME_LOCATION = "same-location"
    ROUTER = "router"
    LINE_CARD = "line-card"
    INTERFACE = "interface"
    LOGICAL_LINK = "logical-link"
    PHYSICAL_LINK = "physical-link"
    LAYER1_DEVICE = "layer1-device"
    POP = "pop"
    #: alias of ROUTER in comparison semantics; names the intent of
    #: "Backbone Router-level Path" joins where one side is a path
    ROUTER_PATH = "router-path"
    #: alias of LOGICAL_LINK for "link-level path" joins
    LINK_PATH = "link-path"
    #: a specific CDN cache server
    SERVER = "server"
    #: no spatial constraint: any two locations join (used for
    #: network-wide effects such as routing reconvergence shifting
    #: traffic onto a distant link)
    NETWORK = "network"


_LEVEL_CANONICAL = {
    JoinLevel.ROUTER_PATH: JoinLevel.ROUTER,
    JoinLevel.LINK_PATH: JoinLevel.LOGICAL_LINK,
}

_EMPTY: FrozenSet[str] = frozenset()

#: location types whose expansions read only the static topology model
_STATIC_TYPES = frozenset(
    {
        LocationType.ROUTER,
        LocationType.INTERFACE,
        LocationType.LINE_CARD,
        LocationType.LOGICAL_LINK,
        LocationType.PHYSICAL_LINK,
        LocationType.LAYER1_DEVICE,
        LocationType.SERVER,
        # these pair types collapse to a single router's containment
        # expansion (ingress == egress), so no routing state is read
        LocationType.SOURCE_INGRESS,
        LocationType.EGRESS_DESTINATION,
    }
)

#: pair types whose egress must be resolved via BGP emulation first
_DESTINATION_PAIR_TYPES = frozenset(
    {LocationType.INGRESS_DESTINATION, LocationType.SOURCE_DESTINATION}
)

#: default bound on memoized expansions (entries, not bytes)
DEFAULT_CACHE_SIZE = 4096


class LocationResolver:
    """Expands any :class:`Location` to a set of join-level identifiers.

    ``path_lookback`` widens time-varying expansions (routed paths, BGP
    egresses): the network condition that *caused* a symptom is the one
    just before it, so path expansions take the union of the state at
    the symptom instant and ``path_lookback`` seconds earlier.  Routing
    may already have healed around the cause by the time the symptom is
    measured; without the lookback those joins would be missed.

    ``cache_size`` bounds the routing-epoch resolution cache (LRU over
    ``(location, level, epoch)``); ``0`` disables memoization entirely
    — every expansion recomputes, which is the oracle the cached path
    is property-tested against.  The cache (and its counters) is
    thread-safe: one resolver is shared by every worker engine.
    """

    def __init__(
        self,
        paths: PathService,
        path_lookback: float = 60.0,
        cache_size: int = DEFAULT_CACHE_SIZE,
        epoch: Optional[RoutingEpoch] = None,
    ) -> None:
        self.paths = paths
        self.network = paths.network
        self.path_lookback = path_lookback
        self.epoch = epoch if epoch is not None else RoutingEpoch(paths)
        self._cache_size = cache_size
        self._cache: "OrderedDict[Tuple, FrozenSet[str]]" = OrderedDict()
        # (location, level) -> epoch token of the entry currently cached
        self._last_epoch: Dict[Tuple[Location, JoinLevel], Tuple] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # the routing-epoch resolution cache

    def _epoch_key(self, location: Location, timestamp: float) -> Tuple:
        """The narrowest epoch token covering what this expansion reads.

        Narrow tokens mean exact invalidation: a BGP announce retires
        cached destination-pair and same-prefix expansions but leaves
        OSPF-only path expansions and containment expansions alone.
        """
        ltype = location.type
        generation = self.epoch.topology_generation
        if ltype in _STATIC_TYPES:
            return (generation,)
        instants = (timestamp - self.path_lookback, timestamp)
        if ltype is LocationType.PREFIX:
            return (generation,) + self.epoch.prefix_token(location.value, *instants)
        if ltype is LocationType.ROUTER_NEIGHBOR:
            return (generation,) + self.epoch.config_token(
                location.parts[0], timestamp
            )
        # remaining pair types run OSPF path simulation at both instants
        token = (generation,) + self.epoch.ospf_token(*instants)
        if ltype in _DESTINATION_PAIR_TYPES:
            token += self.epoch.bgp_token(*instants)
            if ltype is LocationType.SOURCE_DESTINATION:
                token += self.epoch.ingress_token()
        return token

    def cache_stats(self) -> Dict[str, int]:
        """Monotonic hit/miss/invalidation/eviction counters plus size."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "invalidations": self._invalidations,
                "evictions": self._evictions,
                "size": len(self._cache),
                "capacity": self._cache_size,
            }

    def clear_cache(self) -> None:
        """Drop every memoized expansion (counters are kept)."""
        with self._lock:
            self._cache.clear()
            self._last_epoch.clear()

    # ------------------------------------------------------------------

    def expand(
        self,
        location: Location,
        level: JoinLevel,
        timestamp: float,
        trace=None,
    ) -> FrozenSet[str]:
        """Join-level identifiers related to ``location`` at ``timestamp``.

        Unresolvable locations (an egress with no BGP route, a neighbor
        IP absent from configs) expand to the empty set: they simply
        cannot join, which is how "outside of our network" outcomes
        arise (Table VI).

        ``trace`` (a :class:`repro.obs.Tracer`, optional) receives
        ``spatial_cache_hits`` / ``spatial_cache_misses`` counters on
        its current span when the resolution cache is enabled.
        """
        level = _LEVEL_CANONICAL.get(level, level)
        if level is JoinLevel.NETWORK:
            return frozenset({"network"})
        if level is JoinLevel.SAME_LOCATION:
            return frozenset({str(location)})
        handler = _HANDLERS.get(location.type)
        if handler is None:  # pragma: no cover - all types handled
            return _EMPTY
        if self._cache_size <= 0:
            return self._compute(handler, location, level, timestamp)
        epoch = self._epoch_key(location, timestamp)
        key = (location, level, epoch)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits += 1
                if trace is not None:
                    trace.count("spatial_cache_hits")
                return cached
        result = self._compute(handler, location, level, timestamp)
        with self._lock:
            self._misses += 1
            if trace is not None:
                trace.count("spatial_cache_misses")
            identity = (location, level)
            previous = self._last_epoch.get(identity)
            if previous is not None and previous != epoch:
                # the routing state this (location, level) was cached
                # under has changed: retire the stale entry now
                if self._cache.pop((location, level, previous), None) is not None:
                    self._invalidations += 1
            self._last_epoch[identity] = epoch
            self._cache[key] = result
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                old_key, _ = self._cache.popitem(last=False)
                self._evictions += 1
                old_identity = (old_key[0], old_key[1])
                if self._last_epoch.get(old_identity) == old_key[2]:
                    del self._last_epoch[old_identity]
        return result

    def _compute(
        self, handler, location: Location, level: JoinLevel, timestamp: float
    ) -> FrozenSet[str]:
        try:
            return handler(self, location, level, timestamp)
        except KeyError:
            # stale location (element no longer in / never in topology)
            return _EMPTY

    def expand_static_map(
        self,
        locations: Iterable[Location],
        level: JoinLevel,
        timestamp: float,
    ) -> Optional[Dict[Tuple[str, ...], FrozenSet[str]]]:
        """Expansions of epoch-static locations, keyed by their parts.

        A location is *epoch-static* when its expansion reads only the
        topology model (containment types, or the ``NETWORK`` /
        ``SAME_LOCATION`` levels): it can change only when the topology
        generation does.  Callers that see the same location column over
        and over — a retrieval cover joined by every symptom of a storm
        — may therefore memoize the whole returned map per
        ``(level, epoch.topology_generation)`` and skip the resolver on
        every later evaluation.  Returns ``None`` when any location's
        expansion depends on time-varying routing state; those must go
        through :meth:`expand` per evaluation.
        """
        canonical = _LEVEL_CANONICAL.get(level, level)
        static_level = canonical in (JoinLevel.NETWORK, JoinLevel.SAME_LOCATION)
        out: Dict[Tuple[str, ...], FrozenSet[str]] = {}
        for location in locations:
            if not static_level and location.type not in _STATIC_TYPES:
                return None
            out[location.parts] = self.expand(location, level, timestamp)
        return out

    def joined(
        self,
        symptom_location: Location,
        diagnostic_location: Location,
        level: JoinLevel,
        timestamp: float,
        trace=None,
    ) -> bool:
        """True when the two locations share a join-level identifier.

        ``trace`` (a :class:`repro.obs.Tracer`, optional) receives a
        ``location_expansions`` counter per expansion performed, so
        traced diagnoses show how much location-conversion work each
        spatial join cost (the short-circuit on an empty symptom set
        is visible as one expansion instead of two).
        """
        symptom_set = self.expand(symptom_location, level, timestamp, trace=trace)
        if trace is not None:
            trace.count("location_expansions")
        if not symptom_set:
            return False
        diagnostic_set = self.expand(
            diagnostic_location, level, timestamp, trace=trace
        )
        if trace is not None:
            trace.count("location_expansions")
        return not symptom_set.isdisjoint(diagnostic_set)

    # ------------------------------------------------------------------
    # per-location-type expansions

    def _expand_router(
        self, location: Location, level: JoinLevel, timestamp: float
    ) -> FrozenSet[str]:
        router = location.value
        if router not in self.network.routers:
            return _EMPTY
        if level is JoinLevel.ROUTER:
            return frozenset({router})
        if level is JoinLevel.POP:
            return frozenset({self.network.router(router).pop})
        if level is JoinLevel.LINE_CARD:
            return frozenset(
                card.fqname for card in self.network.router(router).line_cards
            )
        if level is JoinLevel.INTERFACE:
            return frozenset(
                iface.fqname for iface in self.network.router(router).interfaces
            )
        links = self.network.logical_links_of_router(router)
        if level is JoinLevel.LOGICAL_LINK:
            return frozenset(link.name for link in links)
        if level is JoinLevel.PHYSICAL_LINK:
            return frozenset(p for link in links for p in link.physical_links)
        if level is JoinLevel.LAYER1_DEVICE:
            return frozenset(
                d for link in links for d in self.network.layer1_devices_of_logical(link.name)
            )
        return _EMPTY

    def _expand_interface(
        self, location: Location, level: JoinLevel, timestamp: float
    ) -> FrozenSet[str]:
        fqname = location.value
        if level is JoinLevel.INTERFACE:
            return frozenset({fqname})
        iface = self.network.interface(fqname)
        if level is JoinLevel.ROUTER:
            return frozenset({iface.router})
        if level is JoinLevel.POP:
            return frozenset({self.network.router(iface.router).pop})
        if level is JoinLevel.LINE_CARD:
            return frozenset({f"{iface.router}:slot{iface.slot}"})
        link = self.network.link_of_interface(fqname)
        if level is JoinLevel.LOGICAL_LINK:
            return frozenset({link.name}) if link else _EMPTY
        # physical/layer-1 expansion covers access circuits too (customer
        # attachments carry no logical link but do ride layer-1 devices)
        physical = self.network.physical_links_of_interface(fqname)
        if level is JoinLevel.PHYSICAL_LINK:
            return frozenset(p.name for p in physical)
        if level is JoinLevel.LAYER1_DEVICE:
            return frozenset(
                d for p in physical for d in self.network.layer1_path(p.name)
            )
        return _EMPTY

    def _expand_line_card(
        self, location: Location, level: JoinLevel, timestamp: float
    ) -> FrozenSet[str]:
        fqname = location.value
        if level is JoinLevel.LINE_CARD:
            return frozenset({fqname})
        card = self.network.line_card(fqname)
        if level is JoinLevel.ROUTER:
            return frozenset({card.router})
        if level is JoinLevel.POP:
            return frozenset({self.network.router(card.router).pop})
        interfaces = self.network.router(card.router).interfaces_on_slot(card.slot)
        if level is JoinLevel.INTERFACE:
            return frozenset(iface.fqname for iface in interfaces)
        links = set()
        for iface in interfaces:
            link = self.network.link_of_interface(iface.fqname)
            if link is not None:
                links.add(link)
        if level is JoinLevel.LOGICAL_LINK:
            return frozenset(link.name for link in links)
        if level is JoinLevel.PHYSICAL_LINK:
            return frozenset(p for link in links for p in link.physical_links)
        if level is JoinLevel.LAYER1_DEVICE:
            return frozenset(
                d
                for link in links
                for d in self.network.layer1_devices_of_logical(link.name)
            )
        return _EMPTY

    def _expand_logical_link(
        self, location: Location, level: JoinLevel, timestamp: float
    ) -> FrozenSet[str]:
        name = location.value
        if level is JoinLevel.LOGICAL_LINK:
            return frozenset({name})
        link = self.network.logical_link(name)
        if level is JoinLevel.ROUTER:
            return frozenset(link.routers)
        if level is JoinLevel.POP:
            return frozenset(self.network.router(r).pop for r in link.routers)
        if level is JoinLevel.INTERFACE:
            return frozenset({link.interface_a, link.interface_z})
        if level is JoinLevel.LINE_CARD:
            cards = set()
            for fq in (link.interface_a, link.interface_z):
                iface = self.network.interface(fq)
                cards.add(f"{iface.router}:slot{iface.slot}")
            return frozenset(cards)
        if level is JoinLevel.PHYSICAL_LINK:
            return frozenset(link.physical_links)
        if level is JoinLevel.LAYER1_DEVICE:
            return frozenset(self.network.layer1_devices_of_logical(name))
        return _EMPTY

    def _expand_physical_link(
        self, location: Location, level: JoinLevel, timestamp: float
    ) -> FrozenSet[str]:
        name = location.value
        if level is JoinLevel.PHYSICAL_LINK:
            return frozenset({name})
        link = self.network.physical_link(name)
        if level is JoinLevel.LAYER1_DEVICE:
            return frozenset(self.network.layer1_path(name))
        if level is JoinLevel.INTERFACE:
            return frozenset(link.endpoints)
        if level is JoinLevel.ROUTER:
            return frozenset(fq.partition(":")[0] for fq in link.endpoints)
        if level is JoinLevel.POP:
            return frozenset(
                self.network.router(fq.partition(":")[0]).pop for fq in link.endpoints
            )
        if level is JoinLevel.LOGICAL_LINK:
            return frozenset(
                logical.name
                for logical in self.network.logical_links.values()
                if name in logical.physical_links
            )
        return _EMPTY

    def _expand_layer1_device(
        self, location: Location, level: JoinLevel, timestamp: float
    ) -> FrozenSet[str]:
        name = location.value
        if level is JoinLevel.LAYER1_DEVICE:
            return frozenset({name})
        if level is JoinLevel.PHYSICAL_LINK:
            return frozenset(
                link.name for link in self.network.physical_links_riding(name)
            )
        riding = self.network.logical_links_riding(name)
        if level is JoinLevel.LOGICAL_LINK:
            return frozenset(link.name for link in riding)
        # interface/router expansion comes from the riding *circuits*, so
        # access circuits without logical links are covered too
        circuits = self.network.physical_links_riding(name)
        if level is JoinLevel.INTERFACE:
            return frozenset(fq for link in circuits for fq in link.endpoints)
        if level is JoinLevel.ROUTER:
            return frozenset(
                fq.partition(":")[0] for link in circuits for fq in link.endpoints
            )
        if level is JoinLevel.POP:
            device = self.network.layer1_devices[name]
            return frozenset({device.pop})
        return _EMPTY

    def _expand_router_neighbor(
        self, location: Location, level: JoinLevel, timestamp: float
    ) -> FrozenSet[str]:
        router, neighbor_ip = location.parts
        if level is JoinLevel.ROUTER:
            return frozenset({router})
        if level is JoinLevel.POP:
            return frozenset({self.network.router(router).pop})
        fq = self.paths.interface_for_neighbor(router, neighbor_ip, timestamp)
        if fq is None:
            return _EMPTY
        return self._expand_interface(Location.interface(fq), level, timestamp)

    def _expand_server(
        self, location: Location, level: JoinLevel, timestamp: float
    ) -> FrozenSet[str]:
        server = self.network.cdn_servers.get(location.value)
        if server is None:
            return _EMPTY
        if level is JoinLevel.SERVER:
            return frozenset({server.name})
        attached = Location.router(server.attached_router)
        return self._expand_router(attached, level, timestamp)

    def _expand_prefix(
        self, location: Location, level: JoinLevel, timestamp: float
    ) -> FrozenSet[str]:
        """Egress routers serving a prefix around ``timestamp``.

        Includes egresses live shortly *before* the instant, so that an
        egress-change event joins against paths through the old egress
        as well as the new one.
        """
        if self.paths.bgp is None:
            return _EMPTY
        prefix = location.value
        egresses: Set[str] = set()
        for instant in (timestamp - self.path_lookback, timestamp):
            for route in self.paths.bgp.log.routes_at(prefix, instant):
                egresses.add(route.egress_router)
        if level is JoinLevel.ROUTER:
            return frozenset(egresses)
        if level is JoinLevel.POP:
            return frozenset(
                self.network.router(r).pop for r in egresses if r in self.network.routers
            )
        return _EMPTY

    # -- pair locations -------------------------------------------------

    def _pair_endpoints(
        self, location: Location, timestamp: float
    ) -> Optional[tuple]:
        """Resolve any pair location to an (ingress, egress) router pair."""
        a, b = location.parts
        if location.type is LocationType.INGRESS_EGRESS:
            return (a, b)
        if location.type is LocationType.SOURCE_INGRESS:
            return (b, b)
        if location.type is LocationType.EGRESS_DESTINATION:
            return (a, a)
        if location.type is LocationType.INGRESS_DESTINATION:
            egress = self.paths.egress_for_destination(a, b, timestamp)
            return (a, egress) if egress else None
        if location.type is LocationType.SOURCE_DESTINATION:
            ingress = self.paths.ingress_for_source(a)
            if ingress is None:
                return None
            egress = self.paths.egress_for_destination(ingress, b, timestamp)
            return (ingress, egress) if egress else None
        return None

    def _expand_pair(
        self, location: Location, level: JoinLevel, timestamp: float
    ) -> FrozenSet[str]:
        if level is JoinLevel.SERVER:
            # a SOURCE_DESTINATION pair whose source is a CDN server
            source = location.parts[0]
            if source in self.network.cdn_servers:
                return frozenset({source})
            return _EMPTY
        combined: Set[str] = set()
        for instant in (timestamp - self.path_lookback, timestamp):
            combined.update(self._expand_pair_at(location, level, instant))
        return frozenset(combined)

    def _expand_pair_at(
        self, location: Location, level: JoinLevel, timestamp: float
    ) -> FrozenSet[str]:
        endpoints = self._pair_endpoints(location, timestamp)
        if endpoints is None:
            return _EMPTY
        ingress, egress = endpoints
        if ingress == egress:
            return self._expand_router(Location.router(ingress), level, timestamp)
        elements = self.paths.path_elements(ingress, egress, timestamp)
        if elements.empty:
            return _EMPTY
        if level is JoinLevel.ROUTER:
            return elements.routers
        if level is JoinLevel.LOGICAL_LINK:
            return elements.logical_links
        if level is JoinLevel.INTERFACE:
            return elements.interfaces
        if level is JoinLevel.PHYSICAL_LINK:
            return elements.physical_links
        if level is JoinLevel.LAYER1_DEVICE:
            return elements.layer1_devices
        if level is JoinLevel.POP:
            return frozenset(self.network.router(r).pop for r in elements.routers)
        if level is JoinLevel.LINE_CARD:
            return frozenset(
                f"{self.network.interface(fq).router}:slot{self.network.interface(fq).slot}"
                for fq in elements.interfaces
            )
        return _EMPTY


_HANDLERS = {
    LocationType.ROUTER: LocationResolver._expand_router,
    LocationType.INTERFACE: LocationResolver._expand_interface,
    LocationType.LINE_CARD: LocationResolver._expand_line_card,
    LocationType.LOGICAL_LINK: LocationResolver._expand_logical_link,
    LocationType.PHYSICAL_LINK: LocationResolver._expand_physical_link,
    LocationType.LAYER1_DEVICE: LocationResolver._expand_layer1_device,
    LocationType.ROUTER_NEIGHBOR: LocationResolver._expand_router_neighbor,
    LocationType.SERVER: LocationResolver._expand_server,
    LocationType.PREFIX: LocationResolver._expand_prefix,
    LocationType.SOURCE_DESTINATION: LocationResolver._expand_pair,
    LocationType.SOURCE_INGRESS: LocationResolver._expand_pair,
    LocationType.INGRESS_DESTINATION: LocationResolver._expand_pair,
    LocationType.INGRESS_EGRESS: LocationResolver._expand_pair,
    LocationType.EGRESS_DESTINATION: LocationResolver._expand_pair,
}


class BatchSpatialJoin:
    """One rule evaluation's symptom side, expanded once and reused.

    The engine evaluates one spatial rule against *many* candidate
    diagnostic events for the same (symptom, timestamp); re-expanding
    the symptom location per candidate — which for pair locations means
    re-running OSPF/ECMP simulation and BGP emulation — is pure waste.
    A batch join expands the symptom exactly once (lazily, so a rule
    whose candidates all fail the temporal join never pays for it) and
    intersects each candidate's expansion against that one set.
    """

    __slots__ = (
        "rule", "resolver", "timestamp", "trace", "_symptom",
        "_symptom_set",
    )

    def __init__(
        self,
        rule: "SpatialJoinRule",
        resolver: LocationResolver,
        symptom_location: Location,
        timestamp: float,
        trace=None,
    ) -> None:
        if symptom_location.type is not rule.symptom_type:
            raise ValueError(
                f"symptom location is {symptom_location.type.value}, rule "
                f"expects {rule.symptom_type.value}"
            )
        self.rule = rule
        self.resolver = resolver
        self.timestamp = timestamp
        self.trace = trace
        self._symptom = symptom_location
        self._symptom_set: Optional[FrozenSet[str]] = None

    @property
    def symptom_set(self) -> FrozenSet[str]:
        """The symptom expansion, computed on first use."""
        if self._symptom_set is None:
            self._symptom_set = self.resolver.expand(
                self._symptom, self.rule.level, self.timestamp, trace=self.trace
            )
            if self.trace is not None:
                self.trace.count("location_expansions")
        return self._symptom_set

    def joined(self, diagnostic_location: Location) -> bool:
        """True when a candidate shares a join-level identifier.

        Counter semantics mirror :meth:`SpatialJoinRule.joined` —
        ``spatial_evals`` / ``spatial_rejects`` per candidate and one
        ``location_expansions`` per expansion actually performed — so
        traced diagnoses show the batched symptom expansion as a single
        conversion instead of one per candidate.
        """
        if diagnostic_location.type is not self.rule.diagnostic_type:
            raise ValueError(
                f"diagnostic location is {diagnostic_location.type.value}, "
                f"rule expects {self.rule.diagnostic_type.value}"
            )
        symptom_set = self.symptom_set
        verdict = False
        if symptom_set:
            diagnostic_set = self.resolver.expand(
                diagnostic_location, self.rule.level, self.timestamp,
                trace=self.trace,
            )
            if self.trace is not None:
                self.trace.count("location_expansions")
            verdict = not symptom_set.isdisjoint(diagnostic_set)
        if self.trace is not None:
            self.trace.count("spatial_evals")
            if not verdict:
                self.trace.count("spatial_rejects")
        return verdict


@dataclass(frozen=True)
class SpatialJoinRule:
    """(symptom location type, diagnostic location type, join level)."""

    symptom_type: LocationType
    diagnostic_type: LocationType
    level: JoinLevel

    def describe(self) -> str:
        """Compact identity, e.g. ``router:neighbor-ip~interface@interface``.

        The spatial half of a rule's identity in trace spans
        (:mod:`repro.obs`).
        """
        return (
            f"{self.symptom_type.value}~{self.diagnostic_type.value}"
            f"@{self.level.value}"
        )

    def batch(
        self,
        resolver: LocationResolver,
        symptom_location: Location,
        timestamp: float,
        trace=None,
    ) -> BatchSpatialJoin:
        """A reusable join with the symptom side expanded only once."""
        return BatchSpatialJoin(self, resolver, symptom_location, timestamp, trace)

    def joined(
        self,
        resolver: LocationResolver,
        symptom_location: Location,
        diagnostic_location: Location,
        timestamp: float,
        trace=None,
    ) -> bool:
        """True when the two locations share a join-level identifier.

        ``trace`` (a :class:`repro.obs.Tracer`, optional) receives
        ``spatial_evals`` / ``spatial_rejects`` counters on its current
        span, plus the resolver's ``location_expansions`` and cache
        hit/miss counters.  One-shot form of :meth:`batch`.
        """
        return self.batch(resolver, symptom_location, timestamp, trace).joined(
            diagnostic_location
        )
