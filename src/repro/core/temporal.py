"""Temporal join rules (Section II-C, Fig. 3).

A temporal joining rule has six parameters: a left expansion margin X,
a right margin Y and an expanding option (Start/End, Start/Start or
End/End) *for each* of the symptom and diagnostic events.  Margins can
be positive or negative.  Two event instances join when their expanded
time windows overlap.

The paper's worked example, preserved as a doctest::

    >>> symptom = TemporalExpansion(ExpandOption.START_START, 180, 5)
    >>> symptom.expand(1000, 2000)
    (820.0, 1005.0)
    >>> diagnostic = TemporalExpansion(ExpandOption.START_END, 5, 5)
    >>> diagnostic.expand(900, 901)
    (895.0, 906.0)
    >>> TemporalJoinRule(symptom, diagnostic).joined((1000, 2000), (900, 901))
    True
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class ExpandOption(enum.Enum):
    """How an event's [start, end] becomes an expanded window (Fig. 3).

    * ``START_END`` — window anchored at [start, end] (the full event);
    * ``START_START`` — window anchored at [start, start];
    * ``END_END`` — window anchored at [end, end].
    """

    START_END = "Start/End"
    START_START = "Start/Start"
    END_END = "End/End"


@dataclass(frozen=True)
class TemporalExpansion:
    """One side of a temporal join rule: option plus X/Y margins.

    ``left`` (X) extends the window backward in time from its left
    anchor; ``right`` (Y) extends it forward from its right anchor.
    Negative values shift inward.
    """

    option: ExpandOption
    left: float  # X, seconds
    right: float  # Y, seconds

    def describe(self) -> str:
        """Compact identity string, e.g. ``Start/Start X=180 Y=5``.

        Used as the temporal half of a rule's identity in trace spans
        (:mod:`repro.obs`): two rules with the same six parameters
        describe identically, so golden traces pin rule identity
        without repr noise.
        """
        return f"{self.option.value} X={self.left:g} Y={self.right:g}"

    def expand(self, start: float, end: float) -> Tuple[float, float]:
        """Expanded window for an event instance's [start, end]."""
        if end < start:
            raise ValueError(f"event ends ({end}) before it starts ({start})")
        if self.option is ExpandOption.START_END:
            anchor_lo, anchor_hi = start, end
        elif self.option is ExpandOption.START_START:
            anchor_lo, anchor_hi = start, start
        else:  # END_END
            anchor_lo, anchor_hi = end, end
        lo = anchor_lo - self.left
        hi = anchor_hi + self.right
        if hi < lo:
            # negative margins may invert the window; treat as empty by
            # collapsing to a zero-length window at the midpoint
            mid = (lo + hi) / 2.0
            return (mid, mid)
        return (float(lo), float(hi))


@dataclass(frozen=True)
class TemporalJoinRule:
    """Expansions for the symptom and the diagnostic event."""

    symptom: TemporalExpansion
    diagnostic: TemporalExpansion

    def describe(self) -> str:
        """Full six-parameter identity (both expansions) for tracing."""
        return (
            f"symptom[{self.symptom.describe()}] "
            f"diagnostic[{self.diagnostic.describe()}]"
        )

    def joined(
        self,
        symptom_interval: Tuple[float, float],
        diagnostic_interval: Tuple[float, float],
        trace=None,
    ) -> bool:
        """True when the two expanded (closed) windows overlap.

        ``trace`` (a :class:`repro.obs.Tracer`, optional) receives
        ``temporal_evals`` / ``temporal_rejects`` counters on its
        current span — the engine passes its tracer here so traced
        diagnoses record exactly how many Fig. 3 evaluations each rule
        cost.  Untraced callers pay nothing.
        """
        s_lo, s_hi = self.symptom.expand(*symptom_interval)
        d_lo, d_hi = self.diagnostic.expand(*diagnostic_interval)
        verdict = s_lo <= d_hi and d_lo <= s_hi
        if trace is not None:
            trace.count("temporal_evals")
            if not verdict:
                trace.count("temporal_rejects")
        return verdict

    def search_window(self, symptom_interval: Tuple[float, float]) -> Tuple[float, float]:
        """Raw-time range a diagnostic event must intersect to possibly join.

        Used by the engine to bound the store query before the exact
        check: a diagnostic instance whose raw [start, end] lies wholly
        outside this range cannot join regardless of its expansion.
        """
        s_lo, s_hi = self.symptom.expand(*symptom_interval)
        # invert the diagnostic expansion conservatively.  A regular
        # window reaches left by max(X, 0) of its earliest anchor and
        # right by max(Y, 0); anchors lie within [start, end].  An
        # *inverted* window (X + Y < 0) collapses to its midpoint,
        # which sits up to -X right of an anchor and up to -Y left of
        # one — so each side's reach is the max over both cases.
        reach_left = max(self.diagnostic.left, -self.diagnostic.right, 0.0)
        reach_right = max(self.diagnostic.right, -self.diagnostic.left, 0.0)
        return (s_lo - reach_right, s_hi + reach_left)


def default_rule(slack_seconds: float = 5.0) -> TemporalJoinRule:
    """A symmetric Start/End rule with small timestamp-noise slack."""
    expansion = TemporalExpansion(ExpandOption.START_END, slack_seconds, slack_seconds)
    return TemporalJoinRule(expansion, expansion)
