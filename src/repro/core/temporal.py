"""Temporal join rules (Section II-C, Fig. 3).

A temporal joining rule has six parameters: a left expansion margin X,
a right margin Y and an expanding option (Start/End, Start/Start or
End/End) *for each* of the symptom and diagnostic events.  Margins can
be positive or negative.  Two event instances join when their expanded
time windows overlap.

The paper's worked example, preserved as a doctest::

    >>> symptom = TemporalExpansion(ExpandOption.START_START, 180, 5)
    >>> symptom.expand(1000, 2000)
    (820.0, 1005.0)
    >>> diagnostic = TemporalExpansion(ExpandOption.START_END, 5, 5)
    >>> diagnostic.expand(900, 901)
    (895.0, 906.0)
    >>> TemporalJoinRule(symptom, diagnostic).joined((1000, 2000), (900, 901))
    True
"""

from __future__ import annotations

import enum
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union


class ExpandOption(enum.Enum):
    """How an event's [start, end] becomes an expanded window (Fig. 3).

    * ``START_END`` — window anchored at [start, end] (the full event);
    * ``START_START`` — window anchored at [start, start];
    * ``END_END`` — window anchored at [end, end].
    """

    START_END = "Start/End"
    START_START = "Start/Start"
    END_END = "End/End"


@dataclass(frozen=True)
class TemporalExpansion:
    """One side of a temporal join rule: option plus X/Y margins.

    ``left`` (X) extends the window backward in time from its left
    anchor; ``right`` (Y) extends it forward from its right anchor.
    Negative values shift inward.
    """

    option: ExpandOption
    left: float  # X, seconds
    right: float  # Y, seconds

    def describe(self) -> str:
        """Compact identity string, e.g. ``Start/Start X=180 Y=5``.

        Used as the temporal half of a rule's identity in trace spans
        (:mod:`repro.obs`): two rules with the same six parameters
        describe identically, so golden traces pin rule identity
        without repr noise.
        """
        return f"{self.option.value} X={self.left:g} Y={self.right:g}"

    def expand(self, start: float, end: float) -> Tuple[float, float]:
        """Expanded window for an event instance's [start, end]."""
        if end < start:
            raise ValueError(f"event ends ({end}) before it starts ({start})")
        if self.option is ExpandOption.START_END:
            anchor_lo, anchor_hi = start, end
        elif self.option is ExpandOption.START_START:
            anchor_lo, anchor_hi = start, start
        else:  # END_END
            anchor_lo, anchor_hi = end, end
        lo = anchor_lo - self.left
        hi = anchor_hi + self.right
        if hi < lo:
            # negative margins may invert the window; treat as empty by
            # collapsing to a zero-length window at the midpoint
            mid = (lo + hi) / 2.0
            return (mid, mid)
        return (float(lo), float(hi))


class IntervalColumns:
    """Candidate intervals as parallel sorted arrays, for batch joins.

    ``starts`` must be non-decreasing (the engine's retrieval cache
    guarantees it: :meth:`EventDefinition.retrieve` sorts instances by
    ``(start, end)``).  The end-sorted permutation and its value array
    are derived lazily and memoized, so one candidate set can be joined
    against many symptoms — the batch-join equivalents of building a
    secondary index once per retrieval cover.
    """

    __slots__ = ("starts", "ends", "_end_order", "_sorted_ends")

    def __init__(self, starts: Sequence[float], ends: Sequence[float]) -> None:
        if len(starts) != len(ends):
            raise ValueError(
                f"parallel interval arrays differ in length: "
                f"{len(starts)} starts vs {len(ends)} ends"
            )
        self.starts = starts
        self.ends = ends
        self._end_order: Optional[List[int]] = None
        self._sorted_ends: Optional[List[float]] = None

    def __len__(self) -> int:
        return len(self.starts)

    @property
    def end_order(self) -> List[int]:
        """Candidate indices sorted by (end, index); lazy, memoized."""
        if self._end_order is None:
            ends = self.ends
            self._end_order = sorted(range(len(ends)), key=ends.__getitem__)
            self._sorted_ends = [ends[k] for k in self._end_order]
        return self._end_order

    @property
    def sorted_ends(self) -> List[float]:
        """End values in :attr:`end_order` order; lazy, memoized."""
        if self._sorted_ends is None:
            self.end_order  # builds both
        return self._sorted_ends  # type: ignore[return-value]


@dataclass(frozen=True)
class TemporalJoinRule:
    """Expansions for the symptom and the diagnostic event."""

    symptom: TemporalExpansion
    diagnostic: TemporalExpansion

    def describe(self) -> str:
        """Full six-parameter identity (both expansions) for tracing."""
        return (
            f"symptom[{self.symptom.describe()}] "
            f"diagnostic[{self.diagnostic.describe()}]"
        )

    def joined(
        self,
        symptom_interval: Tuple[float, float],
        diagnostic_interval: Tuple[float, float],
        trace=None,
    ) -> bool:
        """True when the two expanded (closed) windows overlap.

        ``trace`` (a :class:`repro.obs.Tracer`, optional) receives
        ``temporal_evals`` / ``temporal_rejects`` counters on its
        current span — the engine passes its tracer here so traced
        diagnoses record exactly how many Fig. 3 evaluations each rule
        cost.  Untraced callers pay nothing.
        """
        s_lo, s_hi = self.symptom.expand(*symptom_interval)
        d_lo, d_hi = self.diagnostic.expand(*diagnostic_interval)
        verdict = s_lo <= d_hi and d_lo <= s_hi
        if trace is not None:
            trace.count("temporal_evals")
            if not verdict:
                trace.count("temporal_rejects")
        return verdict

    def joined_batch(
        self,
        symptom_interval: Tuple[float, float],
        starts: Union[IntervalColumns, Sequence[float]],
        ends: Optional[Sequence[float]] = None,
    ) -> List[int]:
        """Indices of candidates joining the symptom, via sorted arrays.

        The batch equivalent of calling :meth:`joined` once per
        candidate: ``starts``/``ends`` are parallel arrays of candidate
        intervals sorted by ``(start, end)`` (pass a prebuilt
        :class:`IntervalColumns` as ``starts`` to reuse its memoized
        end-order across calls).  Returns ascending candidate indices —
        the same survivors, in the same order, as the scalar loop.

        Every :class:`ExpandOption` of the diagnostic expansion reduces
        to one or two :mod:`bisect` probes over the sorted vectors:

        * ``Start/Start`` — the expanded window is ``[start-X, start+Y]``
          (or its midpoint collapse, a constant shift of ``start``), so
          joiners form one contiguous run of the start-sorted array.
        * ``End/End`` — same argument on the end-sorted permutation.
        * ``Start/End`` with ``X+Y >= 0`` — joiners are the intersection
          of a *prefix* of the start order (``start <= s_hi + X``) and a
          *suffix* of the end order (``end >= s_lo - Y``); the smaller
          side is enumerated and the other inequality checked by O(1)
          array lookup.
        * ``Start/End`` with ``X+Y < 0`` — a candidate's window inverts
          (collapses to its midpoint) only when its duration is below
          ``-(X+Y)``, which is per-candidate; this rare configuration
          falls back to the scalar oracle.
        """
        columns = (
            starts
            if isinstance(starts, IntervalColumns)
            else IntervalColumns(starts, ends if ends is not None else [])
        )
        n = len(columns)
        if n == 0:
            return []
        s_lo, s_hi = self.symptom.expand(*symptom_interval)
        d = self.diagnostic
        x, y = d.left, d.right
        if d.option is ExpandOption.START_START:
            if x + y >= 0:
                # [start-X, start+Y] overlaps [s_lo, s_hi] iff
                # s_lo - Y <= start <= s_hi + X
                lo_t, hi_t = s_lo - y, s_hi + x
            else:
                # inverted: window collapses to start + (Y-X)/2
                shift = (y - x) / 2.0
                lo_t, hi_t = s_lo - shift, s_hi - shift
            i = bisect_left(columns.starts, lo_t)
            j = bisect_right(columns.starts, hi_t, i)
            return list(range(i, j))
        if d.option is ExpandOption.END_END:
            if x + y >= 0:
                lo_t, hi_t = s_lo - y, s_hi + x
            else:
                shift = (y - x) / 2.0
                lo_t, hi_t = s_lo - shift, s_hi - shift
            sorted_ends = columns.sorted_ends
            p = bisect_left(sorted_ends, lo_t)
            q = bisect_right(sorted_ends, hi_t, p)
            return sorted(columns.end_order[p:q])
        # START_END
        if x + y < 0:
            return [
                k
                for k in range(n)
                if self.joined(
                    symptom_interval, (columns.starts[k], columns.ends[k])
                )
            ]
        # window is [start-X, end+Y] (never inverted since duration >= 0
        # and X+Y >= 0): joins iff start <= s_hi + X and end >= s_lo - Y
        start_cut = s_hi + x
        end_cut = s_lo - y
        j = bisect_right(columns.starts, start_cut)  # prefix [0, j)
        p = bisect_left(columns.sorted_ends, end_cut)  # suffix of end order
        if j <= n - p:
            ends_arr = columns.ends
            return [k for k in range(j) if ends_arr[k] >= end_cut]
        return sorted(k for k in columns.end_order[p:] if k < j)

    def search_window(self, symptom_interval: Tuple[float, float]) -> Tuple[float, float]:
        """Raw-time range a diagnostic event must intersect to possibly join.

        Used by the engine to bound the store query before the exact
        check: a diagnostic instance whose raw [start, end] lies wholly
        outside this range cannot join regardless of its expansion.
        """
        s_lo, s_hi = self.symptom.expand(*symptom_interval)
        # invert the diagnostic expansion conservatively.  A regular
        # window reaches left by max(X, 0) of its earliest anchor and
        # right by max(Y, 0); anchors lie within [start, end].  An
        # *inverted* window (X + Y < 0) collapses to its midpoint,
        # which sits up to -X right of an anchor and up to -Y left of
        # one — so each side's reach is the max over both cases.
        reach_left = max(self.diagnostic.left, -self.diagnostic.right, 0.0)
        reach_right = max(self.diagnostic.right, -self.diagnostic.left, 0.0)
        return (s_lo - reach_right, s_hi + reach_left)


def default_rule(slack_seconds: float = 5.0) -> TemporalJoinRule:
    """A symmetric Start/End rule with small timestamp-noise slack."""
    expansion = TemporalExpansion(ExpandOption.START_END, slack_seconds, slack_seconds)
    return TemporalJoinRule(expansion, expansion)
