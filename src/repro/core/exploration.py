"""Data exploration for manual iterative rule learning (Section IV-A).

The PIM application was built by a loop the paper describes in detail:
domain experts "use data exploratory tools [Darkstar, 26] to manually
inspect unexplained neighbor adjacency changes and determine root
cause(s)"; each discovered cause is codified as a rule, the application
re-runs, and the remaining unexplained events shrink — "the PIM
application developer thus continually whittled down the number of
unexplained flaps."

This module is that exploratory tool: given a set of anchor events
(typically the unexplained symptoms from a Result Browser), it scans
the store for records that co-occur with them — same router, within a
window — groups them by signature, and ranks signatures by *support*
(the fraction of anchors each signature co-occurs with).  A signature
with high support over the unexplained population is a candidate
diagnosis rule; the Correlation Tester then validates it statistically
before it enters the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..collector.store import DataStore, Record
from .events import EventInstance

#: Which column carries a record's "signature" in each well-known table.
SIGNATURE_COLUMNS: Dict[str, str] = {
    "syslog": "code",
    "workflow": "activity",
    "tacacs": "user",
    "layer1": "event",
    "snmp": "metric",
}


@dataclass(frozen=True)
class CoOccurrence:
    """One candidate signature ranked against the anchor population."""

    table: str
    signature: str
    #: number of distinct anchors this signature co-occurred with
    anchors_hit: int
    #: anchors_hit / total anchors
    support: float
    #: total co-occurring records across all anchors
    record_count: int
    #: one example record, for the drill-down pane
    example: Optional[Record] = None

    @property
    def name(self) -> str:
        """The ``table:signature`` label shown in listings."""
        return f"{self.table}:{self.signature}"

    def __str__(self) -> str:
        return (
            f"{self.name}: support {100 * self.support:.0f}% "
            f"({self.anchors_hit} anchors, {self.record_count} records)"
        )


def _anchor_router(anchor: EventInstance) -> Optional[str]:
    try:
        return anchor.location.router_part
    except ValueError:
        # pair locations: use the first part when it names a router
        return anchor.location.parts[0] if anchor.location.parts else None


def co_occurring_signatures(
    store: DataStore,
    anchors: Sequence[EventInstance],
    tables: Sequence[str] = ("syslog", "workflow", "tacacs", "layer1"),
    window_seconds: float = 300.0,
    same_router: bool = True,
    min_support: float = 0.0,
) -> List[CoOccurrence]:
    """Signatures co-occurring with the anchor events, ranked by support.

    For each anchor, records within ``window_seconds`` of its interval
    (on the same router when ``same_router``) are collected; each
    distinct (table, signature) pair counts each anchor at most once.
    """
    if not anchors:
        return []
    hits: Dict[Tuple[str, str], Dict[str, object]] = {}
    for index, anchor in enumerate(anchors):
        router = _anchor_router(anchor)
        start = anchor.start - window_seconds
        end = anchor.end + window_seconds
        for table_name in tables:
            column = SIGNATURE_COLUMNS.get(table_name)
            if column is None:
                continue
            table = store.table(table_name)
            if same_router and router is not None and "router" in table.indexed_columns:
                records = table.query(start, end, router=router)
            else:
                records = table.query(start, end)
                if same_router and router is not None:
                    records = [r for r in records if r.get("router") == router]
            for record in records:
                signature = record.get(column)
                if signature is None:
                    continue
                entry = hits.setdefault(
                    (table_name, str(signature)),
                    {"anchors": set(), "count": 0, "example": record},
                )
                entry["anchors"].add(index)
                entry["count"] += 1
    results = []
    total = len(anchors)
    for (table_name, signature), entry in hits.items():
        support = len(entry["anchors"]) / total
        if support < min_support:
            continue
        results.append(
            CoOccurrence(
                table=table_name,
                signature=signature,
                anchors_hit=len(entry["anchors"]),
                support=support,
                record_count=entry["count"],
                example=entry["example"],
            )
        )
    results.sort(key=lambda c: (-c.support, -c.record_count, c.name))
    return results


def format_exploration(
    results: Sequence[CoOccurrence], limit: int = 15
) -> str:
    """Render a ranked signature listing (the exploration pane view)."""
    if not results:
        return "(no co-occurring signatures)"
    width = max(len(c.name) for c in results[:limit])
    lines = [f"{'signature':<{width}}  {'support':>8}  {'anchors':>8}  {'records':>8}"]
    for item in results[:limit]:
        lines.append(
            f"{item.name:<{width}}  {100 * item.support:>7.0f}%  "
            f"{item.anchors_hit:>8}  {item.record_count:>8}"
        )
    return "\n".join(lines)
