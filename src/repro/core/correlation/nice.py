"""The NICE circular-permutation correlation test (reference [12]).

G-RCA's Correlation Tester "implements the statistical correlation
algorithm proposed in NICE.  In comparison to other canonical
statistical tests, NICE handles the event autocorrelation structure very
well, which is commonly observed in networking event series."

Method: compute the Pearson correlation r between the two binary
series; build the null distribution by *circularly shifting* one series
against the other (a circular shift preserves each series' internal
autocorrelation while destroying cross-alignment); declare significance
when r exceeds the null mean by ``score_threshold`` null standard
deviations.  A permutation p-value (the fraction of shifts whose |r|
reaches the observed |r|) is reported alongside.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .timeseries import EventSeries, pearson


@dataclass(frozen=True)
class CorrelationResult:
    """Outcome of one correlation test."""

    symptom: str
    diagnostic: str
    r: float
    null_mean: float
    null_std: float
    score: float
    p_value: float
    significant: bool

    def __str__(self) -> str:
        flag = "SIGNIFICANT" if self.significant else "not significant"
        return (
            f"{self.symptom} ~ {self.diagnostic}: r={self.r:.3f} "
            f"score={self.score:.2f} p={self.p_value:.3f} [{flag}]"
        )


class CorrelationTester:
    """Circular-permutation significance testing for event series."""

    def __init__(
        self,
        n_permutations: int = 200,
        score_threshold: float = 3.0,
        min_occurrences: int = 3,
        seed: int = 20100101,
    ) -> None:
        if n_permutations < 10:
            raise ValueError("need at least 10 permutations")
        self.n_permutations = n_permutations
        self.score_threshold = score_threshold
        self.min_occurrences = min_occurrences
        self._rng = random.Random(seed)

    def test(self, symptom: EventSeries, diagnostic: EventSeries) -> CorrelationResult:
        """Test whether the diagnostic series co-occurs with the symptom."""
        a = symptom.values
        b = diagnostic.values
        if len(a) != len(b):
            raise ValueError("series must share a bin grid")
        n = len(a)
        if (
            symptom.count < self.min_occurrences
            or diagnostic.count < self.min_occurrences
            or n < 3
        ):
            # too sparse for any statistical statement
            return self._result(symptom, diagnostic, pearson(a, b), 0.0, 0.0, 1.0)
        observed = pearson(a, b)
        shifts = self._shifts(n)
        null = np.array([pearson(a, np.roll(b, shift)) for shift in shifts])
        null_mean = float(null.mean())
        null_std = float(null.std())
        if null_std == 0:
            score = 0.0
        else:
            score = (observed - null_mean) / null_std
        p_value = float((np.abs(null) >= abs(observed)).mean())
        return self._result(symptom, diagnostic, observed, null_mean, null_std, p_value, score)

    def _shifts(self, n: int) -> List[int]:
        if n - 1 <= self.n_permutations:
            return list(range(1, n))
        return [self._rng.randrange(1, n) for _ in range(self.n_permutations)]

    def _result(
        self,
        symptom: EventSeries,
        diagnostic: EventSeries,
        r: float,
        null_mean: float,
        null_std: float,
        p_value: float,
        score: Optional[float] = None,
    ) -> CorrelationResult:
        if score is None:
            score = 0.0
        return CorrelationResult(
            symptom=symptom.name,
            diagnostic=diagnostic.name,
            r=r,
            null_mean=null_mean,
            null_std=null_std,
            score=score,
            p_value=p_value,
            significant=score >= self.score_threshold,
        )
