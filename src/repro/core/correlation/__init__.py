"""Correlation Tester (Fig. 1): NICE-style circular-permutation testing
plus blind rule mining over the store."""

from .miner import MinedRule, RuleMiner, candidate_series_from_store
from .nice import CorrelationResult, CorrelationTester
from .timeseries import BinSpec, EventSeries, from_event_instances, pearson

__all__ = [
    "BinSpec",
    "CorrelationResult",
    "CorrelationTester",
    "EventSeries",
    "MinedRule",
    "RuleMiner",
    "candidate_series_from_store",
    "from_event_instances",
    "pearson",
]
