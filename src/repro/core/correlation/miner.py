"""Blind diagnosis-rule mining (Sections II-E and IV-B).

Operators "can also choose to run the Correlation Tester *blindly*
between the symptom events without known root causes and each type of
suspected diagnostic events".  Section IV-B runs exactly this at scale:
a time series of prefiltered CPU-related BGP flaps against 831 workflow
and 2533 syslog series; 80 come back significant, and drilling into them
exposes the provisioning-activity bug.

:func:`candidate_series_from_store` builds the candidate universe the
way the deployed system does — one series per (syslog message code ×
router) and per (workflow activity × router) — and :class:`RuleMiner`
ranks the significant correlations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ...collector.store import DataStore
from .nice import CorrelationResult, CorrelationTester
from .timeseries import BinSpec, EventSeries


@dataclass(frozen=True)
class MinedRule:
    """One statistically significant symptom/diagnostic association."""

    diagnostic_name: str
    result: CorrelationResult

    @property
    def score(self) -> float:
        return self.result.score


class RuleMiner:
    """Runs the tester across a candidate-series universe and ranks hits."""

    def __init__(self, tester: Optional[CorrelationTester] = None) -> None:
        self.tester = tester or CorrelationTester()

    def mine(
        self,
        symptom_series: EventSeries,
        candidates: Iterable[EventSeries],
    ) -> List[MinedRule]:
        """Significant candidates, strongest first."""
        mined = []
        for candidate in candidates:
            result = self.tester.test(symptom_series, candidate)
            if result.significant:
                mined.append(MinedRule(candidate.name, result))
        mined.sort(key=lambda m: -m.score)
        return mined

    def test_all(
        self,
        symptom_series: EventSeries,
        candidates: Iterable[EventSeries],
    ) -> List[CorrelationResult]:
        """All results (significant or not), for reporting."""
        return [self.tester.test(symptom_series, c) for c in candidates]


def candidate_series_from_store(
    store: DataStore,
    spec: BinSpec,
    routers: Optional[Sequence[str]] = None,
    include_syslog: bool = True,
    include_workflow: bool = True,
    per_router: bool = True,
) -> List[EventSeries]:
    """One candidate series per (signature x router), as in Section IV-B.

    Syslog signatures are message codes; workflow signatures are activity
    names.  Restricting ``routers`` focuses the universe on the routers
    where the symptom occurs (e.g. the PERs with CPU-related flaps).
    With ``per_router=False`` the series are aggregated per signature
    across routers (useful when the suspected mechanism is network-wide,
    like a software bug).
    """
    router_filter = set(routers) if routers is not None else None
    series: Dict[Tuple[str, str, str], List[float]] = {}

    def record_point(kind: str, signature: str, router: str, timestamp: float) -> None:
        key_router = router if per_router else "*"
        series.setdefault((kind, signature, key_router), []).append(timestamp)

    if include_syslog:
        for record in store.table("syslog").query(spec.start, spec.end):
            router = record.get("router")
            code = record.get("code")
            if router is None or code is None:
                continue
            if router_filter is not None and router not in router_filter:
                continue
            record_point("syslog", code, router, record.timestamp)
    if include_workflow:
        for record in store.table("workflow").query(spec.start, spec.end):
            router = record.get("router")
            activity = record.get("activity")
            if router is None or activity is None:
                continue
            if router_filter is not None and router not in router_filter:
                continue
            record_point("workflow", activity, router, record.timestamp)
    return [
        EventSeries.from_timestamps(f"{kind}:{signature}@{router}", spec, timestamps)
        for (kind, signature, router), timestamps in sorted(series.items())
    ]
