"""Event time series for statistical correlation (Section II-E).

The Correlation Tester operates on binary (occurrence) time series
binned at a fixed width.  These helpers turn event instances or raw
store records into aligned series over a common analysis window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np


@dataclass(frozen=True)
class BinSpec:
    """The common time grid for an analysis window."""

    start: float
    end: float
    width: float = 300.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("window must have positive length")
        if self.width <= 0:
            raise ValueError("bin width must be positive")

    @property
    def n_bins(self) -> int:
        return max(1, int(np.ceil((self.end - self.start) / self.width)))

    def bin_of(self, timestamp: float) -> int:
        """Index of the bin containing a timestamp."""
        return int((timestamp - self.start) // self.width)


@dataclass
class EventSeries:
    """A named binary occurrence series on a :class:`BinSpec` grid."""

    name: str
    spec: BinSpec
    values: np.ndarray

    @classmethod
    def empty(cls, name: str, spec: BinSpec) -> "EventSeries":
        return cls(name, spec, np.zeros(spec.n_bins, dtype=np.float64))

    @classmethod
    def from_intervals(
        cls,
        name: str,
        spec: BinSpec,
        intervals: Iterable[Tuple[float, float]],
        margin: float = 0.0,
    ) -> "EventSeries":
        """Mark every bin an event interval (± margin) touches."""
        series = cls.empty(name, spec)
        for start, end in intervals:
            lo = max(0, spec.bin_of(start - margin))
            hi = min(spec.n_bins - 1, spec.bin_of(end + margin))
            if hi < 0 or lo >= spec.n_bins:
                continue
            series.values[lo : hi + 1] = 1.0
        return series

    @classmethod
    def from_timestamps(
        cls, name: str, spec: BinSpec, timestamps: Iterable[float], margin: float = 0.0
    ) -> "EventSeries":
        return cls.from_intervals(name, spec, ((t, t) for t in timestamps), margin)

    @property
    def occupancy(self) -> float:
        """Fraction of bins with at least one occurrence."""
        return float(self.values.mean())

    @property
    def count(self) -> int:
        return int(self.values.sum())


def from_event_instances(name: str, spec: BinSpec, instances, margin: float = 0.0) -> EventSeries:
    """Series from :class:`~repro.core.events.EventInstance` objects."""
    return EventSeries.from_intervals(
        name, spec, ((i.start, i.end) for i in instances), margin
    )


def pearson(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation coefficient; 0.0 when either side is constant."""
    if len(a) != len(b):
        raise ValueError("series lengths differ")
    a_centered = a - a.mean()
    b_centered = b - b.mean()
    denom = np.sqrt((a_centered**2).sum() * (b_centered**2).sum())
    if denom == 0:
        return 0.0
    return float((a_centered * b_centered).sum() / denom)
