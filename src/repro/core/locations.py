"""Location model (Fig. 2): the location types an event can carry.

Every event definition names a *location type*; every event instance
carries a concrete :class:`Location` of that type.  The spatial join
converts symptom and diagnostic locations to a common *join level* (see
:mod:`repro.core.spatial`), so applications never manipulate topology or
routing state directly.

The ``A:B`` pair notation of the paper ("Ingress:Egress") maps to the
pair-valued location types below.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class LocationType(enum.Enum):
    """Location types of the spatial model (Fig. 2)."""

    ROUTER = "router"
    INTERFACE = "interface"
    LINE_CARD = "line-card"
    LOGICAL_LINK = "logical-link"
    PHYSICAL_LINK = "physical-link"
    LAYER1_DEVICE = "layer1-device"
    #: a router paired with a (typically external) BGP/PIM neighbor IP
    ROUTER_NEIGHBOR = "router:neighbor-ip"
    #: end-to-end, both endpoints outside the ISP
    SOURCE_DESTINATION = "source:destination"
    SOURCE_INGRESS = "source:ingress"
    INGRESS_DESTINATION = "ingress:destination"
    INGRESS_EGRESS = "ingress:egress"
    EGRESS_DESTINATION = "egress:destination"
    #: a routed prefix (used by BGP egress-change events)
    PREFIX = "prefix"
    #: a CDN cache server
    SERVER = "server"

    @property
    def arity(self) -> int:
        """Number of parts a location of this type carries."""
        return _ARITY[self]


_ARITY = {
    LocationType.ROUTER: 1,
    LocationType.INTERFACE: 1,
    LocationType.LINE_CARD: 1,
    LocationType.LOGICAL_LINK: 1,
    LocationType.PHYSICAL_LINK: 1,
    LocationType.LAYER1_DEVICE: 1,
    LocationType.ROUTER_NEIGHBOR: 2,
    LocationType.SOURCE_DESTINATION: 2,
    LocationType.SOURCE_INGRESS: 2,
    LocationType.INGRESS_DESTINATION: 2,
    LocationType.INGRESS_EGRESS: 2,
    LocationType.EGRESS_DESTINATION: 2,
    LocationType.PREFIX: 1,
    LocationType.SERVER: 1,
}


@dataclass(frozen=True)
class Location:
    """A concrete location: a type plus its identifier part(s).

    Single-part examples: ``Location.router("nyc-per1")``,
    ``Location.interface("nyc-per1:se1/0")``.  Pair examples:
    ``Location.pair(LocationType.INGRESS_EGRESS, "nyc-per1", "chi-per1")``.
    """

    type: LocationType
    parts: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.parts) != self.type.arity:
            raise ValueError(
                f"location type {self.type.value} takes {self.type.arity} "
                f"part(s), got {self.parts!r}"
            )
        if any(not part for part in self.parts):
            raise ValueError(f"empty location part in {self.parts!r}")

    def __hash__(self) -> int:
        # locations key resolver caches, verdict maps and dedupe sets;
        # the generated frozen-dataclass hash would re-hash the parts
        # tuple (and the enum) on every lookup
        value = self.__dict__.get("_hash")
        if value is None:
            value = hash((self.type, self.parts))
            object.__setattr__(self, "_hash", value)
        return value

    # -- constructors --------------------------------------------------

    @classmethod
    def _interned(cls, location_type: LocationType, name: str) -> "Location":
        """Single-part constructor through a bounded intern table.

        Retrieval processes mint the same few hundred link/router/
        interface locations over and over (one per record or episode);
        handing back one shared instance keeps allocations — and the
        cached hash — amortized across the whole run.
        """
        key = (location_type, name)
        location = _INTERNED.get(key)
        if location is None:
            location = cls(location_type, (name,))
            if len(_INTERNED) < _INTERN_CAP:
                _INTERNED[key] = location
        return location

    @classmethod
    def router(cls, name: str) -> "Location":
        """Look up a router by name."""
        return cls._interned(LocationType.ROUTER, name)

    @classmethod
    def interface(cls, fqname: str) -> "Location":
        if ":" not in fqname:
            raise ValueError(f"interface location must be router:ifname, got {fqname!r}")
        return cls._interned(LocationType.INTERFACE, fqname)

    @classmethod
    def line_card(cls, fqname: str) -> "Location":
        return cls._interned(LocationType.LINE_CARD, fqname)

    @classmethod
    def logical_link(cls, name: str) -> "Location":
        """Look up a logical link by name."""
        return cls._interned(LocationType.LOGICAL_LINK, name)

    @classmethod
    def physical_link(cls, name: str) -> "Location":
        """Look up a physical circuit by name."""
        return cls(LocationType.PHYSICAL_LINK, (name,))

    @classmethod
    def layer1_device(cls, name: str) -> "Location":
        return cls(LocationType.LAYER1_DEVICE, (name,))

    @classmethod
    def router_neighbor(cls, router: str, neighbor_ip: str) -> "Location":
        return cls(LocationType.ROUTER_NEIGHBOR, (router, neighbor_ip))

    @classmethod
    def pair(cls, location_type: LocationType, a: str, b: str) -> "Location":
        return cls(location_type, (a, b))

    @classmethod
    def prefix(cls, prefix: str) -> "Location":
        return cls(LocationType.PREFIX, (prefix,))

    @classmethod
    def server(cls, name: str) -> "Location":
        return cls(LocationType.SERVER, (name,))

    # -- accessors ------------------------------------------------------

    @property
    def value(self) -> str:
        """Single-part value (raises for pair locations)."""
        if len(self.parts) != 1:
            raise ValueError(f"{self.type.value} location has {len(self.parts)} parts")
        return self.parts[0]

    @property
    def router_part(self) -> str:
        """The router component, where the type has an obvious one."""
        if self.type in (LocationType.ROUTER,):
            return self.parts[0]
        if self.type in (LocationType.INTERFACE, LocationType.LINE_CARD):
            return self.parts[0].partition(":")[0]
        if self.type is LocationType.ROUTER_NEIGHBOR:
            return self.parts[0]
        raise ValueError(f"no router part in {self.type.value} location")

    def __str__(self) -> str:
        return f"{self.type.value}[{':'.join(self.parts)}]"


#: intern table for single-part locations (see ``Location._interned``);
#: bounded so adversarial name churn cannot grow it without limit
_INTERNED: dict = {}
_INTERN_CAP = 4096
