"""Priority job queue with admission control and bounded backpressure.

The service schedules two kinds of work: interactive symptom batches
submitted by operators, and periodic whole-application runs.  Both are
:class:`Job` objects in one priority queue; a numerically *lower*
priority runs first, ties drain FIFO (a sequence number breaks them,
so two equal-priority jobs never compare their payloads).

Admission control is explicit: the queue holds at most ``max_depth``
pending jobs.  A non-blocking submit raises :class:`QueueFull`
immediately; a blocking submit waits up to ``timeout`` for capacity
(bounded backpressure) and only then gives up.  Nothing is silently
dropped — every rejection is visible to the caller and counted by the
service metrics.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple


class QueueFull(RuntimeError):
    """Admission control refused the job (queue at max depth)."""


class JobShed(QueueFull):
    """Brownout refused the job (service degraded, priority too low).

    A subclass of :class:`QueueFull` so existing callers that treat
    every admission refusal alike keep working, while layers that must
    distinguish *retry later, we are full* (HTTP 429) from *degraded,
    low-priority work is being shed* (HTTP 503) can.
    """


class QueueClosed(RuntimeError):
    """The queue no longer accepts submissions (service draining)."""


class JobState(Enum):
    """Lifecycle of one job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    #: ran past its deadline and was cancelled (cooperatively or by the
    #: supervisor detaching a hung worker)
    TIMED_OUT = "timed_out"
    #: repeatedly crashed its workers and was pulled from service
    QUARANTINED = "quarantined"


#: States a job can never leave; reaching one sets the done event.
TERMINAL_STATES = frozenset(
    {
        JobState.DONE,
        JobState.FAILED,
        JobState.CANCELLED,
        JobState.TIMED_OUT,
        JobState.QUARANTINED,
    }
)


#: Priority bands used by the service; lower runs first.
PRIORITY_INTERACTIVE = 10
PRIORITY_PERIODIC = 20
#: Added to a job's priority when its app's evidence feeds are impaired:
#: the diagnosis would carry low confidence anyway, so healthy work goes
#: first — but the job still runs (impairment never blocks the queue).
PRIORITY_IMPAIRED_PENALTY = 5


@dataclass
class Job:
    """One unit of service work plus its completion state."""

    kind: str  # "diagnose" | "run" | custom
    app: str
    payload: Any
    priority: int = PRIORITY_INTERACTIVE
    submitted_at: float = 0.0
    job_id: int = 0
    state: JobState = JobState.PENDING
    result: Any = None
    error: Optional[BaseException] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: record a span tree for this job (one fresh tracer per execution)
    traced: bool = False
    #: the finished ``job`` span once a traced job completes
    trace: Any = None
    #: absolute deadline on the service clock (None = unbounded)
    deadline: Optional[float] = None
    #: cooperative cancellation token checked at engine stage boundaries
    cancel: Any = None
    #: execution attempts so far (retries increment; 0 = never started)
    attempts: int = 0
    #: times this job's worker died mid-execution (poison tracking)
    crash_count: int = 0
    #: name of the worker currently/last executing this job
    worker_name: Optional[str] = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)
    _state_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def outcome(self, timeout: Optional[float] = None) -> Any:
        """The job's result; re-raises its error; raises on timeout."""
        if not self.wait(timeout):
            raise TimeoutError(f"job {self.job_id} not finished after {timeout}s")
        if self.state is JobState.CANCELLED:
            raise QueueClosed(f"job {self.job_id} was cancelled")
        if self.error is not None:
            raise self.error
        return self.result

    def request_cancel(self, reason: str = "cancelled") -> None:
        """Trip the job's cancellation token (no-op without one)."""
        if self.cancel is not None:
            self.cancel.cancel(reason)

    # -- called by the queue/workers -----------------------------------
    #
    # The first terminal transition wins: a worker finishing a detached
    # job and the supervisor timing it out may race, and exactly one of
    # them must set the state, error and done event.  Each mark_*
    # returns whether it applied.

    def mark_running(self, now: float) -> None:
        """Record execution start (no-op once terminal)."""
        with self._state_lock:
            if self.state in TERMINAL_STATES:
                return
            self.state = JobState.RUNNING
            self.started_at = now

    def mark_pending(self) -> bool:
        """Reset for re-admission (retry/failover); False once terminal."""
        with self._state_lock:
            if self.state in TERMINAL_STATES:
                return False
            self.state = JobState.PENDING
            self.started_at = None
            return True

    def _finish(
        self,
        state: JobState,
        now: Optional[float],
        result: Any = None,
        error: Optional[BaseException] = None,
    ) -> bool:
        with self._state_lock:
            if self.state in TERMINAL_STATES:
                return False
            self.state = state
            self.finished_at = now
            self.result = result
            self.error = error
        self._done.set()
        return True

    def mark_done(self, result: Any, now: float) -> bool:
        """Finish DONE with ``result``; False if something won the race."""
        return self._finish(JobState.DONE, now, result=result)

    def mark_failed(self, error: BaseException, now: float) -> bool:
        """Finish FAILED with ``error``; False if already terminal."""
        return self._finish(JobState.FAILED, now, error=error)

    def mark_cancelled(self) -> bool:
        """Finish CANCELLED; False if already terminal."""
        return self._finish(JobState.CANCELLED, None)

    def mark_timed_out(self, error: BaseException, now: float) -> bool:
        """Finish TIMED_OUT with ``error``; False if already terminal."""
        return self._finish(JobState.TIMED_OUT, now, error=error)

    def mark_quarantined(self, error: BaseException, now: float) -> bool:
        """Finish QUARANTINED with ``error``; False if already terminal."""
        return self._finish(JobState.QUARANTINED, now, error=error)


class JobQueue:
    """Thread-safe bounded priority queue of :class:`Job` objects."""

    def __init__(self, max_depth: int = 256) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self._heap: List[Tuple[int, int, Job]] = []
        self._sequence = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        #: jobs handed to workers but not yet task_done()
        self._in_flight = 0
        self._idle = threading.Condition(self._lock)

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def submit(
        self, job: Job, block: bool = False, timeout: Optional[float] = None
    ) -> Job:
        """Enqueue a job, applying admission control.

        ``block=False``: raise :class:`QueueFull` when at max depth.
        ``block=True``: wait up to ``timeout`` seconds for capacity
        (``None`` waits indefinitely), then raise :class:`QueueFull`.
        Raises :class:`QueueClosed` once the queue is closed.
        """
        with self._lock:
            if self._closed:
                raise QueueClosed("queue is closed to new submissions")
            if len(self._heap) >= self.max_depth:
                if not block:
                    raise QueueFull(
                        f"queue at max depth {self.max_depth}; job refused"
                    )
                if not self._not_full.wait_for(
                    lambda: len(self._heap) < self.max_depth or self._closed,
                    timeout=timeout,
                ):
                    raise QueueFull(
                        f"queue still at max depth {self.max_depth} "
                        f"after {timeout}s backpressure wait"
                    )
                if self._closed:
                    raise QueueClosed("queue closed while waiting for capacity")
            heapq.heappush(self._heap, (job.priority, next(self._sequence), job))
            self._not_empty.notify()
            return job

    def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Dequeue the highest-priority job; ``None`` on timeout/closed-empty."""
        with self._lock:
            if not self._not_empty.wait_for(
                lambda: self._heap or self._closed, timeout=timeout
            ):
                return None
            if not self._heap:
                return None  # closed and drained
            _, _, job = heapq.heappop(self._heap)
            self._in_flight += 1
            self._not_full.notify()
            return job

    def requeue(self, job: Job) -> bool:
        """Re-admit an already-admitted job (retry / crash failover).

        Bypasses admission control and works on a *closed* queue — the
        job passed admission once; failing it over after close must not
        silently drop it.  Returns ``False`` when the job has already
        reached a terminal state (nothing left to re-run).

        Callers reconciling a crashed worker must requeue *before*
        calling :meth:`task_done`, so :meth:`join` can never observe an
        empty-and-idle instant with the failover still in hand.
        """
        with self._lock:
            if not job.mark_pending():
                return False
            heapq.heappush(self._heap, (job.priority, next(self._sequence), job))
            self._not_empty.notify()
            return True

    def task_done(self) -> None:
        """Workers call this after finishing a job obtained via get()."""
        with self._lock:
            self._in_flight -= 1
            if self._in_flight < 0:
                raise RuntimeError("task_done() called more times than get()")
            if self._in_flight == 0 and not self._heap:
                self._idle.notify_all()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait until the queue is empty and nothing is in flight."""
        with self._lock:
            return self._idle.wait_for(
                lambda: not self._heap and self._in_flight == 0, timeout=timeout
            )

    def close(self) -> List[Job]:
        """Stop accepting submissions; pending jobs stay queued.

        Returns the jobs still pending at close time (they will still be
        served unless :meth:`cancel_pending` is called).
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
            return [job for _, _, job in sorted(self._heap)]

    def cancel_pending(self) -> List[Job]:
        """Drop every queued job, marking each cancelled."""
        with self._lock:
            cancelled = [job for _, _, job in self._heap]
            self._heap.clear()
            for job in cancelled:
                job.mark_cancelled()
            if self._in_flight == 0:
                self._idle.notify_all()
            self._not_full.notify_all()
            return cancelled

    def pending(self) -> List[Job]:
        """Queued jobs in service order (does not dequeue)."""
        with self._lock:
            return [job for _, _, job in sorted(self._heap)]
