"""Service metrics: counters, gauges and latency histograms.

The deployed G-RCA is operated, not just run — operators watch queue
depth, diagnosis latency and cache efficiency to know whether the
platform keeps up with its ~600 feeds.  This module is a dependency-free
metrics registry for that purpose: every service component records into
a shared :class:`ServiceMetrics`, and the CLI/API render one snapshot.

All types are thread-safe (one lock per instrument) and injectable-clock
friendly; histograms keep a bounded reservoir of recent samples, so
percentiles reflect recent behaviour and memory stays constant.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional


class Counter:
    """Monotonic event counter."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Instantaneous value (queue depth, workers busy) with a high-water mark."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._value = 0.0
        self._peak = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            self._peak = max(self._peak, value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta
            self._peak = max(self._peak, self._value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def peak(self) -> float:
        with self._lock:
            return self._peak


class Histogram:
    """Latency histogram over a bounded reservoir of recent samples.

    Tracks exact count/sum/min/max since start; percentiles are computed
    over the newest ``reservoir`` samples (a sliding window, not a
    uniform sample — recent behaviour is what an operator tunes against).
    """

    def __init__(self, name: str, help_text: str = "", reservoir: int = 2048) -> None:
        self.name = name
        self.help_text = help_text
        self._samples: Deque[float] = deque(maxlen=reservoir)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(value)
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, fraction: float) -> float:
        """Reservoir percentile; 0.0 when nothing was observed."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"percentile fraction must be in [0, 1], got {fraction}")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def summary(self) -> Dict[str, float]:
        """count / mean / p50 / p95 / max in one locked pass."""
        with self._lock:
            if not self._samples:
                return {"count": self._count, "mean": 0.0, "p50": 0.0,
                        "p95": 0.0, "max": self._max or 0.0}
            ordered = sorted(self._samples)
            count, total = self._count, self._sum
            maximum = self._max or 0.0
        def pct(fraction: float) -> float:
            return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]
        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "p50": pct(0.50),
            "p95": pct(0.95),
            "max": maximum,
        }


class ServiceMetrics:
    """Every instrument the RCA service layer records into.

    ``worker_busy_seconds`` accumulates per-worker execution time;
    :meth:`utilization` divides by ``workers x elapsed`` for the
    classic utilization ratio.
    """

    def __init__(self) -> None:
        self.jobs_submitted = Counter("jobs_submitted", "jobs accepted into the queue")
        self.jobs_rejected = Counter("jobs_rejected", "jobs refused by admission control")
        self.jobs_completed = Counter("jobs_completed", "jobs finished successfully")
        self.jobs_failed = Counter("jobs_failed", "jobs that raised")
        self.jobs_cancelled = Counter("jobs_cancelled", "jobs cancelled before running")
        self.jobs_timed_out = Counter(
            "jobs_timed_out", "jobs that exceeded their deadline"
        )
        self.jobs_quarantined = Counter(
            "jobs_quarantined", "poison jobs pulled from service"
        )
        self.jobs_retried = Counter(
            "jobs_retried", "transient-failure retries executed"
        )
        self.jobs_failed_over = Counter(
            "jobs_failed_over", "in-flight jobs requeued after a worker crash"
        )
        self.jobs_shed = Counter(
            "jobs_shed", "low-priority jobs refused during brownout"
        )
        self.worker_crashes = Counter(
            "worker_crashes", "worker threads that died abnormally"
        )
        self.workers_restarted = Counter(
            "workers_restarted", "replacement workers spawned by supervision"
        )
        self.workers_detached = Counter(
            "workers_detached", "hung workers abandoned past their grace"
        )
        self.supervisor_sweeps = Counter(
            "supervisor_sweeps", "supervision passes executed"
        )
        self.brownout_transitions = Counter(
            "brownout_transitions", "service health state changes"
        )
        self.brownout_active = Gauge(
            "brownout_active", "1 while the service is shedding load"
        )
        self.symptoms_diagnosed = Counter("symptoms_diagnosed", "engine diagnoses executed")
        self.cache_hits = Counter("cache_hits", "result-cache hits")
        self.cache_misses = Counter("cache_misses", "result-cache misses")
        self.cache_invalidations = Counter(
            "cache_invalidations", "entries evicted by late-arriving records"
        )
        self.spatial_cache_hits = Counter(
            "spatial_cache_hits", "location expansions served from the epoch cache"
        )
        self.spatial_cache_misses = Counter(
            "spatial_cache_misses", "location expansions recomputed"
        )
        self.spatial_cache_invalidations = Counter(
            "spatial_cache_invalidations",
            "cached expansions retired by routing-state changes",
        )
        self.queue_depth = Gauge("queue_depth", "jobs waiting in the queue")
        self.workers_busy = Gauge("workers_busy", "workers currently executing")
        self.queue_wait = Histogram("queue_wait_seconds", "submit-to-start latency")
        self.job_latency = Histogram("job_latency_seconds", "start-to-finish latency")
        self.diagnosis_latency = Histogram(
            "diagnosis_latency_seconds", "per-symptom engine latency"
        )
        #: per-stage exclusive-time histograms fed by traced jobs, keyed
        #: by span kind ("retrieve", "temporal-join", ...); created
        #: lazily on first observation of each stage
        self.stage_latency: Dict[str, Histogram] = {}
        self._stage_lock = threading.Lock()
        self._busy_lock = threading.Lock()
        self._busy_seconds = 0.0

    def observe_stages(self, breakdown: Dict[str, float]) -> None:
        """Record one traced job's per-stage exclusive times.

        ``breakdown`` maps span kind to summed self-seconds (the shape
        :func:`repro.obs.stage_breakdown` produces); each stage lands in
        its own histogram under :attr:`stage_latency`.
        """
        for stage, seconds in breakdown.items():
            with self._stage_lock:
                histogram = self.stage_latency.get(stage)
                if histogram is None:
                    histogram = Histogram(
                        f"stage_{stage}_seconds",
                        f"exclusive time in {stage} spans per traced job",
                    )
                    self.stage_latency[stage] = histogram
            histogram.observe(seconds)

    def stage_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-stage count/mean/p50/p95/max over traced jobs so far."""
        with self._stage_lock:
            stages = dict(self.stage_latency)
        return {stage: stages[stage].summary() for stage in sorted(stages)}

    def add_busy_seconds(self, seconds: float) -> None:
        with self._busy_lock:
            self._busy_seconds += seconds

    @property
    def worker_busy_seconds(self) -> float:
        with self._busy_lock:
            return self._busy_seconds

    def cache_hit_rate(self) -> float:
        """Hits over lookups, 0.0 before any lookup."""
        hits = self.cache_hits.value
        total = hits + self.cache_misses.value
        return hits / total if total else 0.0

    def spatial_cache_hit_rate(self) -> float:
        """Epoch-cache hits over lookups, 0.0 before any lookup."""
        hits = self.spatial_cache_hits.value
        total = hits + self.spatial_cache_misses.value
        return hits / total if total else 0.0

    def utilization(self, workers: int, elapsed_seconds: float) -> float:
        """Busy time as a fraction of total worker capacity."""
        capacity = workers * elapsed_seconds
        if capacity <= 0:
            return 0.0
        return min(1.0, self.worker_busy_seconds / capacity)

    def snapshot(self, workers: int = 0, elapsed_seconds: float = 0.0) -> Dict[str, object]:
        """One coherent-enough dictionary of everything, for dashboards."""
        snap: Dict[str, object] = {
            "jobs": {
                "submitted": self.jobs_submitted.value,
                "rejected": self.jobs_rejected.value,
                "completed": self.jobs_completed.value,
                "failed": self.jobs_failed.value,
                "cancelled": self.jobs_cancelled.value,
                "timed_out": self.jobs_timed_out.value,
                "quarantined": self.jobs_quarantined.value,
            },
            "recovery": {
                "worker_crashes": self.worker_crashes.value,
                "workers_restarted": self.workers_restarted.value,
                "workers_detached": self.workers_detached.value,
                "jobs_retried": self.jobs_retried.value,
                "jobs_failed_over": self.jobs_failed_over.value,
                "jobs_shed": self.jobs_shed.value,
                "supervisor_sweeps": self.supervisor_sweeps.value,
                "brownout_transitions": self.brownout_transitions.value,
                "brownout_active": self.brownout_active.value,
            },
            "symptoms_diagnosed": self.symptoms_diagnosed.value,
            "cache": {
                "hits": self.cache_hits.value,
                "misses": self.cache_misses.value,
                "invalidations": self.cache_invalidations.value,
                "hit_rate": self.cache_hit_rate(),
            },
            "spatial_cache": {
                "hits": self.spatial_cache_hits.value,
                "misses": self.spatial_cache_misses.value,
                "invalidations": self.spatial_cache_invalidations.value,
                "hit_rate": self.spatial_cache_hit_rate(),
            },
            "queue_depth": self.queue_depth.value,
            "queue_depth_peak": self.queue_depth.peak,
            "workers_busy": self.workers_busy.value,
            "worker_busy_seconds": self.worker_busy_seconds,
            "queue_wait": self.queue_wait.summary(),
            "job_latency": self.job_latency.summary(),
            "diagnosis_latency": self.diagnosis_latency.summary(),
            "stages": self.stage_summary(),
        }
        if workers and elapsed_seconds:
            snap["worker_utilization"] = self.utilization(workers, elapsed_seconds)
        return snap

    def format_lines(self, workers: int = 0, elapsed_seconds: float = 0.0) -> List[str]:
        """Human-readable rendering for the CLI's serve summary."""
        snap = self.snapshot(workers, elapsed_seconds)
        jobs = snap["jobs"]
        cache = snap["cache"]
        spatial = snap["spatial_cache"]
        wait = snap["queue_wait"]
        latency = snap["diagnosis_latency"]
        lines = [
            "service metrics:",
            (
                f"  jobs: {jobs['submitted']} submitted, {jobs['completed']} completed, "
                f"{jobs['failed']} failed, {jobs['rejected']} rejected, "
                f"{jobs['cancelled']} cancelled, {jobs['timed_out']} timed out, "
                f"{jobs['quarantined']} quarantined"
            ),
            (
                f"  recovery: {snap['recovery']['worker_crashes']} worker crashes, "
                f"{snap['recovery']['workers_restarted']} restarts, "
                f"{snap['recovery']['workers_detached']} detached, "
                f"{snap['recovery']['jobs_failed_over']} failovers, "
                f"{snap['recovery']['jobs_retried']} retries, "
                f"{snap['recovery']['jobs_shed']} shed"
            ),
            f"  symptoms diagnosed: {snap['symptoms_diagnosed']}",
            (
                f"  cache: {cache['hits']} hits / {cache['misses']} misses "
                f"(hit rate {100 * cache['hit_rate']:.1f}%), "
                f"{cache['invalidations']} invalidations"
            ),
            (
                f"  spatial cache: {spatial['hits']} hits / "
                f"{spatial['misses']} misses "
                f"(hit rate {100 * spatial['hit_rate']:.1f}%), "
                f"{spatial['invalidations']} invalidations"
            ),
            (
                f"  queue: depth {snap['queue_depth']:.0f} "
                f"(peak {snap['queue_depth_peak']:.0f}), "
                f"wait p50 {1000 * wait['p50']:.1f} ms / p95 {1000 * wait['p95']:.1f} ms"
            ),
            (
                f"  diagnosis latency: p50 {1000 * latency['p50']:.2f} ms, "
                f"p95 {1000 * latency['p95']:.2f} ms "
                f"({latency['count']} samples)"
            ),
        ]
        if "worker_utilization" in snap:
            lines.append(
                f"  worker utilization: {100 * snap['worker_utilization']:.1f}% "
                f"({workers} workers)"
            )
        stages = snap["stages"]
        if stages:
            lines.append("  traced stages (exclusive time per job):")
            for stage, summary in stages.items():
                lines.append(
                    f"    {stage}: p50 {1000 * summary['p50']:.2f} ms, "
                    f"p95 {1000 * summary['p95']:.2f} ms "
                    f"({summary['count']} jobs)"
                )
        return lines
