"""Watermark-keyed diagnosis result cache with footprint invalidation.

Operators re-query the same symptoms all day (the paper's Result
Browser is a polling UI), so repeated diagnoses should be near-free —
but never stale.  An entry is keyed by

    (application, symptom identity, diagnosis-graph fingerprint)

using the same :func:`repro.core.events.instance_key` identity as the
streaming engine's dedupe, and records two freshness anchors:

* the **store revision** (the data watermark) at the moment the
  diagnosis started, and
* the diagnosis **footprint** — every (table, window) the engine
  actually read while correlating.

Invalidation is push-based: the cache subscribes to the
:class:`~repro.collector.store.DataStore` insert feed, and a late
record landing *inside* a cached footprint window evicts exactly the
entries whose evidence it could have changed — entries whose windows
the record misses are untouched.  A graph edit changes the fingerprint,
so stale rule sets miss rather than serve.

The write path is race-safe: :meth:`store` refuses to cache a result
whose computation overlapped a relevant insert (checked against a
bounded mutation log), so a worker racing the ingest path can never
publish a diagnosis that was already stale when it finished.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..core.engine import Diagnosis, FootprintEntry
from ..core.events import EventInstance, instance_key
from .metrics import ServiceMetrics

#: Cache key: (application name, symptom identity, graph fingerprint).
CacheKey = Tuple[str, Tuple, str]


def cache_key(app: str, symptom: EventInstance, graph_fingerprint: str) -> CacheKey:
    """The canonical result-cache key for one symptom of one app."""
    return (app, instance_key(symptom), graph_fingerprint)


@dataclass
class CacheEntry:
    """One cached diagnosis plus its freshness anchors."""

    diagnosis: Diagnosis
    footprint: Tuple[FootprintEntry, ...]
    store_revision: int

    def covers(self, table: str, timestamp: float) -> bool:
        """True when a record at (table, timestamp) falls in the footprint."""
        for entry_table, lo, hi in self.footprint:
            if entry_table == table and lo <= timestamp <= hi:
                return True
        return False


class ResultCache:
    """Bounded LRU cache of diagnoses, invalidated by late records."""

    def __init__(
        self,
        capacity: int = 4096,
        metrics: Optional[ServiceMetrics] = None,
        mutation_log_size: int = 4096,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.metrics = metrics
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        # per-table interval lists for O(table entries) invalidation
        self._by_table: Dict[str, List[CacheKey]] = {}
        # recent inserts: (revision, table, timestamp); bounds the
        # store()-time race check
        self._mutations: Deque[Tuple[int, str, float]] = deque(
            maxlen=mutation_log_size
        )
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def attach(self, store) -> None:
        """Subscribe to a DataStore's insert feed for invalidation."""
        store.subscribe(self.note_insert)

    def detach(self, store) -> None:
        """Unsubscribe from a DataStore previously attached."""
        store.unsubscribe(self.note_insert)

    # ------------------------------------------------------------------

    def lookup(self, key: CacheKey) -> Optional[Diagnosis]:
        """The cached diagnosis, or None; counts hit/miss metrics."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if self.metrics is not None:
            if entry is not None:
                self.metrics.cache_hits.increment()
            else:
                self.metrics.cache_misses.increment()
        return entry.diagnosis if entry is not None else None

    def store(
        self,
        key: CacheKey,
        diagnosis: Diagnosis,
        store_revision: int,
        footprint: Optional[Tuple[FootprintEntry, ...]] = None,
    ) -> bool:
        """Cache a diagnosis computed at ``store_revision``.

        ``store_revision`` is the store's revision *before* the
        diagnosis ran.  Returns False (and caches nothing) when a
        relevant record landed during the computation, or when the
        mutation log can no longer prove there wasn't one.
        """
        footprint = diagnosis.footprint if footprint is None else footprint
        with self._lock:
            if not self._publishable(footprint, store_revision):
                return False
            if key in self._entries:
                self._remove(key)
            entry = CacheEntry(
                diagnosis=diagnosis,
                footprint=footprint,
                store_revision=store_revision,
            )
            self._entries[key] = entry
            for table, _, _ in footprint:
                self._by_table.setdefault(table, []).append(key)
            while len(self._entries) > self.capacity:
                oldest, _ = self._entries.popitem(last=False)
                self._unindex(oldest)
            return True

    def note_insert(self, table: str, timestamp: float, revision: int) -> None:
        """Store-insert hook: evict entries the new record could change."""
        with self._lock:
            self._mutations.append((revision, table, timestamp))
            keys = self._by_table.get(table)
            if not keys:
                return
            stale = [
                key
                for key in keys
                if key in self._entries
                and self._entries[key].covers(table, timestamp)
            ]
            for key in stale:
                self._remove(key)
        if stale and self.metrics is not None:
            self.metrics.cache_invalidations.increment(len(stale))

    def invalidate_all(self) -> int:
        """Drop everything (e.g. after routing state was rebuilt)."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._by_table.clear()
        if count and self.metrics is not None:
            self.metrics.cache_invalidations.increment(count)
        return count

    def keys(self) -> List[CacheKey]:
        """Current cache keys, oldest first."""
        with self._lock:
            return list(self._entries)

    def mutations_since(
        self, revision: int
    ) -> Optional[List[Tuple[int, str, float]]]:
        """Inserts logged after ``revision``, oldest first.

        Returns ``None`` when the bounded log no longer reaches back to
        ``revision`` — the caller cannot know what it missed and must
        invalidate wholesale.  Workers use this to sync their engines'
        private retrieval caches before diagnosing.
        """
        with self._lock:
            newer = [m for m in self._mutations if m[0] > revision]
            if newer and newer[0][0] != revision + 1:
                return None  # log dropped entries in (revision, newer[0])
            return newer

    # ------------------------------------------------------------------

    def _publishable(
        self, footprint: Tuple[FootprintEntry, ...], store_revision: int
    ) -> bool:
        if self._mutations and store_revision < self._mutations[0][0] - 1:
            # the log no longer reaches back to the computation's start;
            # a relevant insert may have been dropped — refuse to cache
            return False
        for revision, table, timestamp in self._mutations:
            if revision <= store_revision:
                continue
            for entry_table, lo, hi in footprint:
                if entry_table == table and lo <= timestamp <= hi:
                    return False
        return True

    def _remove(self, key: CacheKey) -> None:
        self._entries.pop(key, None)
        self._unindex(key)

    def _unindex(self, key: CacheKey) -> None:
        for keys in self._by_table.values():
            try:
                keys.remove(key)
            except ValueError:
                pass
