"""Worker supervision: detect, contain, and recover from runtime faults.

The RCA service must survive exactly the conditions it diagnoses —
overload, crashes, hung backends (the premise of Groot/CloudRCA-style
industrial RCA, and of the paper's always-on deployment).  This module
is the self-healing loop over the PR-2 runtime:

* **crash recovery** — a worker thread that died abnormally is detected
  by its next sweep; the supervisor settles the queue accounting the
  dead thread still owed (``task_done``), fails over its in-flight job
  (requeue) and spawns a replacement worker, restoring pool capacity.
* **poison-job quarantine** — a job that repeatedly kills its workers
  is the job-level analogue of a malformed feed line: after
  ``max_crashes`` worker deaths it is marked ``QUARANTINED`` (terminal)
  and parked in a bounded :class:`QuarantineBuffer` (the job-level
  :class:`~repro.collector.health.DeadLetterBuffer`) for inspection or
  later release.
* **deadline enforcement** — jobs carry cooperative cancellation
  tokens; a cooperating executor times itself out at the next engine
  checkpoint.  A *non*-cooperating (hung) executor is given
  ``hang_grace`` past its deadline, then the worker is **detached**:
  the supervisor settles the job (``TIMED_OUT``) and the queue on the
  zombie's behalf and replaces the worker, so a hang costs one thread,
  never a pool slot.
* **brownout** — each sweep feeds queue-wait p99 and the deadline-miss
  rate to the :class:`~repro.service.policy.BrownoutController`; while
  ``DEGRADED`` the service sheds low-priority admissions and trims
  exploration depth/tracing (wired in :class:`~repro.service.api.RcaService`).

Sweeps are deterministic and injectable-clock friendly: tests call
:meth:`WorkerSupervisor.sweep` directly; the live service runs it on a
daemon thread every ``interval`` seconds.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from .metrics import ServiceMetrics
from .policy import (
    BrownoutController,
    DeadlineExceeded,
    ServiceHealth,
)
from .queue import Job, JobQueue
from .workers import Worker, WorkerPool

LOG = logging.getLogger(__name__)


@dataclass
class SupervisorConfig:
    """Tunables of the supervision loop."""

    #: seconds between sweeps of the live supervision thread
    interval: float = 0.25
    #: worker deaths a single job may cause before quarantine
    max_crashes: int = 2
    #: seconds past its deadline before a hung worker is detached
    hang_grace: float = 1.0
    #: quarantine buffer capacity (oldest entries drop when full)
    quarantine_capacity: int = 256


@dataclass(frozen=True)
class QuarantineEntry:
    """One poison job pulled from service."""

    job: Job
    reason: str
    crashes: int
    quarantined_at: float


class QuarantineBuffer:
    """Bounded FIFO of quarantined jobs (job-level dead letters)."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: Deque[QuarantineEntry] = deque(maxlen=capacity)
        #: entries evicted because the buffer was full
        self.dropped = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def append(self, entry: QuarantineEntry) -> None:
        """Park one entry, evicting the oldest when at capacity."""
        with self._lock:
            if len(self._entries) == self.capacity:
                self.dropped += 1
            self._entries.append(entry)

    def entries(self) -> List[QuarantineEntry]:
        """Buffered entries, oldest first."""
        with self._lock:
            return list(self._entries)

    def drain(self) -> List[QuarantineEntry]:
        """Remove and return everything buffered (oldest first)."""
        with self._lock:
            drained = list(self._entries)
            self._entries.clear()
            return drained


class PoisonJob(RuntimeError):
    """Terminal error attached to quarantined jobs."""


class WorkerSupervisor:
    """Periodic sweep that keeps the worker pool whole and honest.

    One sweep does four things, in order: reconcile dead workers
    (accounting, failover/quarantine, replacement), enforce deadlines
    on running jobs (cancel tokens; detach workers hung past grace),
    evaluate brownout, and publish counters.  Sweeps are idempotent —
    a worker is reconciled exactly once (it is removed from the pool in
    the same step) and job terminal transitions are first-wins.
    """

    def __init__(
        self,
        pool: WorkerPool,
        queue: JobQueue,
        metrics: Optional[ServiceMetrics] = None,
        config: Optional[SupervisorConfig] = None,
        brownout: Optional[BrownoutController] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.pool = pool
        self.queue = queue
        self.metrics = metrics or pool.metrics
        self.config = config or SupervisorConfig()
        self.brownout = brownout
        self.clock = clock
        self.quarantine = QuarantineBuffer(self.config.quarantine_capacity)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: workers this supervisor already reconciled (by identity)
        self._reconciled: set = set()

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Run sweeps on a daemon thread every ``interval`` (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="rca-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the sweep thread (no-op when never started)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _run(self) -> None:  # pragma: no cover - timing loop over sweep()
        while not self._stop.wait(self.config.interval):
            try:
                self.sweep(self.clock())
            except Exception:  # noqa: BLE001 - supervision must survive itself
                LOG.exception("supervisor sweep failed")

    # ------------------------------------------------------------------
    # one sweep

    def sweep(self, now: Optional[float] = None) -> None:
        """One supervision pass (tests drive this directly)."""
        now = self.clock() if now is None else now
        if not self.pool.stopping:
            for worker in self.pool.members():
                # ident is set once the thread has actually started, so a
                # not-yet-started replacement is never mistaken for a corpse
                if worker.crashed or (
                    worker.ident is not None and not worker.is_alive()
                ):
                    self._reconcile_crash(worker, now)
                else:
                    self._enforce_deadline(worker, now)
        if self.brownout is not None:
            state = self.brownout.state
            new_state = self.brownout.evaluate(self.metrics, now)
            if new_state is not state:
                self.metrics.brownout_transitions.increment()
                self.metrics.brownout_active.set(
                    1.0 if new_state is ServiceHealth.DEGRADED else 0.0
                )
                LOG.warning("service health: %s -> %s", state.value, new_state.value)
        self.metrics.supervisor_sweeps.increment()

    # ------------------------------------------------------------------
    # crash reconciliation

    def _reconcile_crash(self, worker: Worker, now: float) -> None:
        if id(worker) in self._reconciled:
            return
        # a worker that exited cleanly (stop path) is not a crash; it
        # holds no job and set no crash flag — leave it alone
        if not worker.crashed and worker.current_job is None:
            return
        self._reconciled.add(id(worker))
        job = worker.current_job
        LOG.warning(
            "worker %s died abnormally (%s)%s",
            worker.name,
            type(worker.crash_error).__name__ if worker.crash_error else "unknown",
            f" holding job {job.job_id}" if job is not None else "",
        )
        if job is not None:
            worker.current_job = None
            job.crash_count += 1
            if not job.finished:
                if job.crash_count >= self.config.max_crashes:
                    self._quarantine(job, now)
                else:
                    self._fail_over(job, worker, now)
            # the dead thread never ran its task_done or busy decrement;
            # requeue-before-task_done keeps join() from a false idle
            self.queue.task_done()
            self.metrics.workers_busy.add(-1)
        if not worker.crashed:
            # thread died without reaching the crash handler at all
            self.metrics.worker_crashes.increment()
        self.pool.replace(worker)

    def _fail_over(self, job: Job, worker: Worker, now: float) -> None:
        requeued = self.queue.requeue(job)
        if requeued:
            self.metrics.jobs_failed_over.increment()
            LOG.warning(
                "job %s failed over after worker %s crash (%d/%d)",
                job.job_id, worker.name, job.crash_count, self.config.max_crashes,
            )
        elif not job.finished:
            error = worker.crash_error or PoisonJob(
                f"worker {worker.name} died executing job {job.job_id}"
            )
            if job.mark_failed(error, now):
                self.metrics.jobs_failed.increment()

    def _quarantine(self, job: Job, now: float) -> None:
        error = PoisonJob(
            f"job {job.job_id} killed {job.crash_count} workers; quarantined"
        )
        if job.mark_quarantined(error, now):
            self.metrics.jobs_quarantined.increment()
            self.quarantine.append(
                QuarantineEntry(
                    job=job,
                    reason=str(error),
                    crashes=job.crash_count,
                    quarantined_at=now,
                )
            )
            LOG.error("%s", error)

    # ------------------------------------------------------------------
    # deadlines and hangs

    def _enforce_deadline(self, worker: Worker, now: float) -> None:
        job = worker.current_job
        if job is None or job.deadline is None:
            return
        overdue = now - job.deadline
        if overdue < 0:
            return
        # first line: trip the token so cooperative checkpoints stop it
        job.request_cancel(f"deadline exceeded by {overdue:.3f}s")
        if overdue < self.config.hang_grace:
            return
        self._detach(worker, job, now, overdue)

    def _detach(self, worker: Worker, job: Job, now: float, overdue: float) -> None:
        """Abandon a hung worker: settle its job and queue, replace it.

        The handoff is atomic under the worker's job lock: either the
        worker already settled (current_job cleared) and we do nothing,
        or we set ``detached`` and own the settlement — the zombie
        thread sees the flag and touches neither the job nor the queue.
        """
        with worker._job_lock:
            if worker.current_job is not job or worker.detached.is_set():
                return
            worker.detached.set()
            worker.current_job = None
            self.queue.task_done()
        self.metrics.workers_detached.increment()
        if job.mark_timed_out(
            DeadlineExceeded(
                f"hung worker {worker.name} detached "
                f"{overdue:.3f}s past the job deadline"
            ),
            now,
        ):
            self.metrics.jobs_timed_out.increment()
        LOG.error(
            "worker %s hung on job %s; detached and replaced",
            worker.name, job.job_id,
        )
        self.pool.replace(worker)
