"""Worker pool: parallel diagnosis against a shared store.

Two execution surfaces share this module:

* :class:`WorkerPool` — long-lived worker threads serving the service's
  :class:`~repro.service.queue.JobQueue`.  Each worker lazily builds an
  **isolated** engine per application via
  :meth:`~repro.core.engine.RcaEngine.isolated`, so retrieval caches
  are private per worker while the (thread-safe) :class:`DataStore` is
  shared — concurrent diagnoses never contend on cached windows.
* :func:`parallel_diagnose` — a one-shot batch helper for CLI runs and
  benchmarks.  It splits the symptom list into contiguous chunks
  (contiguous in time, so each worker's retrieval cache stays local)
  and runs them on a backend:

  - ``"thread"`` — isolated-engine threads.  Correct everywhere, but
    the GIL serializes the pure-Python correlation work, so it offers
    concurrency, not CPU parallelism.
  - ``"fork"`` — forked worker processes (POSIX only).  Each child
    inherits the engine copy-on-write and genuinely runs on its own
    core; diagnoses are returned by pickle.  Requires a quiescent
    store (batch mode), which is exactly when it is used.
  - ``"auto"`` — ``"fork"`` when the platform can fork *and* more than
    one CPU is available, else ``"thread"``.

  Either backend returns diagnoses in the exact order of the input
  symptoms and byte-equal to a serial :meth:`diagnose_all` run.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from typing import Callable, List, Optional, Sequence

from ..core.engine import Diagnosis, RcaEngine
from ..core.events import EventInstance
from ..obs.trace import Tracer
from .metrics import ServiceMetrics
from .policy import DeadlineExceeded, OperationCancelled, RetryPolicy
from .queue import Job, JobQueue, JobState

LOG = logging.getLogger(__name__)


class WorkerCrash(BaseException):
    """Abrupt worker-thread death (fault injection or internal bug).

    Deliberately *not* an :class:`Exception`: job isolation catches
    ``Exception``-family errors and fails the one job; a
    ``WorkerCrash`` models the thread itself dying mid-execution — no
    job accounting runs, ``task_done`` is never called, and the
    :class:`~repro.service.supervisor.WorkerSupervisor` must detect the
    dead thread, reconcile the queue, fail over the in-flight job and
    restore pool capacity.  The chaos harness raises it to prove all of
    that actually happens.
    """

#: Module-level slot a forked child inherits its engine through.
_FORK_ENGINE: Optional[RcaEngine] = None
_FORK_SYMPTOMS: Optional[Sequence[EventInstance]] = None
_FORK_TRACED: bool = False


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_backend() -> str:
    """The batch backend ``"auto"`` resolves to on this machine."""
    if hasattr(os, "fork") and available_cpus() > 1:
        return "fork"
    return "thread"


def contiguous_chunks(items: Sequence, n: int) -> List[Sequence]:
    """Split into at most ``n`` contiguous, near-equal, non-empty runs."""
    n = max(1, min(n, len(items)))
    size, remainder = divmod(len(items), n)
    chunks, start = [], 0
    for i in range(n):
        stop = start + size + (1 if i < remainder else 0)
        chunks.append(items[start:stop])
        start = stop
    return chunks


def _fork_worker(span) -> bytes:
    """Runs in the forked child: diagnose one index range, pickle back.

    When the parent requested tracing, each diagnosis gets its own
    fresh tracer *in the child*; the finished span tree rides back to
    the parent attached to the pickled :class:`Diagnosis` — spans never
    share state across processes, so jobs cannot leak into each other.
    """
    import pickle

    lo, hi = span
    engine = _FORK_ENGINE
    diagnoses = [
        engine.diagnose(s, tracer=Tracer() if _FORK_TRACED else None)
        for s in _FORK_SYMPTOMS[lo:hi]
    ]
    return pickle.dumps(diagnoses, protocol=pickle.HIGHEST_PROTOCOL)


def parallel_diagnose(
    engine: RcaEngine,
    symptoms: Sequence[EventInstance],
    jobs: int = 1,
    backend: str = "auto",
    traced: bool = False,
) -> List[Diagnosis]:
    """Diagnose a batch with ``jobs`` parallel workers.

    Output order and content match ``engine.diagnose_all(symptoms)``
    exactly.  ``jobs <= 1`` (or a single-item batch) falls back to the
    serial path with zero overhead.

    ``traced=True`` records one span tree per symptom (a fresh
    :class:`repro.obs.Tracer` each), attached as
    :attr:`~repro.core.engine.Diagnosis.trace`.  Traces survive both
    backends — thread workers build them in-thread, fork workers build
    them in the child and pickle them back — and never mix between
    symptoms.
    """
    if jobs <= 1 or len(symptoms) <= 1:
        return engine.diagnose_all(symptoms, traced=traced)
    if backend == "auto":
        backend = default_backend()
    if backend == "thread":
        return _thread_diagnose(engine, symptoms, jobs, traced)
    if backend == "fork":
        return _fork_diagnose(engine, symptoms, jobs, traced)
    raise ValueError(f"unknown backend {backend!r}; use 'auto', 'thread' or 'fork'")


def _thread_diagnose(
    engine: RcaEngine,
    symptoms: Sequence[EventInstance],
    jobs: int,
    traced: bool = False,
) -> List[Diagnosis]:
    chunks = contiguous_chunks(symptoms, jobs)
    results: List[Optional[List[Diagnosis]]] = [None] * len(chunks)
    errors: List[BaseException] = []

    def run(index: int, chunk: Sequence[EventInstance]) -> None:
        worker_engine = engine.isolated()
        try:
            results[index] = [
                worker_engine.diagnose(s, tracer=Tracer() if traced else None)
                for s in chunk
            ]
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(i, chunk), daemon=True)
        for i, chunk in enumerate(chunks)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return [d for chunk in results for d in chunk]  # type: ignore[union-attr]


def _fork_diagnose(
    engine: RcaEngine,
    symptoms: Sequence[EventInstance],
    jobs: int,
    traced: bool = False,
) -> List[Diagnosis]:
    import multiprocessing as mp
    import pickle

    global _FORK_ENGINE, _FORK_SYMPTOMS, _FORK_TRACED
    chunks = contiguous_chunks(symptoms, jobs)
    spans, start = [], 0
    for chunk in chunks:
        spans.append((start, start + len(chunk)))
        start += len(chunk)
    context = mp.get_context("fork")
    # children inherit engine + symptoms via fork (no pickling of the
    # engine); an isolated copy keeps the parent's retrieval cache as
    # the serial path would have left it
    _FORK_ENGINE = engine.isolated()
    _FORK_SYMPTOMS = symptoms
    _FORK_TRACED = traced
    try:
        with context.Pool(processes=len(spans)) as pool:
            blobs = pool.map(_fork_worker, spans)
    finally:
        _FORK_ENGINE = None
        _FORK_SYMPTOMS = None
        _FORK_TRACED = False
    ordered: List[Diagnosis] = []
    for blob in blobs:
        ordered.extend(pickle.loads(blob))
    return ordered


class Worker(threading.Thread):
    """One pool thread: pulls jobs, executes them with private engines.

    Supervision contract (see :mod:`repro.service.supervisor`):

    * :attr:`current_job` is the dequeued job whose ``task_done`` has
      not run yet; on a dead thread it is exactly the accounting the
      supervisor still owes the queue.
    * :attr:`detached` is set by the supervisor when it gives up on a
      hung execution: the supervisor settles the job and the queue on
      the worker's behalf, and the zombie thread — if it ever wakes —
      must touch neither before exiting.  ``_job_lock`` makes the
      handoff atomic, so ``task_done`` runs exactly once per job.
    * :attr:`crashed` / :attr:`crash_error` record an abnormal thread
      exit (a :class:`WorkerCrash`, or an unexpected error in the
      dequeue loop itself — satellite: ``queue.get``/``task_done``
      failures must be counted and logged, never silent).
    """

    def __init__(
        self,
        name: str,
        queue: JobQueue,
        executor: Callable[[Job, "Worker"], object],
        metrics: ServiceMetrics,
        stop_event: threading.Event,
        clock: Callable[[], float] = time.monotonic,
        poll_seconds: float = 0.1,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__(name=name, daemon=True)
        self.queue = queue
        self.executor = executor
        self.metrics = metrics
        self.stop_event = stop_event
        self.clock = clock
        self.poll_seconds = poll_seconds
        self.retry = retry
        self.sleep = sleep
        #: app name -> this worker's isolated engine
        self.engines = {}
        self.jobs_executed = 0
        #: dequeued job still owing ``task_done`` (supervisor-visible)
        self.current_job: Optional[Job] = None
        self._job_lock = threading.Lock()
        #: set by the supervisor once it has settled this worker's job
        self.detached = threading.Event()
        #: the thread exited abnormally (crash, not a clean stop)
        self.crashed = False
        self.crash_error: Optional[BaseException] = None

    def engine_for(self, app: str, prototype: RcaEngine) -> RcaEngine:
        """This worker's isolated engine for one app (built on first use)."""
        engine = self.engines.get(app)
        if engine is None:
            engine = prototype.isolated()
            self.engines[app] = engine
        return engine

    def run(self) -> None:  # pragma: no cover - exercised via the pool
        """Thread body: dequeue loop plus last-resort crash accounting."""
        try:
            self._loop()
        except WorkerCrash as exc:
            # simulated/real abrupt death: leave current_job and the
            # queue untouched — the supervisor reconciles both
            self.crashed = True
            self.crash_error = exc
            self.metrics.worker_crashes.increment()
        except BaseException as exc:  # noqa: BLE001 - last-resort accounting
            # an error outside job execution (queue.get / task_done):
            # historically this killed the thread silently; now it is
            # logged, counted, and the in-flight job — whose accounting
            # already ran — is failed so its waiters unblock
            self.crashed = True
            self.crash_error = exc
            self.metrics.worker_crashes.increment()
            LOG.exception(
                "worker %s died outside job execution", self.name
            )
            with self._job_lock:
                job = self.current_job
            if job is not None and job.mark_failed(exc, self.clock()):
                self.metrics.jobs_failed.increment()

    def _loop(self) -> None:
        while not self.detached.is_set():
            job = self.queue.get(timeout=self.poll_seconds)
            if job is None:
                if self._should_exit():
                    return
                continue
            with self._job_lock:
                self.current_job = job
            self._execute(job)

    def _should_exit(self) -> bool:
        """Exit once stop was requested (or the queue closed) and the
        queue is drained.

        In-flight jobs on *other* workers never keep an idle worker
        alive: pending work is what workers exist for, and a drained
        heap with the stop signal up means there will never be any.
        (A supervisor failover can still requeue onto a closed queue —
        the replacement worker it spawns serves that job.)
        """
        return (self.stop_event.is_set() or self.queue.closed) and len(
            self.queue
        ) == 0

    def _execute(self, job: Job) -> None:
        started = self.clock()
        self.metrics.queue_depth.set(len(self.queue))
        self.metrics.queue_wait.observe(max(0.0, started - job.submitted_at))
        self.metrics.workers_busy.add(1)
        job.worker_name = self.name
        job.mark_running(started)
        try:
            result = self._attempt(job)
        except WorkerCrash:
            raise  # abrupt death: accounting intentionally left undone
        except DeadlineExceeded as exc:
            if job.mark_timed_out(exc, self.clock()):
                self.metrics.jobs_timed_out.increment()
        except OperationCancelled:
            if job.mark_cancelled():
                self.metrics.jobs_cancelled.increment()
        except BaseException as exc:  # noqa: BLE001 - job isolation
            if job.mark_failed(exc, self.clock()):
                self.metrics.jobs_failed.increment()
        else:
            if job.mark_done(result, self.clock()):
                self.metrics.jobs_completed.increment()
        self._settle(started)

    def _attempt(self, job: Job) -> object:
        """Run the executor, retrying transient failures in place.

        Retries are bounded by the policy *and* the job's deadline: the
        pre-check raises before a doomed attempt starts, so a retrying
        job can never outlive its deadline by more than one attempt.
        """
        attempt = 0
        while True:
            attempt += 1
            job.attempts = attempt
            if job.cancel is not None:
                job.cancel.check()
            try:
                return self.executor(job, self)
            except WorkerCrash:
                raise
            except OperationCancelled:
                raise
            except Exception as exc:  # noqa: BLE001 - classified below
                if self.retry is None or not self.retry.should_retry(
                    exc, attempt
                ):
                    raise
                self.metrics.jobs_retried.increment()
                LOG.warning(
                    "worker %s: transient failure on job %s attempt %d "
                    "(%s: %s); retrying",
                    self.name, job.job_id, attempt, type(exc).__name__, exc,
                )
                self.sleep(self.retry.delay(attempt))

    def _settle(self, started: float) -> None:
        """Post-execution accounting, exactly once per dequeued job.

        A detached worker's job was already settled by the supervisor
        (state, metrics and ``task_done``), so the zombie thread skips
        everything except its own busy-time bookkeeping.
        """
        elapsed = self.clock() - started
        self.metrics.job_latency.observe(elapsed)
        self.metrics.add_busy_seconds(elapsed)
        self.metrics.workers_busy.add(-1)
        self.jobs_executed += 1
        with self._job_lock:
            self.current_job = None
            if not self.detached.is_set():
                self.queue.task_done()


class WorkerPool:
    """Fixed-size pool of :class:`Worker` threads over one queue.

    The pool can *heal*: :meth:`replace` swaps a dead or detached
    worker for a freshly spawned one (same queue, executor and clock),
    which is how the supervisor restores capacity after a crash.  The
    workers list is guarded by a lock because the supervisor mutates it
    from its sweep thread while callers read :attr:`alive`.
    """

    def __init__(
        self,
        queue: JobQueue,
        executor: Callable[[Job, Worker], object],
        workers: int = 4,
        metrics: Optional[ServiceMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
        retry: Optional[RetryPolicy] = None,
        poll_seconds: float = 0.1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.queue = queue
        self.executor = executor
        self.metrics = metrics or ServiceMetrics()
        self.clock = clock
        self.retry = retry
        self.poll_seconds = poll_seconds
        self.capacity = workers
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._spawned = 0
        self.workers = [self._new_worker() for _ in range(workers)]
        self._started = False
        #: workers that failed to join at the last stop()
        self.leaked = 0

    def _new_worker(self) -> Worker:
        worker = Worker(
            name=f"rca-worker-{self._spawned}",
            queue=self.queue,
            executor=self.executor,
            metrics=self.metrics,
            stop_event=self._stop,
            clock=self.clock,
            retry=self.retry,
            poll_seconds=self.poll_seconds,
        )
        self._spawned += 1
        return worker

    def __len__(self) -> int:
        with self._lock:
            return len(self.workers)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        with self._lock:
            workers = list(self.workers)
        for worker in workers:
            worker.start()

    def replace(self, worker: Worker) -> Optional[Worker]:
        """Swap a dead/detached worker for a fresh one (capacity heal).

        Returns the replacement, or ``None`` when the pool is stopping
        (shutdown must not fight the supervisor for thread lifecycles)
        or the worker is no longer a member (already replaced).
        """
        if self._stop.is_set():
            return None
        with self._lock:
            if worker not in self.workers:
                return None
            self.workers.remove(worker)
            replacement = self._new_worker()
            self.workers.append(replacement)
        # count before starting: once the replacement is observably
        # alive, the restart must already be on the books
        self.metrics.workers_restarted.increment()
        if self._started:
            replacement.start()
        return replacement

    def stop(self, timeout: Optional[float] = 10.0) -> bool:
        """Signal workers to exit once the queue drains, then join them.

        Returns ``True`` when every worker thread exited within the
        timeout.  Workers that failed to join are counted in
        :attr:`leaked` and logged — shutdown loss is never silent.
        """
        self._stop.set()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            workers = list(self.workers)
        leaked: List[Worker] = []
        for worker in workers:
            if not worker.is_alive():
                continue
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            worker.join(remaining)
            if worker.is_alive():
                leaked.append(worker)
        self.leaked = len(leaked)
        for worker in leaked:
            LOG.warning(
                "worker %s failed to join within %ss at pool stop "
                "(thread leaked; job %s)",
                worker.name, timeout,
                worker.current_job.job_id if worker.current_job else None,
            )
        return not leaked

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    @property
    def alive(self) -> int:
        with self._lock:
            return sum(1 for worker in self.workers if worker.is_alive())

    def members(self) -> List[Worker]:
        """Snapshot of the current workers (supervisor sweep input)."""
        with self._lock:
            return list(self.workers)
