"""Worker pool: parallel diagnosis against a shared store.

Two execution surfaces share this module:

* :class:`WorkerPool` — long-lived worker threads serving the service's
  :class:`~repro.service.queue.JobQueue`.  Each worker lazily builds an
  **isolated** engine per application via
  :meth:`~repro.core.engine.RcaEngine.isolated`, so retrieval caches
  are private per worker while the (thread-safe) :class:`DataStore` is
  shared — concurrent diagnoses never contend on cached windows.
* :func:`parallel_diagnose` — a one-shot batch helper for CLI runs and
  benchmarks.  It splits the symptom list into contiguous chunks
  (contiguous in time, so each worker's retrieval cache stays local)
  and runs them on a backend:

  - ``"thread"`` — isolated-engine threads.  Correct everywhere, but
    the GIL serializes the pure-Python correlation work, so it offers
    concurrency, not CPU parallelism.
  - ``"fork"`` — forked worker processes (POSIX only).  Each child
    inherits the engine copy-on-write and genuinely runs on its own
    core; diagnoses are returned by pickle.  Requires a quiescent
    store (batch mode), which is exactly when it is used.
  - ``"auto"`` — ``"fork"`` when the platform can fork *and* more than
    one CPU is available, else ``"thread"``.

  Either backend returns diagnoses in the exact order of the input
  symptoms and byte-equal to a serial :meth:`diagnose_all` run.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, List, Optional, Sequence

from ..core.engine import Diagnosis, RcaEngine
from ..core.events import EventInstance
from ..obs.trace import Tracer
from .metrics import ServiceMetrics
from .queue import Job, JobQueue, JobState

#: Module-level slot a forked child inherits its engine through.
_FORK_ENGINE: Optional[RcaEngine] = None
_FORK_SYMPTOMS: Optional[Sequence[EventInstance]] = None
_FORK_TRACED: bool = False


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_backend() -> str:
    """The batch backend ``"auto"`` resolves to on this machine."""
    if hasattr(os, "fork") and available_cpus() > 1:
        return "fork"
    return "thread"


def contiguous_chunks(items: Sequence, n: int) -> List[Sequence]:
    """Split into at most ``n`` contiguous, near-equal, non-empty runs."""
    n = max(1, min(n, len(items)))
    size, remainder = divmod(len(items), n)
    chunks, start = [], 0
    for i in range(n):
        stop = start + size + (1 if i < remainder else 0)
        chunks.append(items[start:stop])
        start = stop
    return chunks


def _fork_worker(span) -> bytes:
    """Runs in the forked child: diagnose one index range, pickle back.

    When the parent requested tracing, each diagnosis gets its own
    fresh tracer *in the child*; the finished span tree rides back to
    the parent attached to the pickled :class:`Diagnosis` — spans never
    share state across processes, so jobs cannot leak into each other.
    """
    import pickle

    lo, hi = span
    engine = _FORK_ENGINE
    diagnoses = [
        engine.diagnose(s, tracer=Tracer() if _FORK_TRACED else None)
        for s in _FORK_SYMPTOMS[lo:hi]
    ]
    return pickle.dumps(diagnoses, protocol=pickle.HIGHEST_PROTOCOL)


def parallel_diagnose(
    engine: RcaEngine,
    symptoms: Sequence[EventInstance],
    jobs: int = 1,
    backend: str = "auto",
    traced: bool = False,
) -> List[Diagnosis]:
    """Diagnose a batch with ``jobs`` parallel workers.

    Output order and content match ``engine.diagnose_all(symptoms)``
    exactly.  ``jobs <= 1`` (or a single-item batch) falls back to the
    serial path with zero overhead.

    ``traced=True`` records one span tree per symptom (a fresh
    :class:`repro.obs.Tracer` each), attached as
    :attr:`~repro.core.engine.Diagnosis.trace`.  Traces survive both
    backends — thread workers build them in-thread, fork workers build
    them in the child and pickle them back — and never mix between
    symptoms.
    """
    if jobs <= 1 or len(symptoms) <= 1:
        return engine.diagnose_all(symptoms, traced=traced)
    if backend == "auto":
        backend = default_backend()
    if backend == "thread":
        return _thread_diagnose(engine, symptoms, jobs, traced)
    if backend == "fork":
        return _fork_diagnose(engine, symptoms, jobs, traced)
    raise ValueError(f"unknown backend {backend!r}; use 'auto', 'thread' or 'fork'")


def _thread_diagnose(
    engine: RcaEngine,
    symptoms: Sequence[EventInstance],
    jobs: int,
    traced: bool = False,
) -> List[Diagnosis]:
    chunks = contiguous_chunks(symptoms, jobs)
    results: List[Optional[List[Diagnosis]]] = [None] * len(chunks)
    errors: List[BaseException] = []

    def run(index: int, chunk: Sequence[EventInstance]) -> None:
        worker_engine = engine.isolated()
        try:
            results[index] = [
                worker_engine.diagnose(s, tracer=Tracer() if traced else None)
                for s in chunk
            ]
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(i, chunk), daemon=True)
        for i, chunk in enumerate(chunks)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return [d for chunk in results for d in chunk]  # type: ignore[union-attr]


def _fork_diagnose(
    engine: RcaEngine,
    symptoms: Sequence[EventInstance],
    jobs: int,
    traced: bool = False,
) -> List[Diagnosis]:
    import multiprocessing as mp
    import pickle

    global _FORK_ENGINE, _FORK_SYMPTOMS, _FORK_TRACED
    chunks = contiguous_chunks(symptoms, jobs)
    spans, start = [], 0
    for chunk in chunks:
        spans.append((start, start + len(chunk)))
        start += len(chunk)
    context = mp.get_context("fork")
    # children inherit engine + symptoms via fork (no pickling of the
    # engine); an isolated copy keeps the parent's retrieval cache as
    # the serial path would have left it
    _FORK_ENGINE = engine.isolated()
    _FORK_SYMPTOMS = symptoms
    _FORK_TRACED = traced
    try:
        with context.Pool(processes=len(spans)) as pool:
            blobs = pool.map(_fork_worker, spans)
    finally:
        _FORK_ENGINE = None
        _FORK_SYMPTOMS = None
        _FORK_TRACED = False
    ordered: List[Diagnosis] = []
    for blob in blobs:
        ordered.extend(pickle.loads(blob))
    return ordered


class Worker(threading.Thread):
    """One pool thread: pulls jobs, executes them with private engines."""

    def __init__(
        self,
        name: str,
        queue: JobQueue,
        executor: Callable[[Job, "Worker"], object],
        metrics: ServiceMetrics,
        stop_event: threading.Event,
        clock: Callable[[], float] = time.monotonic,
        poll_seconds: float = 0.1,
    ) -> None:
        super().__init__(name=name, daemon=True)
        self.queue = queue
        self.executor = executor
        self.metrics = metrics
        self.stop_event = stop_event
        self.clock = clock
        self.poll_seconds = poll_seconds
        #: app name -> this worker's isolated engine
        self.engines = {}
        self.jobs_executed = 0

    def engine_for(self, app: str, prototype: RcaEngine) -> RcaEngine:
        """This worker's isolated engine for one app (built on first use)."""
        engine = self.engines.get(app)
        if engine is None:
            engine = prototype.isolated()
            self.engines[app] = engine
        return engine

    def run(self) -> None:  # pragma: no cover - exercised via the pool
        while True:
            job = self.queue.get(timeout=self.poll_seconds)
            if job is None:
                if self.stop_event.is_set() or self.queue.closed:
                    if len(self.queue) == 0:
                        return
                continue
            self._execute(job)

    def _execute(self, job: Job) -> None:
        started = self.clock()
        self.metrics.queue_depth.set(len(self.queue))
        self.metrics.queue_wait.observe(max(0.0, started - job.submitted_at))
        self.metrics.workers_busy.add(1)
        job.mark_running(started)
        try:
            result = self.executor(job, self)
        except BaseException as exc:  # noqa: BLE001 - job isolation
            job.mark_failed(exc, self.clock())
            self.metrics.jobs_failed.increment()
        else:
            job.mark_done(result, self.clock())
            self.metrics.jobs_completed.increment()
        finally:
            elapsed = self.clock() - started
            self.metrics.job_latency.observe(elapsed)
            self.metrics.add_busy_seconds(elapsed)
            self.metrics.workers_busy.add(-1)
            self.jobs_executed += 1
            self.queue.task_done()


class WorkerPool:
    """Fixed-size pool of :class:`Worker` threads over one queue."""

    def __init__(
        self,
        queue: JobQueue,
        executor: Callable[[Job, Worker], object],
        workers: int = 4,
        metrics: Optional[ServiceMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.queue = queue
        self.metrics = metrics or ServiceMetrics()
        self._stop = threading.Event()
        self.workers = [
            Worker(
                name=f"rca-worker-{i}",
                queue=queue,
                executor=executor,
                metrics=self.metrics,
                stop_event=self._stop,
                clock=clock,
            )
            for i in range(workers)
        ]
        self._started = False

    def __len__(self) -> int:
        return len(self.workers)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for worker in self.workers:
            worker.start()

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Signal workers to exit once the queue drains, then join them."""
        self._stop.set()
        deadline = None if timeout is None else time.monotonic() + timeout
        for worker in self.workers:
            if not worker.is_alive():
                continue
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            worker.join(remaining)

    @property
    def alive(self) -> int:
        return sum(1 for worker in self.workers if worker.is_alive())
