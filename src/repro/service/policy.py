"""Fault-containment policy: deadlines, retries, breakers, brownout.

The service runtime (queue + workers + supervisor) needs a shared
vocabulary for *how to fail*:

* :class:`CancellationToken` — per-job cooperative cancellation with an
  optional absolute deadline.  The engine checks the token at stage
  boundaries (node evaluation, store reads, joins), so a timed-out
  diagnosis actually stops instead of occupying a worker until it
  happens to finish.
* error **classification** — :func:`is_transient` splits failures into
  *transient* (storage/backends/infrastructure: worth retrying) and
  *permanent* (rule/config bugs: retrying re-raises the same error
  forever).  Injectors and backends can subclass
  :class:`TransientError` to opt into retries explicitly.
* :class:`RetryPolicy` — bounded attempts with exponential backoff plus
  deterministic jitter (injectable RNG), mirroring the collector's
  :class:`~repro.collector.health.RetryConfig` semantics at job level.
* :class:`CircuitBreaker` — the :class:`~repro.collector.health.FeedReader`
  breaker pattern extracted into a reusable guard: N consecutive
  failures open the circuit, calls fail fast until ``reset_timeout``
  passes, then one half-open probe decides.  Used by
  :class:`~repro.collector.backends.BreakerBackend` to wrap
  :class:`~repro.collector.backends.StorageBackend` reads.
* :class:`BrownoutController` — watches queue-wait p99 and the
  deadline-miss rate; past thresholds the service enters ``DEGRADED``
  (shed low-priority jobs, trim exploration depth and tracing) and
  recovers with hysteresis so the state does not flap.

Everything takes an injectable clock/RNG/sleep, so the whole policy
layer is unit-testable without real time.
"""

from __future__ import annotations

import random
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional


# ---------------------------------------------------------------------------
# cooperative cancellation


class OperationCancelled(RuntimeError):
    """The job's cancellation token was triggered; stop cooperatively."""


class DeadlineExceeded(OperationCancelled):
    """The job ran past its deadline; stop cooperatively."""


class CancellationToken:
    """Cooperative cancel flag plus an optional absolute deadline.

    Workers and the engine call :meth:`check` at stage boundaries; it
    raises :class:`OperationCancelled` once :meth:`cancel` was called
    and :class:`DeadlineExceeded` once the clock passes ``deadline``.
    The token is thread-safe: the supervisor cancels from its sweep
    thread while the owning worker polls.
    """

    def __init__(
        self,
        deadline: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.deadline = deadline
        self.clock = clock
        self._cancelled = threading.Event()
        self.reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled") -> None:
        """Trip the token; the next :meth:`check` raises."""
        if not self._cancelled.is_set():
            self.reason = reason
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    @property
    def expired(self) -> bool:
        """True once the deadline (if any) has passed."""
        return self.deadline is not None and self.clock() >= self.deadline

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline; ``None`` without one."""
        if self.deadline is None:
            return None
        return self.deadline - self.clock()

    def check(self) -> None:
        """Raise if cancelled or past deadline; else return instantly.

        Expiry is classified first: the supervisor also trips the plain
        cancel flag for overdue jobs, and a job stopped past its
        deadline must surface as :class:`DeadlineExceeded` (``TIMED_OUT``)
        no matter which signal the executor polls first.
        """
        if self.expired:
            raise DeadlineExceeded(
                f"deadline exceeded by {-self.remaining():.3f}s"
            )
        if self._cancelled.is_set():
            raise OperationCancelled(self.reason or "cancelled")


# ---------------------------------------------------------------------------
# error classification


class TransientError(RuntimeError):
    """Marker base: the operation may succeed if simply retried."""


class PermanentError(RuntimeError):
    """Marker base: retrying will fail identically (rule/config bug)."""


#: Exception types treated as transient without opting in: storage and
#: transport failures that a healthy system recovers from on its own.
_TRANSIENT_TYPES = (
    TransientError,
    ConnectionError,
    TimeoutError,
    InterruptedError,
    sqlite3.OperationalError,
)

#: Types that are always permanent even though they subclass OSError
#: etc. — plus the classic "the rule/config is wrong" family.
_PERMANENT_TYPES = (
    PermanentError,
    ValueError,
    TypeError,
    KeyError,
    AttributeError,
    NotImplementedError,
)


def is_transient(error: BaseException) -> bool:
    """Whether a failure is worth retrying.

    Cancellation is never retried (the caller asked us to stop), the
    permanent family is never retried, the transient family always is,
    and *unknown* errors default to permanent — retrying a failure we
    cannot classify just triples the latency of the same crash.
    """
    if isinstance(error, OperationCancelled):
        return False
    if isinstance(error, _PERMANENT_TYPES):
        return False
    if isinstance(error, _TRANSIENT_TYPES):
        return True
    if isinstance(error, OSError):  # I/O flake; ConnectionError subsumed
        return True
    # collector-layer transients, imported lazily to avoid a cycle
    from ..collector.health import CircuitOpenError, FeedReadError

    return isinstance(error, (CircuitOpenError, FeedReadError))


# ---------------------------------------------------------------------------
# retry policy


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff plus deterministic jitter."""

    #: attempts per job (first try + retries); 1 disables retries
    max_attempts: int = 3
    #: first backoff delay, seconds
    backoff_base: float = 0.05
    #: multiplier applied per further retry
    backoff_factor: float = 2.0
    #: backoff ceiling, seconds
    backoff_max: float = 1.0
    #: extra random fraction of the delay added as jitter
    jitter: float = 0.1
    #: deterministic jitter source (seeded for reproducible tests)
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) may be retried."""
        return attempt < self.max_attempts and is_transient(error)

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt + 1`` (1-based input)."""
        base = self.backoff_base * (self.backoff_factor ** max(0, attempt - 1))
        base = min(base, self.backoff_max)
        return base * (1.0 + self.jitter * self.rng.random())


# ---------------------------------------------------------------------------
# circuit breaker (the FeedReader pattern, extracted)


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probes.

    The state machine is the one :class:`~repro.collector.health.FeedReader`
    runs for feed transports: ``closed`` (normal) -> ``open`` after
    ``failure_threshold`` consecutive failures (calls refused) ->
    ``half-open`` after ``reset_timeout`` (one probe allowed; success
    closes, failure re-opens and restarts the timer).

    The breaker only *decides*; callers ask :meth:`allow` before the
    guarded operation and report :meth:`record_success` /
    :meth:`record_failure` after.  Thread-safe.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock
        self.consecutive_failures = 0
        self.times_opened = 0
        self._opened_at: Optional[float] = None
        self._lock = threading.Lock()

    @property
    def open(self) -> bool:
        """True while the breaker refuses calls (probe time not reached)."""
        with self._lock:
            return (
                self._opened_at is not None
                and self.clock() - self._opened_at < self.reset_timeout
            )

    def allow(self) -> bool:
        """Whether the next call may proceed (closed, or half-open probe)."""
        with self._lock:
            if self._opened_at is None:
                return True
            return self.clock() - self._opened_at >= self.reset_timeout

    def record_success(self) -> None:
        """Account one success: reset failures, close the circuit."""
        with self._lock:
            self.consecutive_failures = 0
            self._opened_at = None

    def record_failure(self) -> bool:
        """Account one failure; returns True when the circuit is open."""
        with self._lock:
            self.consecutive_failures += 1
            if self._opened_at is not None:
                # a failed half-open probe stays open, restarts the timer
                self._opened_at = self.clock()
                return True
            if self.consecutive_failures >= self.failure_threshold:
                self.times_opened += 1
                self._opened_at = self.clock()
                return True
            return False

    def state(self) -> str:
        """``"closed"`` / ``"open"`` / ``"half-open"`` for dashboards."""
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self.clock() - self._opened_at >= self.reset_timeout:
                return "half-open"
            return "open"


# ---------------------------------------------------------------------------
# brownout degradation


class ServiceHealth(Enum):
    """Overall service health reported by the supervisor."""

    OK = "ok"
    DEGRADED = "degraded"


@dataclass
class BrownoutConfig:
    """Thresholds for entering/leaving brownout degradation."""

    #: queue-wait p99 at/above this (seconds) trips the brownout
    queue_wait_p99: float = 5.0
    #: deadline-miss fraction of finished jobs at/above this trips it
    deadline_miss_rate: float = 0.25
    #: miss-rate verdicts need at least this many finished jobs between
    #: consecutive evaluations (a 1-of-2 blip must not brown out)
    min_finished: int = 8
    #: recover once signals drop below ``recover_factor`` x threshold
    recover_factor: float = 0.5
    #: while degraded, shed submissions at/above this priority
    shed_priority: int = 20  # PRIORITY_PERIODIC
    #: while degraded, cap the engine's exploration depth
    degraded_max_depth: int = 2
    #: while degraded, drop span tracing (jobs run untraced)
    trim_tracing: bool = True


class BrownoutController:
    """Hysteretic OK <-> DEGRADED state machine over service signals.

    Each :meth:`evaluate` call reads the current queue-wait p99 and the
    deadline-miss rate *since the previous call* (computed from
    cumulative counters, so concurrent workers never double-count) and
    transitions with hysteresis: entry at the configured thresholds,
    recovery only once both signals fall below ``recover_factor`` times
    their thresholds.  Transitions are counted and timestamped so the
    chaos harness can assert the brownout actually happened.
    """

    def __init__(self, config: Optional[BrownoutConfig] = None) -> None:
        self.config = config or BrownoutConfig()
        self._state = ServiceHealth.OK
        self._last_timed_out = 0
        self._last_finished = 0
        self.transitions = 0
        self.last_transition_at: Optional[float] = None
        self._lock = threading.Lock()

    @property
    def state(self) -> ServiceHealth:
        return self._state

    @property
    def degraded(self) -> bool:
        return self._state is ServiceHealth.DEGRADED

    def evaluate(self, metrics, now: float) -> ServiceHealth:
        """One sweep: read signals from ``metrics`` and transition."""
        config = self.config
        wait_p99 = metrics.queue_wait.percentile(0.99)
        timed_out = metrics.jobs_timed_out.value
        finished = (
            metrics.jobs_completed.value
            + metrics.jobs_failed.value
            + timed_out
        )
        with self._lock:
            delta_finished = finished - self._last_finished
            delta_missed = timed_out - self._last_timed_out
            miss_rate = None
            if delta_finished >= config.min_finished:
                miss_rate = delta_missed / delta_finished
                self._last_finished = finished
                self._last_timed_out = timed_out
            if self._state is ServiceHealth.OK:
                if wait_p99 >= config.queue_wait_p99 or (
                    miss_rate is not None
                    and miss_rate >= config.deadline_miss_rate
                ):
                    self._transition(ServiceHealth.DEGRADED, now)
            else:
                wait_ok = wait_p99 < config.recover_factor * config.queue_wait_p99
                miss_ok = miss_rate is None or (
                    miss_rate < config.recover_factor * config.deadline_miss_rate
                )
                if wait_ok and miss_ok:
                    self._transition(ServiceHealth.OK, now)
            return self._state

    def _transition(self, state: ServiceHealth, now: float) -> None:
        self._state = state
        self.transitions += 1
        self.last_transition_at = now
