"""The network-facing RCA gateway: a stdlib HTTP/JSON front end.

Everything below is standard library only (``http.server`` +
``json``) — the gateway must run wherever the repro runs, with zero
new dependencies.  :class:`RcaGateway` wraps a :class:`ShardRouter`
behind a small versioned JSON API:

============================  =====================================================
``POST   /v1/jobs``           submit a diagnosis batch or window run → ``202`` + id
``GET    /v1/jobs/{id}``      job status; ``?wait=SECONDS`` long-polls completion
``DELETE /v1/jobs/{id}``      request cooperative cancellation
``GET    /v1/apps``           registered application names
``GET    /v1/health``         aggregated shard health (``200`` ok / ``503`` degraded)
``GET    /v1/metrics``        per-shard metric snapshots + summed aggregate
``GET    /v1/incidents``      deduplicated incidents (``grca-incident/1`` documents;
                              ``?cause=``/``?location=``/``?open=``/``?flapping=1``
                              filter, ``404`` when incident tracking is off)
``GET /v1/incidents/{id}``    one incident (``?timeline=1`` for the revision log)
``GET /v1/incidents/{id}/report``  the standardized RCA report as markdown
============================  =====================================================

Overload is expressed in HTTP, not by blocking the socket:

* admission rejection (queue full)      → ``429`` + ``Retry-After``
* brownout shed (degraded, low prio)    → ``503`` + ``Retry-After``
* wedged shard / queue closed           → ``503``
* unknown app or job id                 → ``404``
* malformed request                     → ``400``

Each connection is served by its own thread
(:class:`~http.server.ThreadingHTTPServer`), so a long-poll on one
job never blocks another client's submit.  Handler threads are
daemons: a hung client cannot prevent shutdown.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ...core.serialize import instance_from_dict
from ..queue import Job, JobShed, JobState, QueueClosed, QueueFull
from .router import ShardRouter, ShardUnavailable

#: Longest honoured ``?wait=`` long-poll (seconds).  A bound, not a
#: default: clients wanting longer simply poll again — unbounded waits
#: would pin one handler thread per slow job forever.
MAX_WAIT_SECONDS = 30.0

#: Suggested client back-off on 429/503 responses (seconds).
RETRY_AFTER_SECONDS = 1


class ApiError(Exception):
    """An error with a definite HTTP mapping."""

    def __init__(
        self, status: int, message: str, retry_after: Optional[int] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def job_document(job_id: str, job: Job) -> Dict[str, Any]:
    """The JSON representation of one job's current state.

    Terminal jobs embed their outcome: diagnoses (as portable
    ``Diagnosis.to_json`` documents) on ``DONE``, the error string
    otherwise.  Non-terminal jobs carry only identity and state, so
    polling is cheap.
    """
    doc: Dict[str, Any] = {
        "job_id": job_id,
        "kind": job.kind,
        "app": job.app,
        "state": job.state.value,
        "priority": job.priority,
        "attempts": job.attempts,
        "finished": job.finished,
    }
    if not job.finished:
        return doc
    if job.state is JobState.DONE:
        doc["diagnoses"] = [d.to_json() for d in (job.result or [])]
    elif job.error is not None:
        doc["error"] = {
            "type": type(job.error).__name__,
            "message": str(job.error),
        }
    return doc


class _GatewayHandler(BaseHTTPRequestHandler):
    """Routes one HTTP connection's requests onto the shard router.

    Stateless: everything lives on ``self.server`` (the gateway's
    ``ThreadingHTTPServer`` subclass carries the router).
    """

    protocol_version = "HTTP/1.1"  # keep-alive: load generators reuse sockets
    server_version = "grca-gateway/1"
    # without TCP_NODELAY, Nagle + delayed ACK adds ~40 ms to every
    # keep-alive request/response turn — fatal for a polling API
    disable_nagle_algorithm = True

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        # per-request stderr lines would swamp benchmarks; the gateway's
        # observability lives in /v1/metrics instead
        pass

    @property
    def router(self) -> ShardRouter:
        return self.server.router  # type: ignore[attr-defined]

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        retry_after: Optional[int] = None,
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, exc: ApiError) -> None:
        self._send_json(
            exc.status, {"error": str(exc)}, retry_after=exc.retry_after
        )

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ApiError(400, "request body required")
        try:
            body = json.loads(raw)
        except ValueError:
            raise ApiError(400, "request body is not valid JSON")
        if not isinstance(body, dict):
            raise ApiError(400, "request body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        segments = [part for part in split.path.split("/") if part]
        query = parse_qs(split.query)
        try:
            self._route(method, segments, query)
        except ApiError as exc:
            self._send_error(exc)
        except Exception as exc:  # a handler bug must not kill keep-alive
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def do_PUT(self) -> None:  # noqa: N802
        self._reject_verb()

    def do_PATCH(self) -> None:  # noqa: N802
        self._reject_verb()

    def _reject_verb(self) -> None:
        """JSON 405 for verbs no route accepts (the stdlib default is a
        bare 501).  The request body, if any, is left undrained, so the
        connection must close rather than carry further requests."""
        self.close_connection = True
        self._send_error(ApiError(405, f"unsupported: {self.command} {self.path}"))

    # -- routing -------------------------------------------------------

    def _route(self, method: str, segments: list, query: dict) -> None:
        if len(segments) < 2 or segments[0] != "v1":
            raise ApiError(404, f"no such resource: {self.path}")
        resource = segments[1]
        if resource == "jobs":
            if len(segments) == 2 and method == "POST":
                return self._submit()
            if len(segments) == 3:
                if method == "GET":
                    return self._job_status(segments[2], query)
                if method == "DELETE":
                    return self._cancel(segments[2])
            raise ApiError(
                405 if len(segments) in (2, 3) else 404,
                f"unsupported: {method} {self.path}",
            )
        if method != "GET":
            raise ApiError(405, f"unsupported: {method} {self.path}")
        if resource == "apps" and len(segments) == 2:
            return self._send_json(200, {"apps": self.router.apps()})
        if resource == "health" and len(segments) == 2:
            health = self.router.health()
            status = 200 if health["status"] == "ok" else 503
            return self._send_json(status, health)
        if resource == "metrics" and len(segments) == 2:
            return self._send_json(200, self.router.metrics())
        if resource == "incidents":
            if len(segments) == 2:
                return self._incident_list(query)
            if len(segments) == 3:
                return self._incident_show(segments[2], query)
            if len(segments) == 4 and segments[3] == "report":
                return self._incident_report(segments[2])
        raise ApiError(404, f"no such resource: {self.path}")

    # -- endpoints -----------------------------------------------------

    def _submit(self) -> None:
        body = self._read_body()
        kind = body.get("kind", "diagnose")
        app = body.get("app")
        if not isinstance(app, str) or not app:
            raise ApiError(400, "field 'app' (string) is required")
        options: Dict[str, Any] = {}
        if "priority" in body:
            options["priority"] = _expect_int(body, "priority")
        if "deadline" in body:
            options["deadline"] = _expect_number(body, "deadline")
        routing_key = body.get("key")
        if routing_key is not None and not isinstance(routing_key, str):
            raise ApiError(400, "field 'key' must be a string when present")
        try:
            if kind == "diagnose":
                symptoms = body.get("symptoms")
                if not isinstance(symptoms, list) or not symptoms:
                    raise ApiError(
                        400, "field 'symptoms' (non-empty list) is required"
                    )
                try:
                    instances = [instance_from_dict(s) for s in symptoms]
                except (KeyError, TypeError, ValueError) as exc:
                    raise ApiError(400, f"malformed symptom: {exc}")
                job_id, job = self.router.submit_diagnosis(
                    app, instances, key=routing_key, **options
                )
            elif kind == "run":
                start = _expect_number(body, "start")
                end = _expect_number(body, "end")
                job_id, job = self.router.submit_run(
                    app, start, end, key=routing_key, **options
                )
            else:
                raise ApiError(400, f"unknown job kind {kind!r}")
        except KeyError as exc:
            # unknown application: the router's shards raise KeyError
            raise ApiError(404, str(exc.args[0] if exc.args else exc))
        except JobShed as exc:
            raise ApiError(503, str(exc), retry_after=RETRY_AFTER_SECONDS)
        except QueueFull as exc:
            raise ApiError(429, str(exc), retry_after=RETRY_AFTER_SECONDS)
        except QueueClosed as exc:
            raise ApiError(503, str(exc))
        except ShardUnavailable as exc:
            raise ApiError(503, str(exc), retry_after=RETRY_AFTER_SECONDS)
        self._send_json(
            202,
            {
                "job_id": job_id,
                "state": job.state.value,
                "shard": self.router.resolve(job_id)[0],
            },
        )

    def _job_status(self, job_id: str, query: dict) -> None:
        job = self._find(job_id)
        wait = query.get("wait")
        if wait:
            try:
                seconds = float(wait[0])
            except ValueError:
                raise ApiError(400, f"invalid wait value {wait[0]!r}")
            # bounded long-poll; returns the current state either way —
            # a 200 after `wait` does NOT imply terminal
            job.wait(timeout=max(0.0, min(seconds, MAX_WAIT_SECONDS)))
        self._send_json(200, job_document(job_id, job))

    def _cancel(self, job_id: str) -> None:
        self._find(job_id)  # 404 before touching cancel semantics
        try:
            requested = self.router.cancel(job_id)
        except KeyError as exc:
            raise ApiError(404, str(exc.args[0] if exc.args else exc))
        job = self._find(job_id)
        doc = job_document(job_id, job)
        doc["cancel_requested"] = requested
        # 202: cancellation is a request (cooperative); 409 would be
        # wrong for already-terminal jobs — the document says why
        self._send_json(202, doc)

    def _find(self, job_id: str) -> Job:
        try:
            return self.router.job(job_id)
        except KeyError as exc:
            raise ApiError(404, str(exc.args[0] if exc.args else exc))

    # -- incident endpoints --------------------------------------------

    def _incident_store(self):
        store = getattr(self.router, "incidents", None)
        if store is None:
            raise ApiError(
                404,
                "incident tracking is not enabled on this deployment "
                "(serve with incidents=True)",
            )
        return store

    def _incident_list(self, query: dict) -> None:
        store = self._incident_store()
        cause = query.get("cause", [None])[0]
        location = query.get("location", [None])[0]
        incidents = store.incidents(cause=cause, location=location)
        if query.get("open"):
            want = query["open"][0] not in ("0", "false", "no")
            incidents = [i for i in incidents if i.open == want]
        if query.get("flapping"):
            incidents = [i for i in incidents if i.flap_count > 1]
        self._send_json(
            200,
            {
                "count": len(incidents),
                "incidents": [i.to_json() for i in incidents],
            },
        )

    def _incident_show(self, incident_id: str, query: dict) -> None:
        store = self._incident_store()
        try:
            if query.get("timeline"):
                revisions = store.timeline(incident_id)
                return self._send_json(
                    200,
                    {
                        "incident_id": incident_id,
                        "revisions": [r.to_json() for r in revisions],
                    },
                )
            incident = store.get(incident_id)
        except KeyError:
            raise ApiError(404, f"no such incident: {incident_id}")
        self._send_json(200, incident.to_json())

    def _incident_report(self, incident_id: str) -> None:
        from ...incident.report import render_incident_report

        store = self._incident_store()
        try:
            incident = store.get(incident_id)
        except KeyError:
            raise ApiError(404, f"no such incident: {incident_id}")
        body = render_incident_report(
            incident, related=store.incidents(cause=incident.cause)
        ).encode()
        self.send_response(200)
        self.send_header("Content-Type", "text/markdown; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def _expect_int(body: Dict[str, Any], field: str) -> int:
    value = body[field]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ApiError(400, f"field {field!r} must be an integer")
    return value


def _expect_number(body: Dict[str, Any], field: str) -> float:
    if field not in body:
        raise ApiError(400, f"field {field!r} (number) is required")
    value = body[field]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ApiError(400, f"field {field!r} must be a number")
    return float(value)


class _GatewayServer(ThreadingHTTPServer):
    daemon_threads = True  # a hung client never blocks process exit
    allow_reuse_address = True
    # http.server's default accept backlog is 5; a submit burst beyond
    # that would surface as kernel TCP resets instead of clean 429s.
    # Overload belongs in the HTTP status, not the SYN queue.
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], router: ShardRouter) -> None:
        super().__init__(address, _GatewayHandler)
        self.router = router


class RcaGateway:
    """The HTTP server lifecycle around one :class:`ShardRouter`.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` after :meth:`start`) — what tests and the CI smoke
    job use to avoid collisions.
    """

    def __init__(
        self, router: ShardRouter, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.router = router
        self._server = _GatewayServer((host, port), router)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "RcaGateway":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="rca-gateway",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self, shutdown_shards: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting connections; optionally shut the shards down."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if shutdown_shards:
            self.router.shutdown(timeout=timeout)

    def __enter__(self) -> "RcaGateway":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
