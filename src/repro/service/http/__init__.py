"""Network-facing RCA gateway: sharded serving behind a JSON HTTP API.

* :mod:`~repro.service.http.router` — :class:`ShardRouter`: partitions
  submissions across N independent :class:`~repro.service.api.RcaService`
  shards by a stable hash of the routing key, with shard-qualified job
  ids (``"<shard>.<seq>"``), per-shard failure isolation and aggregated
  health/metrics fan-out;
* :mod:`~repro.service.http.gateway` — :class:`RcaGateway`: the
  stdlib-only ``ThreadingHTTPServer`` front end exposing the versioned
  ``/v1`` API with real overload semantics (429 on admission rejection,
  503 on brownout shed or a wedged shard).

See ``docs/service.md`` ("HTTP gateway") for the endpoint table, status
codes and curl examples.
"""

from .gateway import (
    MAX_WAIT_SECONDS,
    RETRY_AFTER_SECONDS,
    ApiError,
    RcaGateway,
    job_document,
)
from .router import ShardRouter, ShardUnavailable, build_shards

__all__ = [
    "ApiError",
    "MAX_WAIT_SECONDS",
    "RETRY_AFTER_SECONDS",
    "RcaGateway",
    "ShardRouter",
    "ShardUnavailable",
    "build_shards",
    "job_document",
]
