"""Shard router: partition RCA submissions across independent services.

One :class:`~repro.service.api.RcaService` scales to one worker pool;
the deployed platform serves hundreds of applications and has to scale
with cores and hosts.  :class:`ShardRouter` is the partitioning layer:
it owns N *shards* — each a complete, independent ``RcaService`` (own
queue, worker pool, supervisor, result cache) over the shared Data
Collector store — and routes every submission to exactly one of them by
a deterministic hash of its **routing key** (the symptom's
``instance_key``/location for diagnosis batches, the app+window for
whole-window runs).  Affinity is the point: the same symptom keyspace
always lands on the same shard, so that shard's result and retrieval
caches stay hot for it.

Failure isolation is per shard.  A wedged shard — shut down, never
started, or with zero live workers — fails *its* keyspace fast with
:class:`ShardUnavailable` (the HTTP gateway maps this to 503) while
every other shard keeps serving.  Health and metrics fan out: the
router aggregates per-shard snapshots into one platform view.

Job ids are **shard-qualified** strings ``"<shard>.<seq>"`` (e.g.
``"2.17"``): the shard index rides inside the id, so polls, waits and
cancels route straight to the owning shard with no shared lookup table
— the id format *is* the routing table.

The portable deployment here is N in-process services (thread pools
sharing one store, exactly like workers already share it); the router
only touches the :class:`RcaService` surface, so a future
process-backed shard (the fork seam) slots in behind the same API.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...core.events import EventInstance, instance_key
from .. import api as service_api
from ..queue import Job, JobState

RcaService = service_api.RcaService


class ShardUnavailable(RuntimeError):
    """The shard owning this keyspace cannot serve right now."""

    def __init__(self, shard: int, message: str) -> None:
        super().__init__(message)
        self.shard = shard


def build_shards(
    store,
    health=None,
    shards: int = 2,
    workers: int = 2,
    **service_options,
) -> List[RcaService]:
    """N independent :class:`RcaService` shards over one shared store."""
    if shards < 1:
        raise ValueError("shards must be at least 1")
    return [
        RcaService(store=store, health=health, workers=workers, **service_options)
        for _ in range(shards)
    ]


class ShardRouter:
    """Deterministic key-hash routing over N independent RCA services."""

    def __init__(self, shards: Sequence[RcaService]) -> None:
        if not shards:
            raise ValueError("a router needs at least one shard")
        self.shards: List[RcaService] = list(shards)
        #: shared incident tracking, when enabled
        #: (:meth:`GrcaPlatform.serve_sharded` wires one aggregator +
        #: store across every shard's ``incident_sink``); the gateway's
        #: ``/v1/incidents`` routes read these
        self.incidents = None
        self.incident_aggregator = None

    def __len__(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # lifecycle (fan-out)

    def register_app(self, name: str, app) -> None:
        """Register an application on every shard.

        In-process shards share the app object the same way workers
        inside one service do: its engine is only a prototype — every
        worker isolates a private copy before executing.
        """
        for shard in self.shards:
            shard.register_app(name, app)

    def apps(self) -> List[str]:
        """Registered application names (identical on every shard)."""
        return self.shards[0].apps()

    def start(self) -> None:
        for shard in self.shards:
            shard.start()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every shard's queue is quiet."""
        return all(shard.drain(timeout=timeout) for shard in self.shards)

    def shutdown(self, graceful: bool = True, timeout: float = 30.0) -> None:
        for shard in self.shards:
            shard.shutdown(graceful=graceful, timeout=timeout)

    # ------------------------------------------------------------------
    # routing

    def shard_for(self, key: object) -> int:
        """The shard index owning one routing key.

        ``crc32`` rather than builtin ``hash()``: the mapping must be
        stable across processes and interpreter runs (``PYTHONHASHSEED``
        randomizes ``hash``), or a client re-submitting after a gateway
        restart would scatter a hot keyspace across shards.
        """
        return zlib.crc32(str(key).encode()) % len(self.shards)

    @staticmethod
    def diagnosis_key(app: str, symptoms: Sequence[EventInstance]) -> str:
        """Default routing key of a symptom batch: the first symptom's
        location identity (all same-located symptoms co-shard)."""
        name, parts, _start = instance_key(symptoms[0])
        return f"{app}|{name}|{'/'.join(parts)}"

    @staticmethod
    def run_key(app: str, start: float, end: float) -> str:
        """Default routing key of a whole-window run."""
        return f"{app}|run|{start:.3f}|{end:.3f}"

    def qualify(self, shard: int, job: Job) -> str:
        """The shard-qualified public id of one job: ``"<shard>.<seq>"``."""
        return f"{shard}.{job.job_id}"

    def resolve(self, job_id: str) -> Tuple[int, int]:
        """Split a qualified id into (shard index, local job id).

        Raises :class:`KeyError` for anything that cannot name a job of
        this router — malformed ids and out-of-range shards look the
        same to a client: the job does not exist here.
        """
        shard_part, _, local_part = str(job_id).partition(".")
        try:
            shard, local = int(shard_part), int(local_part)
        except ValueError:
            raise KeyError(f"malformed job id {job_id!r}; expected '<shard>.<seq>'")
        if not 0 <= shard < len(self.shards):
            raise KeyError(
                f"job id {job_id!r} names shard {shard}; "
                f"this router has {len(self.shards)}"
            )
        return shard, local

    # ------------------------------------------------------------------
    # submission

    def submit_diagnosis(
        self,
        app: str,
        symptoms: Sequence[EventInstance],
        key: Optional[str] = None,
        **options,
    ) -> Tuple[str, Job]:
        """Route a symptom batch to its shard; returns (qualified id, job)."""
        if not symptoms:
            raise ValueError("a diagnosis submission needs at least one symptom")
        routing = key if key is not None else self.diagnosis_key(app, symptoms)
        return self._submit(
            self.shard_for(routing),
            lambda shard: shard.submit_diagnosis(app, symptoms, **options),
        )

    def submit_run(
        self,
        app: str,
        start: float,
        end: float,
        key: Optional[str] = None,
        **options,
    ) -> Tuple[str, Job]:
        """Route a whole-window run to its shard; returns (qualified id, job)."""
        routing = key if key is not None else self.run_key(app, start, end)
        return self._submit(
            self.shard_for(routing),
            lambda shard: shard.submit_run(app, start, end, **options),
        )

    def _submit(
        self, index: int, submit: Callable[[RcaService], Job]
    ) -> Tuple[str, Job]:
        shard = self.shards[index]
        if not shard.available:
            raise ShardUnavailable(
                index,
                f"shard {index} is unavailable "
                f"(alive workers: {shard.pool.alive}/{shard.pool.capacity}); "
                f"its keyspace cannot be served right now",
            )
        job = submit(shard)
        return self.qualify(index, job), job

    # ------------------------------------------------------------------
    # job tracking (routed by the id itself)

    def job(self, job_id: str) -> Job:
        """The job handle behind one qualified id (KeyError when unknown)."""
        shard, local = self.resolve(job_id)
        return self.shards[shard].job(local)

    def poll(self, job_id: str) -> JobState:
        """The state behind one qualified id (KeyError when unknown)."""
        return self.job(job_id).state

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; False when already terminal, KeyError
        when unknown."""
        shard, local = self.resolve(job_id)
        return self.shards[shard].cancel_job(local)

    # ------------------------------------------------------------------
    # aggregated observability

    def shard_health(self) -> List[Dict[str, object]]:
        """One health row per shard (what ``/v1/health`` reports)."""
        rows: List[Dict[str, object]] = []
        for index, shard in enumerate(self.shards):
            rows.append(
                {
                    "shard": index,
                    "available": shard.available,
                    "state": shard.health_state().value,
                    "workers_alive": shard.pool.alive,
                    "workers": shard.pool.capacity,
                    "quarantined": len(shard.quarantined()),
                    "queue_depth": len(shard.queue),
                }
            )
        return rows

    def health(self) -> Dict[str, object]:
        """The aggregated health document.

        ``status`` is ``"ok"`` only when every shard is available and
        none is in brownout; a single wedged or degraded shard turns
        the platform ``"degraded"`` — its keyspace is impaired even
        though the rest keeps serving.
        """
        rows = self.shard_health()
        ok = all(row["available"] and row["state"] == "ok" for row in rows)
        return {
            "status": "ok" if ok else "degraded",
            "shards": rows,
        }

    def metrics(self) -> Dict[str, object]:
        """Per-shard snapshots plus summed platform-wide counters."""
        snapshots = [shard.metrics_snapshot() for shard in self.shards]
        return {
            "aggregate": _aggregate_counters(snapshots),
            "shards": snapshots,
        }


#: Snapshot sections whose leaves are summable counters/gauges.
_SUMMED_SECTIONS = ("jobs", "recovery", "cache", "spatial_cache")
#: Top-level summable scalar keys.
_SUMMED_SCALARS = ("symptoms_diagnosed", "queue_depth", "workers_busy")


def _aggregate_counters(snapshots: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Sum the counter sections of several metric snapshots.

    Only additive quantities are aggregated — summing percentile
    summaries would be statistically wrong, so latency distributions
    stay per shard.  Hit rates are recomputed from the summed counts.
    """
    aggregate: Dict[str, object] = {"shards": len(snapshots)}
    for section in _SUMMED_SECTIONS:
        merged: Dict[str, float] = {}
        for snap in snapshots:
            for key, value in snap.get(section, {}).items():
                if key == "hit_rate":
                    continue
                merged[key] = merged.get(key, 0) + value
        if section in ("cache", "spatial_cache"):
            lookups = merged.get("hits", 0) + merged.get("misses", 0)
            merged["hit_rate"] = merged.get("hits", 0) / lookups if lookups else 0.0
        aggregate[section] = merged
    for key in _SUMMED_SCALARS:
        aggregate[key] = sum(snap.get(key, 0) for snap in snapshots)
    return aggregate
