"""RCA service layer: scheduling, parallel workers, caching, metrics.

Turns the in-process G-RCA library into a long-running concurrent
service (the platform the paper operates, Section I/VI):

* :mod:`~repro.service.queue` — priority job queue with admission
  control and bounded backpressure;
* :mod:`~repro.service.workers` — thread worker pool (isolated engine
  per worker) plus :func:`parallel_diagnose` for batch runs;
* :mod:`~repro.service.cache` — watermark-keyed result cache with
  footprint invalidation on late-arriving records;
* :mod:`~repro.service.policy` — fault-containment policy: per-job
  deadlines and cancellation tokens, transient/permanent error
  classification, bounded retries, circuit breakers, and the brownout
  degradation state machine;
* :mod:`~repro.service.supervisor` — the self-healing loop: dead-worker
  reconciliation, in-flight failover, poison-job quarantine, hung-worker
  detachment and brownout evaluation;
* :mod:`~repro.service.faults` — deterministic chaos harness (crash /
  hang / stall / error / latency injection) used to prove all of the
  above actually recovers;
* :mod:`~repro.service.api` — the :class:`RcaService` facade
  (submit / poll / cancel / drain / graceful shutdown / periodic runs);
* :mod:`~repro.service.metrics` — counters, gauges and latency
  histograms surfaced through the CLI.

See ``docs/service.md`` and ``docs/robustness.md`` for architecture,
tuning and the chaos-recipe catalogue.
"""

from .api import AppHandle, PeriodicSchedule, RcaService
from .cache import CacheEntry, CacheKey, ResultCache, cache_key
from .faults import FlakyBackend, ServiceFaultInjector
from .metrics import Counter, Gauge, Histogram, ServiceMetrics
from .policy import (
    BrownoutConfig,
    BrownoutController,
    CancellationToken,
    CircuitBreaker,
    DeadlineExceeded,
    OperationCancelled,
    PermanentError,
    RetryPolicy,
    ServiceHealth,
    TransientError,
    is_transient,
)
from .queue import (
    PRIORITY_IMPAIRED_PENALTY,
    PRIORITY_INTERACTIVE,
    PRIORITY_PERIODIC,
    TERMINAL_STATES,
    Job,
    JobQueue,
    JobShed,
    JobState,
    QueueClosed,
    QueueFull,
)
from .supervisor import (
    PoisonJob,
    QuarantineBuffer,
    QuarantineEntry,
    SupervisorConfig,
    WorkerSupervisor,
)
from .workers import (
    Worker,
    WorkerCrash,
    WorkerPool,
    available_cpus,
    contiguous_chunks,
    default_backend,
    parallel_diagnose,
)

__all__ = [
    "AppHandle",
    "BrownoutConfig",
    "BrownoutController",
    "CacheEntry",
    "CacheKey",
    "CancellationToken",
    "CircuitBreaker",
    "Counter",
    "DeadlineExceeded",
    "FlakyBackend",
    "Gauge",
    "Histogram",
    "Job",
    "JobQueue",
    "JobShed",
    "JobState",
    "OperationCancelled",
    "PeriodicSchedule",
    "PermanentError",
    "PoisonJob",
    "PRIORITY_IMPAIRED_PENALTY",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_PERIODIC",
    "QuarantineBuffer",
    "QuarantineEntry",
    "QueueClosed",
    "QueueFull",
    "RcaService",
    "ResultCache",
    "RetryPolicy",
    "ServiceFaultInjector",
    "ServiceHealth",
    "ServiceMetrics",
    "SupervisorConfig",
    "TERMINAL_STATES",
    "TransientError",
    "Worker",
    "WorkerCrash",
    "WorkerPool",
    "WorkerSupervisor",
    "available_cpus",
    "cache_key",
    "contiguous_chunks",
    "default_backend",
    "is_transient",
    "parallel_diagnose",
]
