"""RCA service layer: scheduling, parallel workers, caching, metrics.

Turns the in-process G-RCA library into a long-running concurrent
service (the platform the paper operates, Section I/VI):

* :mod:`~repro.service.queue` — priority job queue with admission
  control and bounded backpressure;
* :mod:`~repro.service.workers` — thread worker pool (isolated engine
  per worker) plus :func:`parallel_diagnose` for batch runs;
* :mod:`~repro.service.cache` — watermark-keyed result cache with
  footprint invalidation on late-arriving records;
* :mod:`~repro.service.api` — the :class:`RcaService` facade
  (submit / poll / drain / graceful shutdown / periodic runs);
* :mod:`~repro.service.metrics` — counters, gauges and latency
  histograms surfaced through the CLI.

See ``docs/service.md`` for architecture and tuning.
"""

from .api import AppHandle, PeriodicSchedule, RcaService
from .cache import CacheEntry, CacheKey, ResultCache, cache_key
from .metrics import Counter, Gauge, Histogram, ServiceMetrics
from .queue import (
    PRIORITY_IMPAIRED_PENALTY,
    PRIORITY_INTERACTIVE,
    PRIORITY_PERIODIC,
    Job,
    JobQueue,
    JobState,
    QueueClosed,
    QueueFull,
)
from .workers import (
    Worker,
    WorkerPool,
    available_cpus,
    contiguous_chunks,
    default_backend,
    parallel_diagnose,
)

__all__ = [
    "AppHandle",
    "CacheEntry",
    "CacheKey",
    "Counter",
    "Gauge",
    "Histogram",
    "Job",
    "JobQueue",
    "JobState",
    "PeriodicSchedule",
    "PRIORITY_IMPAIRED_PENALTY",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_PERIODIC",
    "QueueClosed",
    "QueueFull",
    "RcaService",
    "ResultCache",
    "ServiceMetrics",
    "Worker",
    "WorkerPool",
    "available_cpus",
    "cache_key",
    "contiguous_chunks",
    "default_backend",
    "parallel_diagnose",
]
