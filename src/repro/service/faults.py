"""Chaos harness: deterministic fault injection for the service runtime.

Supervision code that is never exercised is broken code waiting for an
outage, so the fault paths get a first-class injection surface instead
of ad-hoc monkeypatching.  :class:`ServiceFaultInjector` wraps the
service's executor callable and fires *rules* against matching jobs:

* ``crash_when`` — raise :class:`~repro.service.workers.WorkerCrash`,
  killing the worker thread mid-job exactly as a segfaulting native
  call or an unhandled interpreter error would (no accounting runs).
* ``hang_when`` — block *non-cooperatively* (ignores the cancel token)
  until :meth:`release` or ``hang_timeout``; this is the executor the
  supervisor must detach.
* ``stall_when`` — run slow but *cooperatively*, polling the job's
  cancel token; this is the executor a deadline stops at a checkpoint.
* ``fail_when`` — raise an arbitrary error (transient subclasses drive
  the retry path, permanent ones the fail-fast path).
* ``delay_when`` — add fixed latency, then run the real executor.

Rules have bounded budgets (``times``), match in registration order,
and consume their budget atomically, so a chaos scenario is exactly
reproducible: "crash the first two executions of job 3, then let the
third through" is one rule plus the real executor.

:class:`FlakyBackend` plays the same role one layer down: it delegates
to a real :class:`~repro.collector.backends.StorageBackend` but fails
or delays reads on request, which is how the retry policy and
:class:`~repro.collector.backends.BreakerBackend` get tested without a
real broken disk.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..collector.backends import StorageBackend
from .queue import Job
from .workers import Worker, WorkerCrash

#: Predicate selecting the jobs a rule applies to.
JobMatch = Callable[[Job], bool]


def match_all(job: Job) -> bool:
    """Rule predicate matching every job."""
    return True


def match_kind(kind: str) -> JobMatch:
    """Rule predicate matching jobs of one kind (``"diagnose"``/``"run"``)."""
    return lambda job: job.kind == kind


class FaultRule:
    """One injection rule: predicate + action + bounded budget."""

    def __init__(
        self,
        name: str,
        match: JobMatch,
        action: Callable[[Job, Worker], Optional[Any]],
        times: Optional[int] = 1,
    ) -> None:
        self.name = name
        self.match = match
        self.action = action
        #: remaining firings; ``None`` = unlimited
        self.remaining = times
        self.fired = 0
        self._lock = threading.Lock()

    def claim(self, job: Job) -> bool:
        """Atomically consume one budget unit if the rule applies."""
        if not self.match(job):
            return False
        with self._lock:
            if self.remaining is not None:
                if self.remaining <= 0:
                    return False
                self.remaining -= 1
            self.fired += 1
            return True


class ServiceFaultInjector:
    """Wraps an executor; fires matching fault rules before delegating.

    At most one rule fires per execution (first match in registration
    order with budget left).  Crash/failure rules raise and the real
    executor never runs; hang/stall/delay rules block or sleep, then
    fall through to the real executor — deliberately, because the
    late-finishing zombie losing the terminal-state race is exactly the
    path worth testing.

    Every firing is recorded in :attr:`log` as ``(rule_name, job_id)``,
    so chaos tests assert what actually happened, not what was hoped.
    """

    def __init__(
        self,
        executor: Callable[[Job, Worker], Any],
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        hang_timeout: float = 60.0,
    ) -> None:
        self.executor = executor
        self.sleep = sleep
        self.clock = clock
        #: safety valve: a hang never outlives the test run
        self.hang_timeout = hang_timeout
        self.rules: List[FaultRule] = []
        self.log: List[Tuple[str, int]] = []
        self._log_lock = threading.Lock()
        self._released = threading.Event()

    # ------------------------------------------------------------------
    # rule registration

    def crash_when(
        self, match: JobMatch = match_all, times: Optional[int] = 1
    ) -> FaultRule:
        """Kill the worker thread mid-job (no accounting runs)."""

        def action(job: Job, worker: Worker) -> None:
            raise WorkerCrash(
                f"injected crash on job {job.job_id} (worker {worker.name})"
            )

        return self._add("crash", match, action, times)

    def hang_when(
        self, match: JobMatch = match_all, times: Optional[int] = 1
    ) -> FaultRule:
        """Block non-cooperatively until :meth:`release` (or the valve)."""

        def action(job: Job, worker: Worker) -> None:
            self._released.wait(self.hang_timeout)

        return self._add("hang", match, action, times)

    def stall_when(
        self,
        match: JobMatch = match_all,
        times: Optional[int] = 1,
        poll: float = 0.005,
    ) -> FaultRule:
        """Run slow but cooperatively: poll the cancel token until it trips."""

        def action(job: Job, worker: Worker) -> None:
            started = self.clock()
            while self.clock() - started < self.hang_timeout:
                if job.cancel is not None:
                    job.cancel.check()  # raises once cancelled / past deadline
                if self._released.is_set():
                    return
                self.sleep(poll)

        return self._add("stall", match, action, times)

    def fail_when(
        self,
        error: Callable[[], BaseException],
        match: JobMatch = match_all,
        times: Optional[int] = 1,
    ) -> FaultRule:
        """Raise ``error()`` instead of executing (retry/fail-fast paths)."""

        def action(job: Job, worker: Worker) -> None:
            raise error()

        return self._add("fail", match, action, times)

    def delay_when(
        self,
        seconds: float,
        match: JobMatch = match_all,
        times: Optional[int] = 1,
    ) -> FaultRule:
        """Add fixed latency, then run the real executor."""

        def action(job: Job, worker: Worker) -> None:
            self.sleep(seconds)

        return self._add("delay", match, action, times)

    def _add(
        self,
        name: str,
        match: JobMatch,
        action: Callable[[Job, Worker], Optional[Any]],
        times: Optional[int],
    ) -> FaultRule:
        rule = FaultRule(name, match, action, times)
        self.rules.append(rule)
        return rule

    # ------------------------------------------------------------------
    # control / inspection

    def release(self) -> None:
        """Unblock every hung/stalled execution (end of the chaos window)."""
        self._released.set()

    def fired(self, name: Optional[str] = None) -> int:
        """Total rule firings so far (optionally for one rule name)."""
        with self._log_lock:
            if name is None:
                return len(self.log)
            return sum(1 for rule_name, _ in self.log if rule_name == name)

    # ------------------------------------------------------------------
    # the wrapped executor

    def __call__(self, job: Job, worker: Worker) -> Any:
        for rule in self.rules:
            if rule.claim(job):
                with self._log_lock:
                    self.log.append((rule.name, job.job_id))
                rule.action(job, worker)
                break  # at most one rule per execution
        return self.executor(job, worker)


class FlakyBackend(StorageBackend):
    """Delegating storage backend that fails or delays reads on demand.

    ``fail_reads(n, error)`` makes the next ``n`` read operations
    (query/scan/distinct/time_span) raise; ``read_latency`` adds a
    fixed sleep before every read.  Writes always pass through, so the
    stored data stays intact while the read path misbehaves — the shape
    of a degraded disk or a wedged database, which is what the breaker
    and retry layers exist for.
    """

    def __init__(
        self,
        inner: StorageBackend,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.sleep = sleep
        self.read_latency = 0.0
        self._failures_left = 0
        self._error: Callable[[], BaseException] = ConnectionError
        self._lock = threading.Lock()
        #: reads that were failed by injection
        self.failed_reads = 0

    @property
    def name(self) -> str:
        return f"{self.inner.name}+flaky"

    @property
    def indexed_columns(self) -> Tuple[str, ...]:
        return self.inner.indexed_columns

    def fail_reads(
        self, n: int, error: Optional[Callable[[], BaseException]] = None
    ) -> None:
        """Make the next ``n`` reads raise (default: ``ConnectionError``)."""
        with self._lock:
            self._failures_left = n
            if error is not None:
                self._error = error

    def _gate(self) -> None:
        if self.read_latency:
            self.sleep(self.read_latency)
        with self._lock:
            if self._failures_left > 0:
                self._failures_left -= 1
                self.failed_reads += 1
                raise self._error()

    # -- writes pass through -------------------------------------------

    def insert(self, row: Dict[str, Any]) -> None:
        """Pass the write straight through (writes never misbehave)."""
        self.inner.insert(row)

    # -- reads are gated -----------------------------------------------

    def query(self, start, end, equals=None):
        """Gated window query (may raise or lag per injection state)."""
        self._gate()
        return self.inner.query(start, end, equals)

    def scan(self):
        """Gated full scan."""
        self._gate()
        return self.inner.scan()

    def distinct(self, column):
        """Gated distinct-values read."""
        self._gate()
        return self.inner.distinct(column)

    def time_span(self):
        """Gated (oldest, newest) timestamp read."""
        self._gate()
        return self.inner.time_span()

    def __len__(self) -> int:
        return len(self.inner)

    def stats(self) -> Dict[str, Any]:
        """Inner backend stats plus the injected-failure count."""
        stats = dict(self.inner.stats())
        stats["failed_reads"] = self.failed_reads
        return stats

    def close(self) -> None:
        """Close the inner backend."""
        self.inner.close()
