"""The RCA service facade: a long-running, concurrent G-RCA.

The paper describes G-RCA as a *platform* — hundreds of RCA
applications sharing one Data Collector, queried continuously by
operators (Section I, Section VI).  :class:`RcaService` is that serving
layer over the in-process library:

* applications register by name; each brings its engine (the prototype
  from which every worker forks an isolated copy);
* operators **submit** symptom batches (interactive priority) or whole
  time-window runs; the service answers with a :class:`Job` handle to
  poll or wait on;
* a periodic **scheduler** re-runs registered applications every
  ``interval`` of data time — the paper's standing applications
  (bgp_flaps, cdn, pim, backbone) ride this path;
* the :class:`ResultCache` short-circuits repeated diagnoses of the
  same symptom, and late-arriving records evict exactly the entries
  they could have changed;
* the PR-1 :class:`HealthRegistry` is consulted at submit time: an
  application whose evidence feeds are impaired gets *demoted* priority
  (healthy work first) but is never blocked — its diagnoses carry
  confidence caveats instead;
* **drain** waits for in-flight work; **shutdown** is graceful by
  default (finish queued jobs) or immediate (cancel pending).

Everything observable lands in :class:`ServiceMetrics`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..collector.health import IMPAIRED_STATES, HealthRegistry
from ..core.engine import Diagnosis, RcaEngine, evidence_sources
from ..core.events import EventInstance
from ..obs.report import stage_breakdown
from ..obs.trace import NULL_TRACER, Tracer
from .cache import ResultCache, cache_key
from .metrics import ServiceMetrics
from .policy import (
    BrownoutConfig,
    BrownoutController,
    CancellationToken,
    RetryPolicy,
    ServiceHealth,
)
from .queue import (
    PRIORITY_IMPAIRED_PENALTY,
    PRIORITY_INTERACTIVE,
    PRIORITY_PERIODIC,
    Job,
    JobQueue,
    JobShed,
    JobState,
    QueueFull,
)
from .supervisor import SupervisorConfig, WorkerSupervisor
from .workers import Worker, WorkerPool


@dataclass
class AppHandle:
    """One registered RCA application."""

    name: str
    app: object  # exposes .engine and find_symptoms(start, end)
    engine: RcaEngine
    fingerprint: str
    #: collector feeds that can carry this app's evidence
    sources: Set[str] = field(default_factory=set)


@dataclass
class PeriodicSchedule:
    """Recurring run of one app over the trailing data window."""

    app: str
    interval: float
    window: float
    next_due: float
    runs_submitted: int = 0


class RcaService:
    """Concurrent RCA serving layer over a shared platform."""

    def __init__(
        self,
        store,
        health: Optional[HealthRegistry] = None,
        workers: int = 4,
        queue_depth: int = 256,
        cache_capacity: int = 4096,
        metrics: Optional[ServiceMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
        job_history: int = 1024,
        default_deadline: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        supervise: bool = True,
        supervisor_config: Optional[SupervisorConfig] = None,
        brownout_config: Optional[BrownoutConfig] = None,
        executor: Optional[Callable[[Job, Worker], object]] = None,
        incident_sink: Optional[Callable[[Diagnosis], None]] = None,
    ) -> None:
        self.store = store
        self.health = health
        #: called with every produced diagnosis (cached hits included —
        #: the incident aggregator dedupes re-observations itself);
        #: exceptions are swallowed so a sink bug cannot fail jobs
        self.incident_sink = incident_sink
        #: incident store/aggregator pair, when the platform wired one
        #: (:meth:`GrcaPlatform.serve` with ``incidents=True``)
        self.incidents = None
        self.incident_aggregator = None
        self.metrics = metrics or ServiceMetrics()
        self.clock = clock
        #: relative per-job deadline (seconds) applied when a submit
        #: does not pass its own; ``None`` = unbounded jobs
        self.default_deadline = default_deadline
        self.queue = JobQueue(max_depth=queue_depth)
        self.cache = ResultCache(capacity=cache_capacity, metrics=self.metrics)
        self.cache.attach(store)
        self.pool = WorkerPool(
            # the executor seam lets the chaos harness interpose faults
            # between the pool and the real _execute
            self.queue, executor or self._execute, workers=workers,
            metrics=self.metrics, clock=clock,
            retry=retry if retry is not None else RetryPolicy(),
        )
        self.brownout = BrownoutController(brownout_config)
        self.supervisor: Optional[WorkerSupervisor] = None
        if supervise:
            self.supervisor = WorkerSupervisor(
                self.pool,
                self.queue,
                metrics=self.metrics,
                config=supervisor_config,
                brownout=self.brownout,
                clock=clock,
            )
        self._apps: Dict[str, AppHandle] = {}
        self._schedules: List[PeriodicSchedule] = []
        self._jobs: "OrderedDict[int, Job]" = OrderedDict()
        self._job_history = job_history
        self._job_counter = 0
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._shut_down = False
        # last-synced spatial-cache counters per resolver (workers share
        # one resolver per app, so deltas must be taken atomically)
        self._spatial_seen: Dict[int, Dict[str, int]] = {}
        self._spatial_lock = threading.Lock()

    # ------------------------------------------------------------------
    # registration and lifecycle

    def register_app(self, name: str, app) -> AppHandle:
        """Register an application (its engine becomes the prototype)."""
        engine = app.engine
        handle = AppHandle(
            name=name,
            app=app,
            engine=engine,
            fingerprint=engine.graph.fingerprint(),
            sources=evidence_sources(engine.graph, engine.library),
        )
        with self._lock:
            if name in self._apps:
                raise ValueError(f"application {name!r} already registered")
            self._apps[name] = handle
        return handle

    def apps(self) -> List[str]:
        """Registered application names."""
        with self._lock:
            return sorted(self._apps)

    def start(self) -> None:
        """Start the worker pool and the supervisor (idempotent)."""
        if self._started_at is None:
            self._started_at = self.clock()
        self.pool.start()
        if self.supervisor is not None:
            self.supervisor.start()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until the queue is empty and no job is in flight."""
        return self.queue.join(timeout=timeout)

    def shutdown(self, graceful: bool = True, timeout: float = 30.0) -> None:
        """Stop the service.

        ``graceful=True`` closes the queue to new work, lets workers
        finish everything already queued, then joins them.
        ``graceful=False`` cancels all pending jobs first; only jobs
        already running complete.  Idempotent: repeated calls no-op.
        """
        with self._lock:
            if self._shut_down:
                return
            self._shut_down = True
        # stop supervising first: shutdown owns thread lifecycles now,
        # and a sweep must not respawn workers the pool is joining
        if self.supervisor is not None:
            self.supervisor.stop(timeout=timeout)
        self.queue.close()
        if not graceful:
            # pending jobs are dropped; jobs already running complete
            # (the documented contract — operators who also want the
            # running ones stopped call cancel_job on them first)
            cancelled = self.queue.cancel_pending()
            self.metrics.jobs_cancelled.increment(len(cancelled))
        else:
            self.queue.join(timeout=timeout)
        self.pool.stop(timeout=timeout)
        self.cache.detach(self.store)

    @property
    def elapsed_seconds(self) -> float:
        return 0.0 if self._started_at is None else self.clock() - self._started_at

    def metrics_snapshot(self) -> Dict[str, object]:
        """The full service state as one structured, JSON-ready dict.

        Extends :meth:`ServiceMetrics.snapshot` with the storage and
        health context only the service knows (backend, record counts,
        brownout state, quarantine, pool liveness).  This is what
        ``GET /v1/metrics`` serves per shard; :meth:`metrics_lines` is
        a thin text rendering over the same numbers.
        """
        snap = self.metrics.snapshot(len(self.pool), self.elapsed_seconds)
        snap["storage"] = {
            "backend": self.store.backend_name,
            "tables": len(self.store.tables),
            "records": self.store.total_records(),
        }
        health: Dict[str, object] = {"state": self.health_state().value}
        if self.supervisor is not None:
            health["quarantined"] = len(self.supervisor.quarantine)
            health["workers_alive"] = self.pool.alive
            health["workers"] = self.pool.capacity
        snap["health"] = health
        snap["apps"] = self.apps()
        return snap

    def metrics_lines(self) -> List[str]:
        """Rendered metrics including worker utilization and storage."""
        lines = self.metrics.format_lines(len(self.pool), self.elapsed_seconds)
        lines.append(
            f"  storage: backend={self.store.backend_name} "
            f"tables={len(self.store.tables)} "
            f"records={self.store.total_records()}"
        )
        health_line = f"  health: {self.health_state().value}"
        if self.supervisor is not None:
            health_line += (
                f" quarantine={len(self.supervisor.quarantine)}"
                f" pool={self.pool.alive}/{self.pool.capacity}"
            )
        lines.append(health_line)
        return lines

    # ------------------------------------------------------------------
    # submission

    def submit_diagnosis(
        self,
        app: str,
        symptoms: Sequence[EventInstance],
        priority: Optional[int] = None,
        block: bool = False,
        timeout: Optional[float] = None,
        traced: bool = False,
        deadline: Optional[float] = None,
    ) -> Job:
        """Queue a symptom batch for diagnosis; returns the job handle.

        ``traced=True`` gives the job its own :class:`repro.obs.Tracer`
        on the worker: the finished ``job`` span tree lands on
        :attr:`~repro.service.queue.Job.trace` and each diagnosis
        carries its own subtree.  Traced jobs bypass the result cache
        (both lookup and store), so the trace reflects real work and
        cached diagnoses never carry another job's spans.

        ``deadline`` bounds the job's total wall time in seconds from
        submission (default: the service's ``default_deadline``).  A job
        past its deadline stops at the next engine checkpoint and
        finishes ``TIMED_OUT``; a worker hung past the supervisor's
        grace is detached and replaced.
        """
        handle = self._handle(app)
        base = PRIORITY_INTERACTIVE if priority is None else priority
        job = Job(
            kind="diagnose",
            app=handle.name,
            payload=list(symptoms),
            priority=self.effective_priority(handle, base),
            submitted_at=self.clock(),
            traced=traced,
        )
        return self._submit(job, block=block, timeout=timeout, deadline=deadline)

    def submit_run(
        self,
        app: str,
        start: float,
        end: float,
        priority: Optional[int] = None,
        block: bool = False,
        timeout: Optional[float] = None,
        traced: bool = False,
        deadline: Optional[float] = None,
    ) -> Job:
        """Queue a whole-window application run (find symptoms + diagnose).

        ``traced`` and ``deadline`` behave as in
        :meth:`submit_diagnosis`; a traced run additionally records a
        ``detect`` span for symptom retrieval.
        """
        handle = self._handle(app)
        base = PRIORITY_PERIODIC if priority is None else priority
        job = Job(
            kind="run",
            app=handle.name,
            payload=(start, end),
            priority=self.effective_priority(handle, base),
            submitted_at=self.clock(),
            traced=traced,
        )
        return self._submit(job, block=block, timeout=timeout, deadline=deadline)

    def diagnose_now(
        self, app: str, symptoms: Sequence[EventInstance], timeout: Optional[float] = None
    ) -> List[Diagnosis]:
        """Submit an interactive batch and wait for its diagnoses."""
        return self.submit_diagnosis(app, symptoms, block=True).outcome(timeout)

    def dispatcher(self, app: str) -> Callable[[List[EventInstance]], List[Diagnosis]]:
        """A StreamingRca dispatcher that routes through this service.

        Plug into :class:`repro.core.streaming.StreamingRca` so each
        ``advance`` diagnoses its settled symptoms on the worker pool
        (with caching and metrics) instead of inline.
        """
        def dispatch(instances: List[EventInstance]) -> List[Diagnosis]:
            if not instances:
                return []
            return self.diagnose_now(app, instances)
        return dispatch

    def effective_priority(self, handle: AppHandle, base: int) -> int:
        """Base priority, demoted while the app's evidence feeds are impaired.

        Impairment never blocks admission — a diagnosis under degraded
        evidence still runs (and is annotated with caveats by the
        engine); it just yields the queue to apps whose evidence is
        whole.
        """
        if self.health is None:
            return base
        for source in handle.sources:
            if self.health.state(source) in IMPAIRED_STATES:
                return base + PRIORITY_IMPAIRED_PENALTY
        return base

    # ------------------------------------------------------------------
    # job tracking

    def poll(self, job_id: int) -> JobState:
        """The state of a job by id.

        Raises :class:`KeyError` when the id was never issued by this
        service or its job has been expired from the bounded history.
        Every id :meth:`_submit` returned is immediately pollable —
        jobs are registered *before* queue admission, so a concurrent
        poller can never observe an issued id as unknown.
        """
        return self.job(job_id).state

    def job(self, job_id: int) -> Job:
        """The job handle by id; raises :class:`KeyError` when unknown.

        ``KeyError`` means *this id does not name a live or remembered
        job* — it was never issued, was refused at admission, or fell
        off the bounded finished-job history.  Callers that want the
        soft form use :meth:`find_job`.
        """
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(
                    f"unknown job id {job_id!r}: never issued, refused at "
                    f"admission, or expired from the job history"
                ) from None

    def find_job(self, job_id: int) -> Optional[Job]:
        """The job handle by id, or ``None`` when unknown/expired."""
        with self._lock:
            return self._jobs.get(job_id)

    def cancel_job(self, job_id: int) -> bool:
        """Request cooperative cancellation of a job by id.

        A pending job is cancelled before it runs (the worker's
        pre-execution check fires); a running job stops at its next
        engine checkpoint.  Raises :class:`KeyError` for an unknown id;
        returns ``False`` when the job is already terminal (nothing to
        cancel) — cancellation is a request, so ``True`` means
        *requested*, not yet terminal.
        """
        job = self.job(job_id)
        if job.finished:
            return False
        job.request_cancel("cancelled by operator")
        return True

    def health_state(self) -> ServiceHealth:
        """Current service health (``OK`` or brownout ``DEGRADED``)."""
        return self.brownout.state

    @property
    def available(self) -> bool:
        """True while this service can accept and execute work.

        False before :meth:`start`, after :meth:`shutdown`, and while
        the worker pool has no live thread (a wedged shard: everything
        it would accept could only queue forever).  The shard router
        uses this to fail one keyspace fast instead of hanging it.
        """
        with self._lock:
            if self._shut_down:
                return False
        return self._started_at is not None and self.pool.alive > 0

    def quarantined(self) -> list:
        """Quarantine-buffer entries (empty without a supervisor)."""
        if self.supervisor is None:
            return []
        return self.supervisor.quarantine.entries()

    # ------------------------------------------------------------------
    # periodic scheduling

    def schedule_periodic(
        self, app: str, interval: float, window: Optional[float] = None,
        first_due: float = 0.0,
    ) -> PeriodicSchedule:
        """Re-run ``app`` every ``interval`` of data time.

        Each due run covers the trailing ``window`` (defaults to the
        interval, i.e. contiguous coverage).  Runs are submitted by
        :meth:`tick` — the service is driven by the data clock, so
        tests and replays control time explicitly.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._handle(app)  # validate registration
        schedule = PeriodicSchedule(
            app=app,
            interval=interval,
            window=interval if window is None else window,
            next_due=first_due if first_due > 0 else interval,
        )
        with self._lock:
            self._schedules.append(schedule)
        return schedule

    def tick(self, data_now: float) -> List[Job]:
        """Submit every periodic run that has come due by ``data_now``.

        Also re-evaluates feed health at the new data frontier, so
        priority demotion tracks the current feed states.
        """
        if self.health is not None:
            self.health.tick(data_now)
        submitted: List[Job] = []
        with self._lock:
            schedules = list(self._schedules)
        for schedule in schedules:
            while schedule.next_due <= data_now:
                due = schedule.next_due
                # shed/full periodic runs are skipped, not fatal: the
                # schedule advances and the next interval tries again
                try:
                    job = self.submit_run(
                        schedule.app, due - schedule.window, due
                    )
                except QueueFull:
                    job = None
                schedule.next_due = due + schedule.interval
                if job is not None:
                    schedule.runs_submitted += 1
                    submitted.append(job)
        return submitted

    # ------------------------------------------------------------------
    # execution (runs on worker threads)

    def _execute(self, job: Job, worker: Worker) -> List[Diagnosis]:
        # brownout trims per-execution work: tracing is dropped and the
        # exploration depth capped for the duration of the degradation
        degraded = self.brownout.degraded
        traced = job.traced and not (degraded and self.brownout.config.trim_tracing)
        max_depth = self.brownout.config.degraded_max_depth if degraded else None
        # one fresh tracer per traced job, created on the worker thread
        # and never shared: spans cannot leak between concurrent jobs
        tracer = Tracer() if traced else NULL_TRACER
        with tracer.span(
            "job", label=f"job-{job.job_id}", job_kind=job.kind, app=job.app
        ) as root:
            handle = self._handle(job.app)
            if job.cancel is not None:
                job.cancel.check()
            if job.kind == "run":
                start, end = job.payload
                with tracer.span(
                    "detect", label=handle.engine.graph.symptom_event
                ) as span:
                    symptoms = handle.app.find_symptoms(start, end)
                    span.annotate(retrieved=len(symptoms), window=[start, end])
            elif job.kind == "diagnose":
                symptoms = job.payload
            else:
                raise ValueError(f"unknown job kind {job.kind!r}")
            engine = worker.engine_for(handle.name, handle.engine)
            diagnoses: List[Diagnosis] = []
            for symptom in symptoms:
                if job.cancel is not None:
                    job.cancel.check()
                if not job.traced:
                    key = cache_key(handle.name, symptom, handle.fingerprint)
                    cached = self.cache.lookup(key)
                    if cached is not None:
                        diagnoses.append(cached)
                        continue
                revision = self._sync_engine(engine)
                started = self.clock()
                diagnosis = engine.diagnose(
                    symptom, tracer=tracer, cancel=job.cancel,
                    max_depth=max_depth,
                )
                self.metrics.diagnosis_latency.observe(self.clock() - started)
                self.metrics.symptoms_diagnosed.increment()
                if not job.traced and max_depth is None:
                    # depth-capped diagnoses are never cached: a full
                    # re-run after recovery must not see trimmed results
                    self.cache.store(key, diagnosis, revision)
                diagnoses.append(diagnosis)
            root.annotate(symptoms=len(symptoms))
            self._sync_spatial_metrics(engine.resolver)
        if traced:
            job.trace = root
            self.metrics.observe_stages(stage_breakdown(root))
        if self.incident_sink is not None:
            for diagnosis in diagnoses:
                try:
                    self.incident_sink(diagnosis)
                except Exception:  # noqa: BLE001 - sink bugs stay out of jobs
                    pass
        return diagnoses

    def _sync_spatial_metrics(self, resolver) -> None:
        """Fold the resolver's epoch-cache counters into service metrics.

        The resolver's counters are cumulative and shared by every
        worker engine of an app; each sync publishes only the delta
        since the last sync of that resolver, so concurrent jobs never
        double-count.
        """
        stats = resolver.cache_stats()
        with self._spatial_lock:
            seen = self._spatial_seen.setdefault(
                id(resolver), {"hits": 0, "misses": 0, "invalidations": 0}
            )
            deltas = {key: stats[key] - seen[key] for key in seen}
            seen.update({key: stats[key] for key in seen})
        if deltas["hits"]:
            self.metrics.spatial_cache_hits.increment(deltas["hits"])
        if deltas["misses"]:
            self.metrics.spatial_cache_misses.increment(deltas["misses"])
        if deltas["invalidations"]:
            self.metrics.spatial_cache_invalidations.increment(deltas["invalidations"])

    def _sync_engine(self, engine: RcaEngine) -> int:
        """Bring a worker engine's retrieval cache up to the store head.

        Late records evict entries from the shared :class:`ResultCache`
        as they land, but each worker engine also keeps a *private*
        retrieval cache; without this sync a re-diagnosis after an
        eviction could rebuild the result from stale cached windows.
        Replays the cache's mutation log against the engine (dropping
        exactly the windows each record landed in), falling back to a
        full :meth:`~repro.core.engine.RcaEngine.clear_cache` when the
        bounded log cannot prove completeness.  Runs on the worker
        thread that owns the engine; returns the synced revision.
        """
        current = self.store.revision
        last = engine.synced_revision
        if last is None or last > current:
            # fresh engine (empty cache): nothing cached predates now
            engine.synced_revision = current
            return current
        if last == current:
            return current
        mutations = self.cache.mutations_since(last)
        if mutations is None or not mutations or mutations[-1][0] < current:
            # the log cannot account for every insert since `last`
            engine.clear_cache()
        else:
            for _, table, timestamp in mutations:
                engine.invalidate_retrievals(table, timestamp)
        engine.synced_revision = current
        return current

    # ------------------------------------------------------------------

    def _handle(self, app: str) -> AppHandle:
        with self._lock:
            try:
                return self._apps[app]
            except KeyError:
                raise KeyError(
                    f"no application {app!r} registered; "
                    f"available: {sorted(self._apps)}"
                ) from None

    def _submit(
        self,
        job: Job,
        block: bool,
        timeout: Optional[float],
        deadline: Optional[float] = None,
    ) -> Job:
        relative = deadline if deadline is not None else self.default_deadline
        if relative is not None:
            job.deadline = self.clock() + relative
        # every job carries a token (deadline or not) so cancel_job and
        # shutdown can always stop it cooperatively
        job.cancel = CancellationToken(deadline=job.deadline, clock=self.clock)
        if (
            self.brownout.degraded
            and job.priority >= self.brownout.config.shed_priority
        ):
            self.metrics.jobs_shed.increment()
            raise JobShed(
                f"job shed: service degraded and priority {job.priority} >= "
                f"shed threshold {self.brownout.config.shed_priority}"
            )
        # issue the id and register the job BEFORE queue admission: a
        # concurrent poller holding an id this method returned must
        # never see KeyError, and admission can block (backpressure)
        with self._lock:
            self._job_counter += 1
            job.job_id = self._job_counter
            self._jobs[job.job_id] = job
        try:
            self.queue.submit(job, block=block, timeout=timeout)
        except Exception:
            # the id was never returned to the caller; retract it so a
            # refused submission leaves no pollable ghost job behind
            with self._lock:
                self._jobs.pop(job.job_id, None)
            self.metrics.jobs_rejected.increment()
            raise
        self.metrics.jobs_submitted.increment()
        self.metrics.queue_depth.set(len(self.queue))
        with self._lock:
            while len(self._jobs) > self._job_history:
                oldest_id, oldest = next(iter(self._jobs.items()))
                if not oldest.finished:
                    break  # never forget a live job
                del self._jobs[oldest_id]
        return job
