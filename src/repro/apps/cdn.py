"""CDN service impairment RCA (Section III-B, Fig. 5, Tables V/VI).

Static web objects are served from data centers across the network;
DNS binds users to the "closest" one.  A traffic monitor observes
end-to-end RTT between users and CDN servers; this application
diagnoses RTT degradations against CDN assignment policy changes,
server issues, BGP egress changes, link congestion/loss, interface
flaps and OSPF reconvergence — anything else is outside the provider's
network (the dominant Table VI outcome).

The symptom location is the (CDN server, client) pair; the spatial
model resolves it through NetFlow ingress mapping, BGP egress lookup
and OSPF path simulation, which is what makes historical diagnosis
possible at all ("practically impossible to manually identify for
historical events").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..core.browser import ResultBrowser
from ..core.engine import EngineConfig, RcaEngine
from ..core.events import (
    EventDefinition,
    EventInstance,
    EventLibrary,
    RetrievalContext,
)
from ..core.graph import DiagnosisGraph, DiagnosisRule
from ..core.knowledge import names
from ..core.knowledge.detectors import detect_shift
from ..core.knowledge.rules import expansion
from ..core.locations import Location, LocationType
from ..core.spatial import JoinLevel, SpatialJoinRule
from ..core.temporal import TemporalJoinRule
from ..platform import GrcaPlatform
from ..service.workers import parallel_diagnose

#: Keynote-style RTT sampling interval (coarser than backbone probes).
RTT_INTERVAL = 1800.0


# ---------------------------------------------------------------------------
# Table V application-specific events


def _retrieve_rtt_increase(context: RetrievalContext) -> Iterable[EventInstance]:
    """RTT shift per (server, client) pair against its trailing median."""
    factor = context.param("cdn_rtt_factor", 1.8)
    interval = context.param("cdn_rtt_interval", RTT_INTERVAL)
    lookback = context.param("cdn_rtt_lookback", 12 * RTT_INTERVAL)
    samples = [
        (r.timestamp, (r["source"], r["destination"]), r["value"])
        for r in context.store.table("perfmon").query(
            context.start - lookback, context.end, metric="rtt_ms"
        )
    ]
    for anomaly in detect_shift(samples, "increase", factor, absolute_floor=5.0):
        if anomaly.timestamp < context.start:
            continue
        server, client_ip = anomaly.key
        yield EventInstance.make(
            names.CDN_RTT_INCREASE,
            anomaly.timestamp - interval,
            anomaly.timestamp,
            Location.pair(LocationType.SOURCE_DESTINATION, server, client_ip),
            rtt_ms=anomaly.value,
            baseline_ms=anomaly.baseline,
        )


def _retrieve_server_issue(context: RetrievalContext) -> Iterable[EventInstance]:
    threshold = context.param("cdn_load_threshold", 0.9)
    for record in context.store.table("cdn").query(
        context.start, context.end, kind="load"
    ):
        if record["value"] >= threshold:
            yield EventInstance.make(
                names.CDN_SERVER_ISSUE,
                record.timestamp,
                record.timestamp,
                Location.server(record["server"]),
                load=record["value"],
            )


def _retrieve_policy_change(context: RetrievalContext) -> Iterable[EventInstance]:
    for record in context.store.table("cdn").query(
        context.start, context.end, kind="policy_change"
    ):
        yield EventInstance.make(
            names.CDN_POLICY_CHANGE,
            record.timestamp,
            record.timestamp,
            Location.server(record["server"]),
            detail=record.get("detail"),
        )


def register_cdn_events(events: EventLibrary) -> None:
    """Register the Table V application-specific events."""
    events.register(
        EventDefinition(
            names.CDN_RTT_INCREASE, LocationType.SOURCE_DESTINATION,
            _retrieve_rtt_increase,
            "increase in end-to-end round trip time (RTT) between "
            "end-users and CDN servers", "traffic monitor",
        )
    )
    events.register(
        EventDefinition(
            names.CDN_SERVER_ISSUE, LocationType.SERVER, _retrieve_server_issue,
            "CDN server load is high", "server logs",
        )
    )
    events.register(
        EventDefinition(
            names.CDN_POLICY_CHANGE, LocationType.SERVER, _retrieve_policy_change,
            "CDN request-assignment map changed", "CDN control plane",
        )
    )


# ---------------------------------------------------------------------------
# the Fig. 5 diagnosis graph


def build_cdn_graph() -> DiagnosisGraph:
    """The Fig. 5 diagnosis graph for CDN RTT degradations."""
    graph = DiagnosisGraph(symptom_event=names.CDN_RTT_INCREASE, name="cdn-rtt")
    symptom_type = LocationType.SOURCE_DESTINATION
    # the symptom interval spans a full measurement bin, so modest
    # margins suffice: the causal event lies inside the bin
    symptom_exp = expansion(left=60, right=60)

    def rule(child, priority, diag_type, level, diag_exp):
        graph.add_rule(
            DiagnosisRule(
                parent_event=names.CDN_RTT_INCREASE,
                child_event=child,
                temporal=TemporalJoinRule(symptom_exp, diag_exp),
                spatial=SpatialJoinRule(symptom_type, diag_type, level),
                priority=priority,
            )
        )

    rule(names.CDN_SERVER_ISSUE, 70, LocationType.SERVER, JoinLevel.SERVER,
         expansion(left=30, right=30))
    rule(names.CDN_POLICY_CHANGE, 60, LocationType.SERVER, JoinLevel.ROUTER,
         expansion(left=5, right=5))
    rule(names.INTERFACE_FLAP, 55, LocationType.INTERFACE, JoinLevel.INTERFACE,
         expansion(left=10, right=10))
    rule(names.BGP_EGRESS_CHANGE, 50, LocationType.PREFIX, JoinLevel.ROUTER,
         expansion(left=5, right=60))
    rule(names.LINK_LOSS, 45, LocationType.INTERFACE, JoinLevel.INTERFACE,
         expansion(left=30, right=30))
    rule(names.LINK_CONGESTION, 40, LocationType.INTERFACE, JoinLevel.INTERFACE,
         expansion(left=30, right=30))
    rule(names.OSPF_RECONVERGENCE, 30, LocationType.LOGICAL_LINK, JoinLevel.LINK_PATH,
         expansion(left=5, right=60))
    return graph


@dataclass
class CdnApp:
    """The configured CDN RTT-degradation RCA tool."""

    platform: GrcaPlatform
    events: EventLibrary
    engine: RcaEngine

    @classmethod
    def build(cls, platform: GrcaPlatform) -> "CdnApp":
        """Configure the CDN impairment RCA tool on a wired platform."""
        events = platform.knowledge.scoped_events()
        register_cdn_events(events)
        engine = RcaEngine(
            graph=build_cdn_graph(),
            library=events,
            resolver=platform.resolver,
            store=platform.store,
            config=EngineConfig(services=platform.services, health=platform.health),
        )
        return cls(platform=platform, events=events, engine=engine)

    def find_symptoms(self, start: float, end: float) -> List[EventInstance]:
        """Retrieve the application's symptom instances in a window."""
        context = RetrievalContext(
            store=self.platform.store, start=start, end=end,
            services=self.platform.services,
        )
        return self.events.get(names.CDN_RTT_INCREASE).retrieve(context)

    def diagnose_manual_event(
        self, start: float, end: float, server: str, client_ip: str
    ):
        """Diagnose an operator-entered event (Section III-B: "operators
        [may] directly enter an event of interest", e.g. from a customer
        service call rather than the traffic monitor)."""
        symptom = EventInstance.make(
            names.CDN_RTT_INCREASE, start, end,
            Location.pair(LocationType.SOURCE_DESTINATION, server, client_ip),
            entered="manually",
        )
        return self.engine.diagnose(symptom)

    def run(
        self, start: float, end: float, jobs: int = 1, traced: bool = False
    ) -> ResultBrowser:
        """Diagnose every symptom in the window; browse the results.

        ``jobs > 1`` runs the batch on the service worker pool with
        per-worker isolated engines; results match the serial path.
        ``traced=True`` attaches one span tree per diagnosis
        (see :mod:`repro.obs`).
        """
        symptoms = self.find_symptoms(start, end)
        return ResultBrowser(
            parallel_diagnose(self.engine, symptoms, jobs=jobs, traced=traced)
        )
