"""Backbone probe-loss RCA — the paper's motivating SQM workload.

The introduction frames the aggregate-analysis use case around
"sporadic packet losses observed by probing traffic transmitted between
different points of presence": examine a month of loss events, diagnose
them in bulk, and decide where to invest — "should link congestion be
determined to be the primary root cause, capacity augmentation is
needed ...; alternatively, if packet losses are found to be largely due
to intradomain routing reconvergence, deploying technologies such as
MPLS fast reroute becomes a priority."

This application needs *zero* application-specific events or rules:
symptom and every diagnosis rule come straight from the Knowledge
Library (Tables I and II), which is the strongest form of the paper's
rapid-customization claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.browser import ResultBrowser
from ..core.engine import EngineConfig, RcaEngine
from ..core.events import EventInstance, EventLibrary, RetrievalContext
from ..core.knowledge import names
from ..core.rulespec import SpecCompiler
from ..platform import GrcaPlatform
from ..service.workers import parallel_diagnose

#: The whole application is this spec: library events, library rules.
BACKBONE_LOSS_SPEC = f'''
application "backbone-probe-loss"
symptom "{names.LOSS_INCREASE}"

rule "{names.LOSS_INCREASE}" -> "{names.LINK_CONGESTION}" use library priority 90
rule "{names.LOSS_INCREASE}" -> "{names.OSPF_RECONVERGENCE}" use library priority 80
rule "{names.LOSS_INCREASE}" -> "{names.BGP_EGRESS_CHANGE}" use library priority 70
'''


@dataclass(frozen=True)
class InvestmentAdvice:
    """The intro's operational decision, computed from a breakdown."""

    congestion_share: float
    reconvergence_share: float
    recommendation: str


@dataclass
class BackboneApp:
    """The configured backbone probe-loss RCA tool."""

    platform: GrcaPlatform
    events: EventLibrary
    engine: RcaEngine

    @classmethod
    def build(cls, platform: GrcaPlatform) -> "BackboneApp":
        """Configure the backbone probe-loss RCA tool on a wired platform."""
        events = platform.knowledge.scoped_events()
        compiler = SpecCompiler(events, platform.knowledge.rules)
        graph = compiler.compile_text(BACKBONE_LOSS_SPEC)
        engine = RcaEngine(
            graph=graph,
            library=events,
            resolver=platform.resolver,
            store=platform.store,
            config=EngineConfig(services=platform.services, health=platform.health),
        )
        return cls(platform=platform, events=events, engine=engine)

    def find_symptoms(self, start: float, end: float) -> List[EventInstance]:
        """Retrieve the application's symptom instances in a window."""
        context = RetrievalContext(
            store=self.platform.store, start=start, end=end,
            services=self.platform.services,
        )
        return self.events.get(names.LOSS_INCREASE).retrieve(context)

    def run(
        self, start: float, end: float, jobs: int = 1, traced: bool = False
    ) -> ResultBrowser:
        """Diagnose every symptom in the window; browse the results.

        ``jobs > 1`` runs the batch on the service worker pool with
        per-worker isolated engines; results match the serial path.
        ``traced=True`` attaches one span tree per diagnosis
        (see :mod:`repro.obs`).
        """
        symptoms = self.find_symptoms(start, end)
        return ResultBrowser(
            parallel_diagnose(self.engine, symptoms, jobs=jobs, traced=traced)
        )

    @staticmethod
    def advise(browser: ResultBrowser) -> InvestmentAdvice:
        """Turn the aggregate breakdown into the intro's decision."""
        rows = {row.root_cause: row.percentage for row in browser.breakdown()}
        congestion = rows.get(names.LINK_CONGESTION, 0.0)
        reconvergence = rows.get(names.OSPF_RECONVERGENCE, 0.0)
        if congestion > reconvergence:
            recommendation = (
                "capacity augmentation along the congested paths"
            )
        elif reconvergence > congestion:
            recommendation = (
                "prioritize MPLS fast reroute deployment"
            )
        else:
            recommendation = "no dominant systemic cause; keep monitoring"
        return InvestmentAdvice(
            congestion_share=congestion,
            reconvergence_share=reconvergence,
            recommendation=recommendation,
        )
