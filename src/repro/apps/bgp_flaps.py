"""BGP flaps root cause analysis (Section III-A, Fig. 4, Tables III/IV).

Diagnoses eBGP session flaps between customer routers and provider edge
routers.  Only three application-specific events are needed (Table III)
— everything else comes from the Knowledge Library — and the diagnosis
graph is written in the rule-specification language, demonstrating the
"quick customization" workflow the paper describes.

Also carries the Section IV-C Bayesian configuration (Fig. 8): virtual
root causes "CPU High Issue", "Interface Issue" and "Line-card Issue",
used to find the unobservable line-card crash behind grouped flaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.browser import ResultBrowser
from ..core.engine import Diagnosis, EngineConfig, RcaEngine
from ..core.events import (
    EventDefinition,
    EventInstance,
    EventLibrary,
    RetrievalContext,
)
from ..core.knowledge import names
from ..core.knowledge.detectors import TimedPoint, pair_flaps
from ..core.locations import Location, LocationType
from ..core.reasoning.bayesian import BayesianEngine, BayesianVerdict, RootCauseModel
from ..core.rulespec import SpecCompiler
from ..platform import GrcaPlatform
from ..service.workers import parallel_diagnose

#: How long a session may stay down and still count as a "flap".
SESSION_FLAP_WINDOW = 900.0

#: Fig. 4 rendered in the rule-specification language.  Priorities are
#: the edge numbers of the figure's style: deeper causes higher, layer-1
#: restorations above interface flaps (the paper's "priority 180" rule).
BGP_FLAPS_SPEC = f'''
application "bgp-flaps"
symptom "{names.EBGP_FLAP}"

rule "{names.EBGP_FLAP}" -> "Router reboot" priority 200 {{
    symptom expand start/end 60 300
    diagnostic expand start/end 10 10
    join router:neighbor-ip router at router
}}
rule "{names.EBGP_FLAP}" -> "{names.CUSTOMER_RESET}" priority 190 {{
    symptom expand start/start 30 10
    diagnostic expand start/end 5 5
    join router:neighbor-ip router:neighbor-ip at same-location
}}
rule "{names.EBGP_FLAP}" -> "{names.EBGP_HTE}" priority 20 {{
    symptom expand start/start 30 10
    diagnostic expand start/end 5 5
    join router:neighbor-ip router:neighbor-ip at same-location
}}

# interface events reach the session through the customer-facing port;
# the 200 s symptom margin models the eBGP hold timer (180 s) + noise
rule "{names.EBGP_FLAP}" -> "Line protocol flap" priority 150 {{
    symptom expand start/start 200 10
    diagnostic expand start/end 10 10
    join router:neighbor-ip interface at interface
}}
rule "{names.EBGP_FLAP}" -> "Interface flap" priority 160 {{
    symptom expand start/start 200 10
    diagnostic expand start/end 10 10
    join router:neighbor-ip interface at interface
}}
rule "Line protocol flap" -> "Interface flap" use library priority 160

rule "{names.EBGP_HTE}" -> "CPU high (spike)" priority 50 {{
    symptom expand start/start 300 10
    diagnostic expand start/end 10 10
    join router:neighbor-ip router at router
}}
rule "{names.EBGP_HTE}" -> "CPU high (average)" priority 30 {{
    symptom expand start/start 400 30
    diagnostic expand start/end 60 60
    join router:neighbor-ip router at router
}}

rule "Interface flap" -> "SONET restoration" use library priority 180
rule "Interface flap" -> "Fast optical mesh network restoration" use library priority 175
rule "Interface flap" -> "Regular optical mesh network restoration" use library priority 170
'''


# ---------------------------------------------------------------------------
# Table III application-specific events


def _retrieve_ebgp_flap(context: RetrievalContext) -> Iterable[EventInstance]:
    """ADJCHANGE Down paired with the next Up on the same session."""
    window = context.param("session_flap_window", SESSION_FLAP_WINDOW)
    downs, ups = [], []
    for record in context.store.table("syslog").query(
        context.start - window, context.end + window, code="BGP-5-ADJCHANGE"
    ):
        neighbor = record.get("neighbor")
        if neighbor is None:
            continue
        point = TimedPoint(record.timestamp, (record["router"], neighbor))
        if record.get("state") == "down":
            downs.append(point)
        elif record.get("state") == "up":
            ups.append(point)
    for down, up in pair_flaps(downs, ups, window):
        if up.timestamp < context.start or down.timestamp > context.end:
            continue
        router, neighbor = down.key
        yield EventInstance.make(
            names.EBGP_FLAP,
            down.timestamp,
            up.timestamp,
            Location.router_neighbor(router, neighbor),
        )


def _notification_retrieval(name: str, reason: str, direction: str):
    def retrieve(context: RetrievalContext) -> Iterable[EventInstance]:
        for record in context.store.table("syslog").query(
            context.start, context.end, code="BGP-5-NOTIFICATION"
        ):
            neighbor = record.get("neighbor")
            if neighbor is None:
                continue
            if record.get("reason") != reason or record.get("direction") != direction:
                continue
            yield EventInstance.make(
                name,
                record.timestamp,
                record.timestamp,
                Location.router_neighbor(record["router"], neighbor),
            )

    return retrieve


def register_bgp_events(events: EventLibrary) -> None:
    """Register the Table III application-specific events."""
    events.register(
        EventDefinition(
            names.EBGP_FLAP, LocationType.ROUTER_NEIGHBOR, _retrieve_ebgp_flap,
            "eBGP session goes down and comes up, BGP-5-ADJCHANGE msg", "syslog",
        )
    )
    events.register(
        EventDefinition(
            names.CUSTOMER_RESET, LocationType.ROUTER_NEIGHBOR,
            _notification_retrieval(
                names.CUSTOMER_RESET, "administrative_reset", "received"
            ),
            "eBGP session is reset by the customer, BGP-5-NOTIFICATION msg", "syslog",
        )
    )
    events.register(
        EventDefinition(
            names.EBGP_HTE, LocationType.ROUTER_NEIGHBOR,
            _notification_retrieval(names.EBGP_HTE, "hold_timer_expired", "sent"),
            "eBGP hold timer expired, BGP-5-NOTIFICATION msg", "syslog",
        )
    )


# ---------------------------------------------------------------------------
# the application


@dataclass
class BgpFlapApp:
    """The configured BGP flap RCA tool."""

    platform: GrcaPlatform
    events: EventLibrary
    engine: RcaEngine

    @classmethod
    def build(cls, platform: GrcaPlatform) -> "BgpFlapApp":
        """Configure the BGP flap RCA tool on a wired platform."""
        events = platform.knowledge.scoped_events()
        register_bgp_events(events)
        compiler = SpecCompiler(events, platform.knowledge.rules)
        graph = compiler.compile_text(BGP_FLAPS_SPEC)
        engine = RcaEngine(
            graph=graph,
            library=events,
            resolver=platform.resolver,
            store=platform.store,
            config=EngineConfig(services=platform.services, health=platform.health),
        )
        return cls(platform=platform, events=events, engine=engine)

    def find_symptoms(self, start: float, end: float) -> List[EventInstance]:
        """Retrieve the application's symptom instances in a window."""
        context = RetrievalContext(
            store=self.platform.store, start=start, end=end,
            services=self.platform.services,
        )
        return self.events.get(names.EBGP_FLAP).retrieve(context)

    def run(
        self, start: float, end: float, jobs: int = 1, traced: bool = False
    ) -> ResultBrowser:
        """Diagnose every flap in the window; browse the results.

        ``jobs > 1`` diagnoses on the service worker pool (contiguous
        time chunks, one isolated engine each); results are identical
        to the serial path.  ``traced=True`` attaches one span
        tree per diagnosis (see :mod:`repro.obs`).
        """
        symptoms = self.find_symptoms(start, end)
        return ResultBrowser(
            parallel_diagnose(self.engine, symptoms, jobs=jobs, traced=traced)
        )

    # ------------------------------------------------------------------
    # Section IV-C: Bayesian inference over virtual root causes (Fig. 8)

    #: the derived group-level feature: several sessions on the same
    #: line card flapping within a few minutes
    FEATURE_MULTI_SESSION = "multi-session-flap-same-card"

    @staticmethod
    def bayesian_engine() -> BayesianEngine:
        """The Fig. 8 configuration with fuzzy Low/Medium/High ratios."""
        return BayesianEngine(
            [
                RootCauseModel(
                    "CPU High Issue",
                    prior_ratio="low",
                    evidence_ratios={
                        names.CPU_HIGH_SPIKE: "high",
                        names.CPU_HIGH_AVG: "high",
                        names.EBGP_HTE: "medium",
                    },
                    virtual=True,
                ),
                RootCauseModel(
                    "Interface Issue",
                    prior_ratio="medium",
                    evidence_ratios={
                        names.INTERFACE_FLAP: "high",
                        names.LINEPROTO_FLAP: "medium",
                        # independent per-interface faults rarely flap
                        # many sessions of one card in lockstep, so this
                        # evidence argues against the class (ratio < 1)
                        BgpFlapApp.FEATURE_MULTI_SESSION: 0.1,
                    },
                    virtual=True,
                ),
                RootCauseModel(
                    "Line-card Issue",
                    prior_ratio="low",
                    evidence_ratios={
                        names.INTERFACE_FLAP: "medium",
                        names.LINEPROTO_FLAP: "low",
                        BgpFlapApp.FEATURE_MULTI_SESSION: "high",
                    },
                    virtual=True,
                ),
            ]
        )

    def symptom_line_card(self, symptom: EventInstance) -> Optional[str]:
        """Resolve a flap's session to the line card behind it."""
        router, neighbor = symptom.location.parts
        fq = self.platform.paths.interface_for_neighbor(router, neighbor, symptom.start)
        if fq is None:
            return None
        iface = self.platform.topology.network.interface(fq)
        return f"{iface.router}:slot{iface.slot}"

    def bayesian_features(self, diagnosis: Diagnosis) -> Set[str]:
        """Per-symptom evidence features: matched diagnostic event names."""
        return {item.rule.child_event for item in diagnosis.evidence}

    def group_by_line_card(
        self,
        diagnoses: Sequence[Diagnosis],
        window_seconds: float = 300.0,
        min_group: int = 3,
    ) -> List[Tuple[str, List[Diagnosis]]]:
        """Groups of flaps on the same line card within a short window.

        Groups of at least ``min_group`` gain the
        :data:`FEATURE_MULTI_SESSION` evidence when classified.
        """
        by_card: Dict[str, List[Diagnosis]] = {}
        for diagnosis in diagnoses:
            card = self.symptom_line_card(diagnosis.symptom)
            if card is not None:
                by_card.setdefault(card, []).append(diagnosis)
        groups: List[Tuple[str, List[Diagnosis]]] = []
        for card, members in sorted(by_card.items()):
            members.sort(key=lambda d: d.symptom.start)
            current: List[Diagnosis] = []
            for diagnosis in members:
                if current and (
                    diagnosis.symptom.start - current[-1].symptom.start > window_seconds
                ):
                    if len(current) >= min_group:
                        groups.append((card, current))
                    current = []
                current.append(diagnosis)
            if len(current) >= min_group:
                groups.append((card, current))
        return groups

    def classify_group_bayesian(
        self, card: str, group: Sequence[Diagnosis]
    ) -> BayesianVerdict:
        """Joint Bayesian diagnosis of one line-card group (Fig. 8)."""
        engine = self.bayesian_engine()
        observations = []
        for diagnosis in group:
            features = self.bayesian_features(diagnosis)
            if len(group) >= 3:
                features = features | {self.FEATURE_MULTI_SESSION}
            observations.append(features)
        del card
        return engine.classify_group(observations)
