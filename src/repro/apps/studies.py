"""Domain-knowledge building studies (Section IV).

:func:`cpu_correlation_study` reproduces the Fig. 7 workflow — the
interaction between the Generic RCA Engine and the Correlation Tester.
The engine first classifies every BGP flap; the flaps whose diagnosis is
CPU-related are turned into a time series and blindly correlated against
every candidate signature series (workflow activities and syslog message
codes).  The paper's punchline, reproduced here: "the prefiltering of
BGP flaps by their root causes ... made a significant difference.  When
we fed all BGP flaps to the correlation tester module, the correlation
with provisioning activity was no longer statistically significant."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.correlation import (
    BinSpec,
    CorrelationResult,
    CorrelationTester,
    RuleMiner,
    candidate_series_from_store,
    from_event_instances,
)
from ..core.engine import Diagnosis
from ..core.knowledge import names
from .bgp_flaps import BgpFlapApp

#: Diagnoses with these primary causes form the "CPU-related" subset.
CPU_RELATED_CAUSES = frozenset({names.CPU_HIGH_SPIKE, names.CPU_HIGH_AVG})


@dataclass
class CorrelationStudy:
    """Outcome of the Fig. 7 prefiltered-vs-unfiltered comparison."""

    n_candidates: int
    n_cpu_related: int
    n_all_flaps: int
    prefiltered: List[CorrelationResult]
    unfiltered: List[CorrelationResult]

    def _result_for(
        self, results: Sequence[CorrelationResult], name_fragment: str
    ) -> Optional[CorrelationResult]:
        for result in results:
            if name_fragment in result.diagnostic:
                return result
        return None

    def prefiltered_result(self, name_fragment: str) -> Optional[CorrelationResult]:
        """The prefiltered test result matching a series-name fragment."""
        return self._result_for(self.prefiltered, name_fragment)

    def unfiltered_result(self, name_fragment: str) -> Optional[CorrelationResult]:
        """The unfiltered test result matching a series-name fragment."""
        return self._result_for(self.unfiltered, name_fragment)

    def significant_prefiltered(self) -> List[CorrelationResult]:
        """Significant results from the prefiltered test."""
        return [r for r in self.prefiltered if r.significant]

    def significant_unfiltered(self) -> List[CorrelationResult]:
        """Significant results from the unfiltered test."""
        return [r for r in self.unfiltered if r.significant]


def cpu_correlation_study(
    app: BgpFlapApp,
    diagnoses: Sequence[Diagnosis],
    start: float,
    end: float,
    bin_width: float = 300.0,
    tester: Optional[CorrelationTester] = None,
    per_router: bool = False,
) -> CorrelationStudy:
    """Run the Fig. 7 study over already-diagnosed flaps."""
    tester = tester or CorrelationTester()
    spec = BinSpec(start, end, bin_width)
    cpu_related = [
        d.symptom for d in diagnoses if d.primary_cause in CPU_RELATED_CAUSES
    ]
    all_flaps = [d.symptom for d in diagnoses]
    prefiltered_series = from_event_instances(
        "cpu-related BGP flaps", spec, cpu_related, margin=bin_width
    )
    unfiltered_series = from_event_instances(
        "all BGP flaps", spec, all_flaps, margin=bin_width
    )
    candidates = candidate_series_from_store(
        app.platform.store, spec, per_router=per_router
    )
    miner = RuleMiner(tester)
    return CorrelationStudy(
        n_candidates=len(candidates),
        n_cpu_related=len(cpu_related),
        n_all_flaps=len(all_flaps),
        prefiltered=miner.test_all(prefiltered_series, candidates),
        unfiltered=miner.test_all(unfiltered_series, candidates),
    )
