"""PIM adjacency change RCA in Multicast VPN (Section III-C, Fig. 6,
Tables VII/VIII).

For each MVPN customer, provider edge routers maintain PIM neighbor
adjacencies with each other; adjacency losses (syslog ``PIM-5-NBRCHG``)
arrive by the thousands per day, and this application classifies their
root causes: configuration changes, routing changes inside the backbone
(router/link cost events, OSPF reconvergence), uplink adjacency loss,
and — dominating Table VIII — customer-facing interface flaps.

Only three multicast-specific events are defined (Table VII); the graph
reuses Knowledge Library events for everything else and was, per the
paper, built in under ten hours of development time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..core.browser import ResultBrowser
from ..core.engine import EngineConfig, RcaEngine
from ..core.events import (
    EventDefinition,
    EventInstance,
    EventLibrary,
    RetrievalContext,
)
from ..core.graph import DiagnosisGraph, DiagnosisRule
from ..core.knowledge import names
from ..core.knowledge.rules import expansion
from ..core.locations import Location, LocationType
from ..core.spatial import JoinLevel, SpatialJoinRule
from ..core.temporal import ExpandOption, TemporalJoinRule
from ..platform import GrcaPlatform
from ..service.workers import parallel_diagnose

#: App-specific event: an interface flap restricted to customer-facing
#: ports (the Table VIII "interface (customer facing) flap" category).
CUSTOMER_IFACE_FLAP = "interface (customer facing) flap"


# ---------------------------------------------------------------------------
# Table VII application-specific events


def _retrieve_pim_adjacency_change(context: RetrievalContext) -> Iterable[EventInstance]:
    """MVPN (vrf-scoped) adjacency losses between PE pairs."""
    loopbacks = context.service("loopbacks")
    for record in context.store.table("syslog").query(
        context.start, context.end, code="PIM-5-NBRCHG", state="down"
    ):
        if record.get("vrf") is None:
            continue  # uplink adjacency: a different event
        remote = loopbacks.get(record.get("neighbor"))
        if remote is None:
            continue
        yield EventInstance.make(
            names.PIM_ADJACENCY_CHANGE,
            record.timestamp,
            record.timestamp,
            Location.pair(LocationType.INGRESS_EGRESS, record["router"], remote),
            vrf=record.get("vrf"),
        )


def _retrieve_uplink_adjacency_change(context: RetrievalContext) -> Iterable[EventInstance]:
    """Non-vrf adjacency losses: the PE's uplink neighbor to the core."""
    for record in context.store.table("syslog").query(
        context.start, context.end, code="PIM-5-NBRCHG", state="down"
    ):
        if record.get("vrf") is not None:
            continue
        interface = record.get("interface")
        if interface is None:
            continue
        yield EventInstance.make(
            names.UPLINK_PIM_ADJACENCY_CHANGE,
            record.timestamp,
            record.timestamp,
            Location.interface(f"{record['router']}:{interface}"),
        )


def _retrieve_pim_config_change(context: RetrievalContext) -> Iterable[EventInstance]:
    """MVPN (de)provisioning from the router command logs."""
    for record in context.store.table("tacacs").query(context.start, context.end):
        command = record.get("command", "")
        if "ip vrf" not in command and "mdt" not in command:
            continue
        yield EventInstance.make(
            names.PIM_CONFIG_CHANGE,
            record.timestamp,
            record.timestamp,
            Location.router(record["router"]),
            command=command,
        )


def _retrieve_customer_iface_flap(context: RetrievalContext) -> Iterable[EventInstance]:
    """Interface flaps restricted to customer-facing (link-less) ports."""
    network = context.service("network")
    base = context.service("event_library").get(names.INTERFACE_FLAP)
    for instance in base.retrieve(context):
        fq = instance.location.value
        try:
            if network.link_of_interface(fq) is not None:
                continue  # an in-network (OSPF) port, not customer-facing
            network.interface(fq)
        except KeyError:
            continue
        yield EventInstance.make(
            CUSTOMER_IFACE_FLAP, instance.start, instance.end, instance.location
        )


def register_pim_events(events: EventLibrary) -> None:
    """Register the Table VII application-specific events."""
    events.register(
        EventDefinition(
            names.PIM_ADJACENCY_CHANGE, LocationType.INGRESS_EGRESS,
            _retrieve_pim_adjacency_change,
            "a PE lost a neighbor adjacency with another PE in the MVPN", "syslog",
        )
    )
    events.register(
        EventDefinition(
            names.UPLINK_PIM_ADJACENCY_CHANGE, LocationType.INTERFACE,
            _retrieve_uplink_adjacency_change,
            "a PE lost a neighbor adjacency with its directly connected "
            "router on its uplink to the backbone", "syslog",
        )
    )
    events.register(
        EventDefinition(
            names.PIM_CONFIG_CHANGE, LocationType.ROUTER,
            _retrieve_pim_config_change,
            "a MVPN is either provisioned or de-provisioned on a router",
            "router command logs",
        )
    )
    events.register(
        EventDefinition(
            CUSTOMER_IFACE_FLAP, LocationType.INTERFACE,
            _retrieve_customer_iface_flap,
            "interface flap on a customer-facing port", "syslog",
        )
    )


# ---------------------------------------------------------------------------
# the Fig. 6 diagnosis graph


def build_pim_graph() -> DiagnosisGraph:
    """The Fig. 6 diagnosis graph for PIM adjacency changes."""
    graph = DiagnosisGraph(symptom_event=names.PIM_ADJACENCY_CHANGE, name="pim-mvpn")
    symptom_type = LocationType.INGRESS_EGRESS

    def rule(child, priority, diag_type, level, sym_exp, diag_exp):
        graph.add_rule(
            DiagnosisRule(
                parent_event=names.PIM_ADJACENCY_CHANGE,
                child_event=child,
                temporal=TemporalJoinRule(sym_exp, diag_exp),
                spatial=SpatialJoinRule(symptom_type, diag_type, level),
                priority=priority,
            )
        )

    rule(
        CUSTOMER_IFACE_FLAP, 140, LocationType.INTERFACE, JoinLevel.ROUTER,
        expansion(ExpandOption.START_START, 60, 10), expansion(left=10, right=10),
    )
    rule(
        names.UPLINK_PIM_ADJACENCY_CHANGE, 130, LocationType.INTERFACE,
        JoinLevel.ROUTER,
        expansion(ExpandOption.START_START, 60, 10), expansion(left=5, right=5),
    )
    rule(
        names.PIM_CONFIG_CHANGE, 120, LocationType.ROUTER, JoinLevel.ROUTER,
        expansion(ExpandOption.START_START, 120, 10), expansion(left=5, right=5),
    )
    rule(
        names.ROUTER_COST_IN_OUT, 110, LocationType.ROUTER, JoinLevel.ROUTER_PATH,
        expansion(ExpandOption.START_START, 60, 30), expansion(left=30, right=30),
    )
    rule(
        names.LINK_COST_OUT, 90, LocationType.LOGICAL_LINK, JoinLevel.LINK_PATH,
        expansion(ExpandOption.START_START, 60, 10), expansion(left=5, right=5),
    )
    rule(
        names.LINK_COST_IN, 85, LocationType.LOGICAL_LINK, JoinLevel.LINK_PATH,
        expansion(ExpandOption.START_START, 60, 10), expansion(left=5, right=5),
    )
    rule(
        names.OSPF_RECONVERGENCE, 80, LocationType.LOGICAL_LINK, JoinLevel.LINK_PATH,
        expansion(ExpandOption.START_START, 60, 10), expansion(left=5, right=60),
    )
    return graph


@dataclass
class PimApp:
    """The configured MVPN PIM adjacency RCA tool."""

    platform: GrcaPlatform
    events: EventLibrary
    engine: RcaEngine

    @classmethod
    def build(cls, platform: GrcaPlatform) -> "PimApp":
        """Configure the PIM/MVPN RCA tool on a wired platform."""
        events = platform.knowledge.scoped_events()
        register_pim_events(events)
        services = dict(platform.services)
        services["event_library"] = events
        engine = RcaEngine(
            graph=build_pim_graph(),
            library=events,
            resolver=platform.resolver,
            store=platform.store,
            config=EngineConfig(services=services, health=platform.health),
        )
        return cls(platform=platform, events=events, engine=engine)

    def find_symptoms(self, start: float, end: float) -> List[EventInstance]:
        """Retrieve the application's symptom instances in a window."""
        services = dict(self.platform.services)
        services["event_library"] = self.events
        context = RetrievalContext(
            store=self.platform.store, start=start, end=end, services=services
        )
        return self.events.get(names.PIM_ADJACENCY_CHANGE).retrieve(context)

    def run(
        self, start: float, end: float, jobs: int = 1, traced: bool = False
    ) -> ResultBrowser:
        """Diagnose every symptom in the window; browse the results.

        ``jobs > 1`` runs the batch on the service worker pool with
        per-worker isolated engines; results match the serial path.
        ``traced=True`` attaches one span tree per diagnosis
        (see :mod:`repro.obs`).
        """
        symptoms = self.find_symptoms(start, end)
        return ResultBrowser(
            parallel_diagnose(self.engine, symptoms, jobs=jobs, traced=traced)
        )
