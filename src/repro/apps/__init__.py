"""RCA applications built on the G-RCA platform (Section III)."""

from .backbone import BACKBONE_LOSS_SPEC, BackboneApp, InvestmentAdvice
from .bgp_flaps import BGP_FLAPS_SPEC, BgpFlapApp, register_bgp_events
from .cdn import CdnApp, build_cdn_graph, register_cdn_events
from .pim import CUSTOMER_IFACE_FLAP, PimApp, build_pim_graph, register_pim_events

__all__ = [
    "BACKBONE_LOSS_SPEC",
    "BackboneApp",
    "InvestmentAdvice",
    "BGP_FLAPS_SPEC",
    "BgpFlapApp",
    "CUSTOMER_IFACE_FLAP",
    "CdnApp",
    "PimApp",
    "build_cdn_graph",
    "build_pim_graph",
    "register_bgp_events",
    "register_cdn_events",
    "register_pim_events",
]
