"""The incident lifecycle layer (ROADMAP item 5).

Diagnoses end at :class:`~repro.core.engine.Diagnosis` objects and the
Result Browser; operators need the workflow *around* them — repeated
symptoms collapsed into a handful of actionable incidents, standardized
write-ups for the next shift, and a store they can query for root-cause
distributions over time.  This package is that layer:

* :mod:`~repro.incident.aggregate` — :class:`IncidentAggregator` folds a
  stream of diagnoses into :class:`Incident` records by (root cause,
  location, time window) with flap counting and confidence rollups;
* :mod:`~repro.incident.serialize` — the stable ``grca-incident/1``
  JSON schema next to the existing ``grca-diagnosis/1``;
* :mod:`~repro.incident.store` — :class:`IncidentStore`, a queryable,
  optionally SQLite-durable incident log with breakdown and drill-down
  queries;
* :mod:`~repro.incident.report` — the standardized sectioned RCA report
  (summary / impact / root causes / resolution / preventive measures /
  conclusion).

See ``docs/incidents.md``.
"""

from .aggregate import Incident, IncidentAggregator
from .report import render_incident_report, render_incident_summary
from .serialize import INCIDENT_SCHEMA, incident_from_dict, incident_to_dict
from .store import IncidentStore

__all__ = [
    "Incident",
    "IncidentAggregator",
    "IncidentStore",
    "INCIDENT_SCHEMA",
    "incident_from_dict",
    "incident_to_dict",
    "render_incident_report",
    "render_incident_summary",
]
