"""Folding diagnosis streams into deduplicated incidents.

A month of telemetry over a flapping BGP session produces hundreds of
diagnosed symptom instances that are, to an operator, *one* incident:
same root cause, same location, one contiguous stretch of time.  The
:class:`IncidentAggregator` performs that collapse — Groot's deployment
experience (PAPERS.md) is the motivation: thousands of correlated
alerts must become a handful of actionable items.

Dedupe identity is ``(symptom name, annotated root cause, resolved
location)``; the *time window* dimension is gap-based: a new symptom
within ``gap_seconds`` of the incident's last activity folds in
(flap count += 1), a later one closes the window and opens a fresh
incident.  Re-emissions of the *same* symptom instance (the streaming
engine re-diagnoses settled symptoms when late evidence lands) are
recognized by :func:`~repro.core.events.instance_key` and do **not**
inflate the flap count.

Everything is derived from event timestamps — no wall clock anywhere —
so replaying the same seed twice produces byte-identical incidents
(pinned by the end-to-end tests).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.engine import Diagnosis
from ..core.events import InstanceKey, instance_key
from ..core.locations import Location

#: Caveat strings kept per incident (rollup, not a transcript).
MAX_CAVEATS = 8

#: What an incident is deduplicated by: (symptom name, annotated cause,
#: location type value, location parts).
IncidentGroupKey = Tuple[str, str, str, Tuple[str, ...]]


def incident_id_for(
    symptom: str, cause: str, location: Location, window_start: float
) -> str:
    """Deterministic incident id — stable across runs of the same seed.

    A content hash, not a counter: two processes (or two replays)
    aggregating the same stream agree on ids without coordination.
    """
    seed = (
        f"{symptom}\x1f{cause}\x1f{location.type.value}"
        f"\x1f{':'.join(location.parts)}\x1f{window_start:.1f}"
    )
    return "inc-" + hashlib.sha1(seed.encode("utf-8")).hexdigest()[:12]


@dataclass
class Incident:
    """One deduplicated incident: repeated symptoms, one cause, one place."""

    incident_id: str
    symptom_name: str
    cause: str
    location: Location
    window_start: float
    first_seen: float
    last_seen: float
    #: distinct symptom instances folded in (>1 means the symptom flapped)
    flap_count: int = 1
    #: bumped on every state change; the store's drill-down timeline is
    #: the revision log
    revision: int = 1
    open: bool = True
    #: rollups over folded diagnoses
    confidence_total: float = 1.0
    confidence_min: float = 1.0
    degraded_count: int = 0
    gap_sources: Tuple[str, ...] = ()
    caveats: Tuple[str, ...] = ()
    #: representative diagnosis (the first folded in), carried whole so
    #: reports and API consumers can show a worked evidence trace
    example: Optional[Diagnosis] = field(default=None, compare=False, repr=False)

    @property
    def confidence_mean(self) -> float:
        return self.confidence_total / max(self.flap_count, 1)

    @property
    def duration(self) -> float:
        return self.last_seen - self.first_seen

    @property
    def is_degraded(self) -> bool:
        return self.degraded_count > 0

    def to_json(self) -> Dict:
        """This incident as a ``grca-incident/1`` JSON-ready dict."""
        from .serialize import incident_to_dict

        return incident_to_dict(self)

    @classmethod
    def from_json(cls, data: Dict) -> "Incident":
        """Rebuild an incident from its :meth:`to_json` form."""
        from .serialize import incident_from_dict

        return incident_from_dict(data)


#: Called with every incident revision (new or updated).
IncidentCallback = Callable[[Incident], None]


class IncidentAggregator:
    """Folds diagnoses into incidents; safe to feed from many threads.

    ``observe`` matches the engine/streaming ``DiagnosisCallback``
    signature, so an aggregator plugs directly into
    :class:`~repro.core.streaming.StreamingRca` (``on_diagnosis=``) and
    the service layer's ``incident_sink``.  Attach a sink (usually
    :meth:`~repro.incident.store.IncidentStore.record`) to persist every
    revision.
    """

    def __init__(
        self,
        gap_seconds: float = 3600.0,
        sink: Optional[IncidentCallback] = None,
    ) -> None:
        if gap_seconds <= 0:
            raise ValueError(
                f"gap_seconds must be positive, got {gap_seconds!r}"
            )
        self.gap_seconds = gap_seconds
        self._sink = sink
        self._lock = threading.Lock()
        self._active: Dict[IncidentGroupKey, Incident] = {}
        self._closed: List[Incident] = []
        self._members: Dict[str, Set[InstanceKey]] = {}
        self.observed = 0
        self.deduped = 0

    # ------------------------------------------------------------------
    # ingest

    def observe(self, diagnosis: Diagnosis) -> Incident:
        """Fold one diagnosis in; returns the (possibly new) incident."""
        symptom = diagnosis.symptom
        cause = diagnosis.annotated_cause
        location = symptom.location
        group: IncidentGroupKey = (
            symptom.name,
            cause,
            location.type.value,
            location.parts,
        )
        member = instance_key(symptom)
        with self._lock:
            self.observed += 1
            incident = self._active.get(group)
            if incident is not None:
                if member in self._members[incident.incident_id]:
                    # streaming re-emission of a known instance: refresh
                    # rollups that may have changed, never the flap count
                    self.deduped += 1
                    self._refold(incident, diagnosis)
                    self._emit(incident)
                    return incident
                if symptom.start - incident.last_seen > self.gap_seconds:
                    incident.open = False
                    incident.revision += 1
                    self._emit(incident)
                    self._closed.append(incident)
                    incident = None
            if incident is None:
                incident = Incident(
                    incident_id=incident_id_for(
                        symptom.name, cause, location, symptom.start
                    ),
                    symptom_name=symptom.name,
                    cause=cause,
                    location=location,
                    window_start=symptom.start,
                    first_seen=symptom.start,
                    last_seen=symptom.end,
                    confidence_total=diagnosis.confidence,
                    confidence_min=diagnosis.confidence,
                    degraded_count=1 if diagnosis.gaps else 0,
                    gap_sources=tuple(
                        sorted({gap.source for gap in diagnosis.gaps})
                    ),
                    caveats=tuple(diagnosis.caveats[:MAX_CAVEATS]),
                    example=diagnosis,
                )
                self._active[group] = incident
                self._members[incident.incident_id] = {member}
                self._emit(incident)
                return incident
            # a new flap of the active incident
            self._members[incident.incident_id].add(member)
            incident.flap_count += 1
            incident.revision += 1
            incident.first_seen = min(incident.first_seen, symptom.start)
            incident.last_seen = max(incident.last_seen, symptom.end)
            incident.confidence_total += diagnosis.confidence
            incident.confidence_min = min(
                incident.confidence_min, diagnosis.confidence
            )
            self._roll_gaps(incident, diagnosis)
            self._emit(incident)
            return incident

    def _refold(self, incident: Incident, diagnosis: Diagnosis) -> None:
        """A re-emitted instance: refresh gap rollups, bump the revision."""
        incident.revision += 1
        incident.confidence_min = min(
            incident.confidence_min, diagnosis.confidence
        )
        self._roll_gaps(incident, diagnosis)

    @staticmethod
    def _roll_gaps(incident: Incident, diagnosis: Diagnosis) -> None:
        if diagnosis.gaps:
            incident.degraded_count += 1
            incident.gap_sources = tuple(
                sorted(
                    set(incident.gap_sources)
                    | {gap.source for gap in diagnosis.gaps}
                )
            )
        fresh = [c for c in diagnosis.caveats if c not in incident.caveats]
        if fresh:
            room = MAX_CAVEATS - len(incident.caveats)
            incident.caveats = incident.caveats + tuple(fresh[:room])

    def _emit(self, incident: Incident) -> None:
        if self._sink is not None:
            self._sink(incident)

    # ------------------------------------------------------------------
    # views

    def advance(self, now: float) -> List[Incident]:
        """Close active incidents idle past the gap; returns them."""
        closed = []
        with self._lock:
            for group, incident in list(self._active.items()):
                if now - incident.last_seen > self.gap_seconds:
                    incident.open = False
                    incident.revision += 1
                    self._emit(incident)
                    self._closed.append(incident)
                    del self._active[group]
                    closed.append(incident)
        return closed

    def incidents(self) -> List[Incident]:
        """Every incident (closed + active), ordered by first activity."""
        with self._lock:
            items = self._closed + list(self._active.values())
        return sorted(items, key=lambda i: (i.first_seen, i.incident_id))

    def active(self) -> List[Incident]:
        """Incidents still inside their activity window."""
        with self._lock:
            items = list(self._active.values())
        return sorted(items, key=lambda i: (i.first_seen, i.incident_id))

    def get(self, incident_id: str) -> Incident:
        """One incident by id; raises :class:`KeyError` when unknown."""
        for incident in self.incidents():
            if incident.incident_id == incident_id:
                return incident
        raise KeyError(incident_id)

    def stats(self) -> Dict[str, int]:
        """Counters for metrics surfaces."""
        with self._lock:
            return {
                "observed": self.observed,
                "deduped_reemissions": self.deduped,
                "incidents": len(self._closed) + len(self._active),
                "active": len(self._active),
            }
