"""A queryable incident store on the pluggable storage backends.

Incidents are persisted as an **append-only revision log**: every state
change the aggregator emits (new incident, new flap, window close)
lands as one record carrying the full ``grca-incident/1`` document.
Reads group by incident id and keep the highest revision — so the
store answers both "what is the incident now?" (latest revision) and
"how did it evolve?" (the revision log *is* the drill-down timeline),
with no in-place updates for backends to coordinate.

Default backend is in-memory; point :meth:`IncidentStore.sqlite` at a
directory for a durable WAL-mode SQLite log (cause / location /
incident id mirrored into indexed TEXT columns, timestamps in the
``ts`` index — the (cause, window) queries below push down to SQL).
Writes arrive from every service worker thread, which is exactly why
:class:`~repro.collector.backends.SqliteBackend` serializes its
connection internally.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from ..collector.backends import MemoryBackend, SqliteBackend, StorageBackend
from ..collector.store import Record
from .aggregate import Incident
from .serialize import incident_from_dict, incident_to_dict

#: Columns mirrored into backend indexes for query pushdown.
INDEXED_COLUMNS = ("incident_id", "cause", "location", "symptom")


class IncidentStore:
    """Persisted incident revisions with breakdown/drill-down queries."""

    def __init__(self, backend: Optional[StorageBackend] = None) -> None:
        if backend is None:
            backend = MemoryBackend(INDEXED_COLUMNS)
        self.backend = backend

    @classmethod
    def sqlite(cls, directory: str, synchronous: str = "NORMAL") -> "IncidentStore":
        """A durable store: one WAL-mode SQLite file under ``directory``."""
        return cls(
            SqliteBackend(
                "incidents",
                INDEXED_COLUMNS,
                path=os.path.join(directory, "incidents.sqlite"),
                synchronous=synchronous,
            )
        )

    # ------------------------------------------------------------------
    # writes

    def record(self, incident: Incident) -> None:
        """Append one revision; plugs into ``IncidentAggregator(sink=)``."""
        self.backend.insert(
            Record.make(
                incident.last_seen,
                incident_id=incident.incident_id,
                cause=incident.cause,
                location=str(incident.location),
                symptom=incident.symptom_name,
                revision=incident.revision,
                payload=incident_to_dict(incident),
            )
        )

    # ------------------------------------------------------------------
    # reads

    def _latest(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
        **equals: Any,
    ) -> Dict[str, Record]:
        """Highest-revision record per incident id in the window."""
        pushdown = {k: v for k, v in equals.items() if v is not None}
        latest: Dict[str, Record] = {}
        for record in self.backend.query(start, end, pushdown):
            incident_id = record["incident_id"]
            kept = latest.get(incident_id)
            if kept is None or record["revision"] > kept["revision"]:
                latest[incident_id] = record
        return latest

    def incidents(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
        cause: Optional[str] = None,
        location: Optional[str] = None,
        symptom: Optional[str] = None,
        open: Optional[bool] = None,
    ) -> List[Incident]:
        """Latest revision of every matching incident, oldest first.

        ``start``/``end`` bound the incident's *last activity* (the
        revision timestamp); ``location`` matches the rendered form,
        e.g. ``"router[nyc-per1]"``.
        """
        rows = self._latest(
            start, end, cause=cause, location=location, symptom=symptom
        )
        incidents = [incident_from_dict(r["payload"]) for r in rows.values()]
        if open is not None:
            incidents = [i for i in incidents if i.open == open]
        return sorted(incidents, key=lambda i: (i.first_seen, i.incident_id))

    def get(self, incident_id: str) -> Incident:
        """Latest revision of one incident; raises :class:`KeyError`."""
        rows = self._latest(incident_id=incident_id)
        if incident_id not in rows:
            raise KeyError(incident_id)
        return incident_from_dict(rows[incident_id]["payload"])

    def timeline(self, incident_id: str) -> List[Incident]:
        """Every persisted revision of one incident, in revision order.

        The drill-down view: how the flap count, window and confidence
        evolved as symptoms folded in.  Raises :class:`KeyError` for an
        unknown id.
        """
        rows = self.backend.query(None, None, {"incident_id": incident_id})
        if not rows:
            raise KeyError(incident_id)
        revisions = sorted(rows, key=lambda r: r["revision"])
        return [incident_from_dict(r["payload"]) for r in revisions]

    # ------------------------------------------------------------------
    # breakdowns

    def breakdown(
        self,
        bucket_seconds: float = 86400.0,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Dict[str, List[Tuple[float, int]]]:
        """Root-cause distribution over time: cause -> [(bucket, count)].

        Counts *incidents* (not raw symptoms — that view belongs to the
        Result Browser) by the bucket of their first activity.  Buckets
        floor-align to multiples of ``bucket_seconds``, pre-epoch
        timestamps landing in the bucket below, matching
        :meth:`repro.core.browser.ResultBrowser.trend`.
        """
        if bucket_seconds <= 0:
            raise ValueError(
                f"bucket_seconds must be positive, got {bucket_seconds!r}"
            )
        series: Dict[str, Dict[float, int]] = {}
        for incident in self.incidents(start, end):
            bucket = incident.first_seen - (
                incident.first_seen % bucket_seconds
            )
            per_cause = series.setdefault(incident.cause, {})
            per_cause[bucket] = per_cause.get(bucket, 0) + 1
        return {
            cause: sorted(buckets.items())
            for cause, buckets in sorted(series.items())
        }

    def top_offenders(
        self,
        limit: int = 10,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Locations ranked by total flaps (ties: incident count, name).

        The "which routers keep hurting us" view — each row carries the
        location, its incident count, summed flap count and the causes
        seen there.
        """
        per_location: Dict[str, Dict[str, Any]] = {}
        for incident in self.incidents(start, end):
            row = per_location.setdefault(
                str(incident.location),
                {"location": str(incident.location), "incidents": 0,
                 "flaps": 0, "causes": set()},
            )
            row["incidents"] += 1
            row["flaps"] += incident.flap_count
            row["causes"].add(incident.cause)
        ranked = sorted(
            per_location.values(),
            key=lambda r: (-r["flaps"], -r["incidents"], r["location"]),
        )
        return [
            {**row, "causes": sorted(row["causes"])}
            for row in ranked[: max(limit, 0)]
        ]

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._latest())

    def revisions(self) -> int:
        """Total persisted revision records (the log length)."""
        return len(self.backend)

    def close(self) -> None:
        self.backend.close()
