"""The standardized sectioned RCA report.

Renders one :class:`~repro.incident.aggregate.Incident` into the
seven-section write-up operators hand to the next shift — the template
contract in SNIPPETS.md Snippet 2 (ITrack's ``final_rca_template.md``):
numbered sections in this exact order —

1. Issue Summary, 2. Impact Analysis, 3. Root Causes, 4. Resolution,
5. Preventive Measures, 6. Supplementary Information, 7. Conclusion —

with the Conclusion always present and non-empty.  Purely a function of
the incident (no wall clock, no randomness), so the same incident
renders byte-identically — golden-tested through the CLI.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.browser import escape_markdown_cell
from ..core.reasoning.rule_based import UNKNOWN
from .aggregate import Incident

#: (cause substring, resolution, preventive measure) advice rows; first
#: match wins, the tail entry is the generic fallback.
_ADVICE: Tuple[Tuple[str, str, str], ...] = (
    (
        "maintenance",
        "Confirm the maintenance window that covered this location and "
        "verify service restoration at window close.",
        "Gate maintenance activities behind drain/verify automation so "
        "planned work cannot surface as customer-visible symptoms.",
    ),
    (
        "flap",
        "Inspect the flapping adjacency (interface errors, optics light "
        "levels, line-card state) and stabilize or shut the port.",
        "Enable dampening/hold-down on the adjacency and alarm on "
        "crossing flap-rate thresholds before sessions churn.",
    ),
    (
        "congestion",
        "Rebalance or upgrade the congested path; verify QoS marking so "
        "control traffic is not starved.",
        "Capacity-plan against observed peaks and alert on sustained "
        "utilization before loss begins.",
    ),
    (
        "cpu",
        "Identify the process driving CPU overload and throttle or "
        "restart it; verify protocol timers recovered.",
        "Set control-plane policing and CPU alarms below the level at "
        "which protocol keepalives are missed.",
    ),
    (
        UNKNOWN,
        "No automated root cause was established — escalate to manual "
        "drill-down over the raw feeds around this window.",
        "Feed the confirmed manual finding back as a new diagnosis rule "
        "so the next occurrence is classified automatically.",
    ),
    (
        "",
        "Validate the identified root cause against the device state and "
        "clear the triggering condition.",
        "Add a monitor on the root-cause signal itself so the next "
        "occurrence pages before customers notice.",
    ),
)


def _advice_for(cause: str) -> Tuple[str, str]:
    lowered = cause.lower()
    for needle, resolution, preventive in _ADVICE:
        if needle.lower() in lowered:
            return resolution, preventive
    return _ADVICE[-1][1], _ADVICE[-1][2]


def _severity(incident: Incident) -> str:
    if incident.flap_count >= 10:
        return "High"
    if incident.flap_count >= 3 or incident.is_degraded:
        return "Medium"
    return "Low"


def _span(seconds: float) -> str:
    if seconds >= 86400:
        return f"{seconds / 86400:.1f} days"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f} hours"
    if seconds >= 60:
        return f"{seconds / 60:.1f} minutes"
    return f"{seconds:.1f} seconds"


def render_incident_report(
    incident: Incident, related: Sequence[Incident] = ()
) -> str:
    """The incident as a standardized markdown RCA report (7 sections)."""
    cause = incident.cause
    location = str(incident.location)
    resolution, preventive = _advice_for(cause)
    flaps = incident.flap_count
    lines: List[str] = [
        f"# Root Cause Analysis Report (RCA) - {escape_markdown_cell(cause)}"
        f" Issue",
        "",
        "## 1. Issue Summary",
        f"- **Summary**: Symptom `{incident.symptom_name}` was observed "
        f"{flaps} time(s) at {location} over "
        f"{_span(incident.duration)} and attributed to "
        f"**{escape_markdown_cell(cause)}**.",
        f"- **Incident ID**: `{incident.incident_id}`",
        f"- **Status**: {'open' if incident.open else 'closed'} "
        f"(revision {incident.revision})",
        "",
        "## 2. Impact Analysis",
        f"- **Affected Module**: {location}",
        f"- **Severity**: {_severity(incident)}",
        f"- **Priority**: {'P1' if _severity(incident) == 'High' else 'P2'}",
        f"- **Defect Phase**: operations",
        f"- **Symptom Occurrences**: {flaps}"
        + (" (flapping)" if flaps > 1 else ""),
        f"- **Window**: {incident.first_seen:.1f} .. "
        f"{incident.last_seen:.1f} ({_span(incident.duration)})",
        f"- **Diagnosis Confidence**: mean "
        f"{incident.confidence_mean:.2f}, min {incident.confidence_min:.2f}",
    ]
    if incident.is_degraded:
        lines.append(
            f"- **Evidence Quality**: degraded — {incident.degraded_count} "
            f"diagnosis(es) drew on impaired feeds "
            f"({', '.join(incident.gap_sources) or 'unknown sources'})"
        )
    lines += [
        "",
        "## 3. Root Causes",
        f"- {escape_markdown_cell(cause)} at {location}",
    ]
    if incident.example is not None and incident.example.root_causes:
        for extra in incident.example.root_causes:
            if extra != cause:
                lines.append(
                    f"- contributing: {escape_markdown_cell(extra)}"
                )
    for caveat in incident.caveats:
        lines.append(f"- caveat: {escape_markdown_cell(caveat)}")
    lines += [
        "",
        "## 4. Resolution",
        f"- **Fix Applied**: {resolution}",
        "",
        "## 5. Preventive Measures",
        f"- **General Measure**: {preventive}",
        "",
        "## 6. Supplementary Information",
    ]
    if incident.example is not None:
        lines.append("- **Example Diagnosis Trace**:")
        lines.append("")
        lines.append("```")
        lines.append(incident.example.explain())
        lines.append("```")
    if related:
        lines.append("- **Related Incidents**:")
        lines.append("")
        lines.append("| Incident | Cause | Location | Flaps |")
        lines.append("|---|---|---|---:|")
        for other in related:
            if other.incident_id == incident.incident_id:
                continue
            lines.append(
                f"| `{other.incident_id}` "
                f"| {escape_markdown_cell(other.cause)} "
                f"| {escape_markdown_cell(str(other.location))} "
                f"| {other.flap_count} |"
            )
    if incident.example is None and not related:
        lines.append("- No supplementary records were attached.")
    conclusion = (
        f"Symptom `{incident.symptom_name}` at {location} was "
        f"{'conclusively' if cause and not cause.startswith(UNKNOWN) else 'not'}"
        f" attributed"
        + (
            f" to {escape_markdown_cell(cause)}"
            if not cause.startswith(UNKNOWN)
            else " to a known root cause"
        )
        + f" across {flaps} occurrence(s); the incident is "
        f"{'still open' if incident.open else 'closed'}. "
    )
    if flaps > 1:
        conclusion += (
            f"The {flaps} repeated occurrences were deduplicated into this "
            "single incident for triage. "
        )
    conclusion += (
        "Apply the resolution above and track the preventive measure to "
        "completion."
    )
    lines += ["", "## 7. Conclusion", conclusion, ""]
    return "\n".join(lines)


def render_incident_summary(incidents: Sequence[Incident]) -> str:
    """A fleet-level markdown digest: one table row per incident."""
    lines = [
        "# Incident summary",
        "",
        f"Incidents: **{len(incidents)}** — open: "
        f"**{sum(1 for i in incidents if i.open)}**",
        "",
        "| Incident | Symptom | Cause | Location | Flaps | Window |",
        "|---|---|---|---|---:|---|",
    ]
    for incident in incidents:
        lines.append(
            f"| `{incident.incident_id}` "
            f"| {escape_markdown_cell(incident.symptom_name)} "
            f"| {escape_markdown_cell(incident.cause)} "
            f"| {escape_markdown_cell(str(incident.location))} "
            f"| {incident.flap_count} "
            f"| {incident.first_seen:.0f}..{incident.last_seen:.0f} |"
        )
    return "\n".join(lines) + "\n"
