"""The ``grca-incident/1`` JSON schema.

The incident-layer sibling of ``grca-diagnosis/1``
(:mod:`repro.core.serialize`): a stable, strict-JSON shape for
:class:`~repro.incident.aggregate.Incident` that the HTTP gateway, the
CLI export and downstream tooling (RCA-Copilot-style LLM consumers,
PAPERS.md) all agree on.  Same design constraints as the diagnosis
schema — round-trip exact, strict JSON (non-finite floats encoded via
the shared :func:`~repro.core.serialize.encode_float` guard, NaN
included), decodable without the platform.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.serialize import (
    decode_float,
    diagnosis_from_dict,
    diagnosis_to_dict,
    encode_float,
    location_from_dict,
    location_to_dict,
)

#: Schema tag stamped on every serialized incident.
INCIDENT_SCHEMA = "grca-incident/1"


def incident_to_dict(incident) -> Dict[str, Any]:
    """One :class:`~repro.incident.aggregate.Incident` as a JSON dict."""
    document: Dict[str, Any] = {
        "schema": INCIDENT_SCHEMA,
        "incident_id": incident.incident_id,
        "symptom": incident.symptom_name,
        "cause": incident.cause,
        "location": location_to_dict(incident.location),
        "window": {
            "start": encode_float(incident.window_start),
            "first_seen": encode_float(incident.first_seen),
            "last_seen": encode_float(incident.last_seen),
            "duration": encode_float(incident.duration),
        },
        "flap_count": incident.flap_count,
        "revision": incident.revision,
        "open": incident.open,
        "confidence": {
            "mean": encode_float(incident.confidence_mean),
            "min": encode_float(incident.confidence_min),
            "total": encode_float(incident.confidence_total),
        },
        "degraded_count": incident.degraded_count,
        "gap_sources": list(incident.gap_sources),
        "caveats": list(incident.caveats),
    }
    if incident.example is not None:
        document["example"] = diagnosis_to_dict(incident.example)
    return document


def incident_from_dict(data: Dict[str, Any]):
    """Rebuild an :class:`Incident` from :func:`incident_to_dict` output.

    Raises :class:`ValueError` on any malformed payload — wrong or
    missing schema tag, truncated documents, bad embedded diagnosis —
    matching the diagnosis decoder's contract.
    """
    from .aggregate import Incident  # local import: aggregate imports this

    if not isinstance(data, dict):
        raise ValueError(
            f"incident payload must be a JSON object, got {type(data).__name__}"
        )
    schema = data.get("schema")
    if schema != INCIDENT_SCHEMA:
        raise ValueError(
            f"unsupported incident schema {schema!r}; "
            f"expected {INCIDENT_SCHEMA!r}"
        )
    try:
        window = data["window"]
        confidence = data["confidence"]
        example = None
        if data.get("example") is not None:
            example = diagnosis_from_dict(data["example"])
        return Incident(
            incident_id=data["incident_id"],
            symptom_name=data["symptom"],
            cause=data["cause"],
            location=location_from_dict(data["location"]),
            window_start=decode_float(window["start"]),
            first_seen=decode_float(window["first_seen"]),
            last_seen=decode_float(window["last_seen"]),
            flap_count=int(data["flap_count"]),
            revision=int(data["revision"]),
            open=bool(data["open"]),
            confidence_total=decode_float(confidence["total"]),
            confidence_min=decode_float(confidence["min"]),
            degraded_count=int(data.get("degraded_count", 0)),
            gap_sources=tuple(data.get("gap_sources", [])),
            caveats=tuple(data.get("caveats", [])),
            example=example,
        )
    except ValueError:
        raise
    except (KeyError, IndexError, TypeError) as exc:
        raise ValueError(
            f"malformed {INCIDENT_SCHEMA} payload: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
