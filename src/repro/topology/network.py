"""Topology container with the lookups the spatial model needs.

The :class:`Network` holds the full inventory of elements and provides
the cross-layer conversions described in Section II-B of the paper:

* interface -> owning router, line card, attached logical link;
* logical link -> physical links -> layer-1 devices (via the layer-1
  inventory);
* /30 subnet -> logical link and its two routers;
* router -> line cards -> interfaces (containment parsed from configs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .elements import (
    CdnServer,
    Interface,
    Layer1Device,
    LineCard,
    LogicalLink,
    PhysicalLink,
    Pop,
    Router,
    RouterRole,
)


class TopologyError(KeyError):
    """Raised when a lookup references an element the topology lacks."""


class Network:
    """Inventory of routers, links and layer-1 devices with fast lookups."""

    def __init__(self) -> None:
        self.pops: Dict[str, Pop] = {}
        self.routers: Dict[str, Router] = {}
        self.logical_links: Dict[str, LogicalLink] = {}
        self.physical_links: Dict[str, PhysicalLink] = {}
        self.layer1_devices: Dict[str, Layer1Device] = {}
        self.cdn_servers: Dict[str, CdnServer] = {}
        # physical link name -> ordered layer-1 devices it traverses
        self._layer1_path: Dict[str, Tuple[str, ...]] = {}
        # "router:interface" -> logical link name
        self._link_by_interface: Dict[str, str] = {}
        # subnet string -> logical link name
        self._link_by_subnet: Dict[str, str] = {}
        # ip address -> "router:interface"
        self._interface_by_ip: Dict[str, str] = {}
        # "router:interface" -> physical link names attached
        self._phys_by_interface: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # construction

    def add_pop(self, pop: Pop) -> None:
        """Register a PoP."""
        self.pops[pop.name] = pop

    def add_router(self, router: Router) -> None:
        """Register a router (its PoP must already exist)."""
        if router.pop not in self.pops:
            raise TopologyError(f"unknown PoP {router.pop!r} for router {router.name!r}")
        self.routers[router.name] = router
        for iface in router.interfaces:
            if iface.ip_address:
                self._interface_by_ip[iface.ip_address] = iface.fqname

    def add_layer1_device(self, device: Layer1Device) -> None:
        """Register a layer-1 transport device."""
        self.layer1_devices[device.name] = device

    def add_physical_link(
        self, link: PhysicalLink, layer1_path: Iterable[str] = ()
    ) -> None:
        """Register a physical circuit and the layer-1 devices it rides."""
        path = tuple(layer1_path)
        for device in path:
            if device not in self.layer1_devices:
                raise TopologyError(f"unknown layer-1 device {device!r}")
        self.physical_links[link.name] = link
        self._layer1_path[link.name] = path
        for endpoint in link.endpoints:
            self._phys_by_interface.setdefault(endpoint, []).append(link.name)

    def add_logical_link(self, link: LogicalLink) -> None:
        """Register a logical link and index its endpoints."""
        for router in link.routers:
            if router not in self.routers:
                raise TopologyError(f"unknown router {router!r} for link {link.name!r}")
        for phys in link.physical_links:
            if phys not in self.physical_links:
                raise TopologyError(f"unknown physical link {phys!r} for {link.name!r}")
        self.logical_links[link.name] = link
        self._link_by_interface[link.interface_a] = link.name
        self._link_by_interface[link.interface_z] = link.name
        if link.subnet:
            self._link_by_subnet[link.subnet] = link.name

    def add_cdn_server(self, server: CdnServer) -> None:
        """Register a CDN server behind its attachment router."""
        if server.attached_router not in self.routers:
            raise TopologyError(
                f"unknown router {server.attached_router!r} for CDN server {server.name!r}"
            )
        self.cdn_servers[server.name] = server

    # ------------------------------------------------------------------
    # element lookups

    def router(self, name: str) -> Router:
        """Look up a router by name."""
        try:
            return self.routers[name]
        except KeyError:
            raise TopologyError(f"unknown router {name!r}") from None

    def interface(self, fqname: str) -> Interface:
        """Resolve a fully qualified ``router:interface`` identifier."""
        router_name, _, if_name = fqname.partition(":")
        router = self.router(router_name)
        try:
            return router.interface(if_name)
        except KeyError:
            raise TopologyError(f"unknown interface {fqname!r}") from None

    def line_card(self, fqname: str) -> LineCard:
        """Resolve ``router:slotN`` to a line card."""
        router_name, _, slot_part = fqname.partition(":")
        router = self.router(router_name)
        if not slot_part.startswith("slot"):
            raise TopologyError(f"bad line-card identifier {fqname!r}")
        slot = int(slot_part[len("slot"):])
        for card in router.line_cards:
            if card.slot == slot:
                return card
        raise TopologyError(f"unknown line card {fqname!r}")

    def logical_link(self, name: str) -> LogicalLink:
        """Look up a logical link by name."""
        try:
            return self.logical_links[name]
        except KeyError:
            raise TopologyError(f"unknown logical link {name!r}") from None

    def physical_link(self, name: str) -> PhysicalLink:
        """Look up a physical circuit by name."""
        try:
            return self.physical_links[name]
        except KeyError:
            raise TopologyError(f"unknown physical link {name!r}") from None

    # ------------------------------------------------------------------
    # cross-layer conversions (Section II-B)

    def link_of_interface(self, fqname: str) -> Optional[LogicalLink]:
        """The logical link attached to an interface, if any.

        Customer-facing interfaces have no in-network logical link and
        yield ``None``.
        """
        name = self._link_by_interface.get(fqname)
        return self.logical_links[name] if name else None

    def link_by_subnet(self, subnet: str) -> Optional[LogicalLink]:
        """Associate a /30 subnet with its point-to-point logical link."""
        name = self._link_by_subnet.get(subnet)
        return self.logical_links[name] if name else None

    def interface_by_ip(self, ip_address: str) -> Optional[Interface]:
        """The interface holding an IP address, if any."""
        fqname = self._interface_by_ip.get(ip_address)
        return self.interface(fqname) if fqname else None

    def physical_links_of_interface(self, fqname: str) -> List[PhysicalLink]:
        """Physical circuits terminating on an interface.

        Unlike :meth:`link_of_interface`, this also covers access
        circuits (customer attachments) that carry no OSPF logical link.
        """
        return [
            self.physical_links[name]
            for name in self._phys_by_interface.get(fqname, [])
        ]

    def layer1_path(self, physical_link: str) -> Tuple[str, ...]:
        """Layer-1 devices traversed by a physical circuit."""
        if physical_link not in self.physical_links:
            raise TopologyError(f"unknown physical link {physical_link!r}")
        return self._layer1_path.get(physical_link, ())

    def layer1_devices_of_logical(self, logical_link: str) -> Tuple[str, ...]:
        """All layer-1 devices under any physical member of a logical link."""
        link = self.logical_link(logical_link)
        devices: List[str] = []
        for phys in link.physical_links:
            for device in self.layer1_path(phys):
                if device not in devices:
                    devices.append(device)
        return tuple(devices)

    def physical_links_riding(self, layer1_device: str) -> List[PhysicalLink]:
        """Physical circuits that traverse a given layer-1 device."""
        return [
            self.physical_links[name]
            for name, path in self._layer1_path.items()
            if layer1_device in path
        ]

    def logical_links_riding(self, layer1_device: str) -> List[LogicalLink]:
        """Logical links whose physical members traverse a layer-1 device."""
        riding = {link.name for link in self.physical_links_riding(layer1_device)}
        return [
            link
            for link in self.logical_links.values()
            if any(phys in riding for phys in link.physical_links)
        ]

    def logical_links_of_router(self, router: str) -> List[LogicalLink]:
        """All logical links with the router as an endpoint."""
        return [
            link for link in self.logical_links.values() if router in link.routers
        ]

    def routers_by_role(self, role: RouterRole) -> List[Router]:
        """All routers with a given role."""
        return [r for r in self.routers.values() if r.role is role]

    def uplinks_of(self, per_router: str) -> List[LogicalLink]:
        """Uplinks of an edge router: its links towards core routers."""
        uplinks = []
        for link in self.logical_links_of_router(per_router):
            other = link.other_router(per_router)
            if self.router(other).role is RouterRole.CORE:
                uplinks.append(link)
        return uplinks

    def pop_of(self, router: str) -> Pop:
        """The PoP a router lives in."""
        return self.pops[self.router(router).pop]

    def validate(self) -> None:
        """Check referential integrity of the whole inventory."""
        for link in self.logical_links.values():
            self.interface(link.interface_a)
            self.interface(link.interface_z)
        for link in self.physical_links.values():
            self.interface(link.interface_a)
            self.interface(link.interface_z)
        for router in self.routers.values():
            slots = {card.slot for card in router.line_cards}
            for iface in router.interfaces:
                if iface.slot not in slots:
                    raise TopologyError(
                        f"interface {iface.fqname!r} references missing slot "
                        f"{iface.slot} on {router.name!r}"
                    )
