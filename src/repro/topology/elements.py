"""Network element model.

These classes mirror the element kinds of the paper's spatial model
(Fig. 2): routers containing line cards containing interfaces, logical
(layer-3) links riding one or more physical links for redundancy/capacity
(SONET APS, MLPPP bundles), and physical links traversing layer-1 devices
(SONET rings, optical mesh nodes).

All elements are identified by stable string names so that locations in
event records (which arrive as text from syslog/SNMP/etc.) can be resolved
against the topology.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class RouterRole(enum.Enum):
    """Functional role of a router in a tier-1 ISP network."""

    CORE = "core"  # backbone router inside a PoP
    PROVIDER_EDGE = "per"  # provider edge router (customer attachment)
    CUSTOMER = "cr"  # customer router, outside the provider's control
    PEER = "peer"  # peering router towards another ISP
    ROUTE_REFLECTOR = "rr"  # iBGP route reflector


class Layer1Kind(enum.Enum):
    """Kind of layer-1 transport a physical link rides on."""

    SONET = "sonet"
    OPTICAL_MESH = "optical-mesh"
    ETHERNET = "ethernet"  # direct fiber, no restorable layer-1 network


@dataclass(frozen=True)
class Interface:
    """A router interface (port).

    ``name`` is unique within its router (e.g. ``se1/0``); the globally
    unique identifier is ``"<router>:<name>"`` (see :meth:`fqname`).
    """

    router: str
    name: str
    slot: int  # line-card slot the interface lives on
    ip_address: Optional[str] = None  # /30 endpoint address, if numbered
    description: str = ""

    @property
    def fqname(self) -> str:
        """Globally unique ``router:interface`` identifier."""
        return f"{self.router}:{self.name}"


@dataclass(frozen=True)
class LineCard:
    """A line card installed in a router slot."""

    router: str
    slot: int
    model: str = "generic-linecard"

    @property
    def fqname(self) -> str:
        return f"{self.router}:slot{self.slot}"


@dataclass
class Router:
    """A router with its line cards and interfaces."""

    name: str
    role: RouterRole
    pop: str
    loopback: str = ""
    timezone: str = "UTC"
    vendor: str = "generic"
    line_cards: List[LineCard] = field(default_factory=list)
    interfaces: List[Interface] = field(default_factory=list)

    def interface(self, if_name: str) -> Interface:
        """Return the interface called ``if_name`` on this router."""
        for iface in self.interfaces:
            if iface.name == if_name:
                return iface
        raise KeyError(f"no interface {if_name!r} on router {self.name!r}")

    def interfaces_on_slot(self, slot: int) -> List[Interface]:
        """All interfaces hosted by the line card in ``slot``."""
        return [iface for iface in self.interfaces if iface.slot == slot]


@dataclass(frozen=True)
class PhysicalLink:
    """A physical circuit between two interfaces.

    A physical link traverses zero or more layer-1 devices (SONET ADMs or
    optical-mesh nodes), recorded in the layer-1 inventory database.
    """

    name: str  # circuit identifier, e.g. "c-nyc1-chi1-0"
    interface_a: str  # fully qualified "router:interface"
    interface_z: str
    layer1_kind: Layer1Kind = Layer1Kind.ETHERNET

    @property
    def endpoints(self) -> Tuple[str, str]:
        return (self.interface_a, self.interface_z)


@dataclass(frozen=True)
class LogicalLink:
    """A layer-3 (routed) adjacency between two routers.

    A logical link maps to one or more physical links (APS protection
    pairs or MLPPP bundle members).  The OSPF topology is built from
    logical links; physical links and layer-1 devices enter only through
    the cross-layer mapping used for spatial correlation.
    """

    name: str  # e.g. "nyc-cr1--chi-cr1"
    router_a: str
    router_z: str
    interface_a: str  # fully qualified
    interface_z: str
    physical_links: Tuple[str, ...] = ()
    subnet: str = ""  # the /30 the endpoints live in, e.g. "10.1.2.0/30"

    @property
    def routers(self) -> Tuple[str, str]:
        """Routers with at least one archived snapshot."""
        return (self.router_a, self.router_z)

    def other_router(self, router: str) -> str:
        """Return the far-end router of this link relative to ``router``."""
        if router == self.router_a:
            return self.router_z
        if router == self.router_z:
            return self.router_a
        raise ValueError(f"router {router!r} is not an endpoint of {self.name!r}")


@dataclass(frozen=True)
class Layer1Device:
    """A layer-1 transport device (SONET ADM or optical-mesh node)."""

    name: str
    kind: Layer1Kind
    pop: str


@dataclass(frozen=True)
class Pop:
    """A point of presence (a city-level site)."""

    name: str
    city: str = ""
    timezone: str = "UTC"


@dataclass(frozen=True)
class CdnServer:
    """A CDN cache server hosted in a data center attached to a PoP."""

    name: str
    data_center: str
    pop: str
    attached_router: str  # the PER that fronts the data center
