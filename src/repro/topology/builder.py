"""Synthetic tier-1 ISP topology generator.

The paper evaluates G-RCA on a production tier-1 ISP backbone (600+
provider edge routers).  That topology is proprietary, so this builder
generates a structurally equivalent network:

* ``n_pops`` PoPs, each with two core (backbone) routers for redundancy;
* a partial mesh of inter-PoP backbone links between core routers, whose
  physical circuits ride SONET rings or an optical mesh (layer-1 devices
  that can perform restoration events);
* ``pers_per_pop`` provider edge routers per PoP, dual-homed to the two
  local cores via uplinks;
* ``customers_per_per`` customer routers per PER, each attached over a
  customer-facing interface with an eBGP session (outside the provider's
  trust domain, exactly the Section III-A setting);
* optional peering routers and CDN data centers on selected PoPs.

Everything is deterministic given ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .elements import (
    CdnServer,
    Interface,
    Layer1Device,
    Layer1Kind,
    LineCard,
    LogicalLink,
    PhysicalLink,
    Pop,
    Router,
    RouterRole,
)
from .network import Network

#: US-city style PoP names; cycled with numeric suffixes past the end.
_POP_NAMES = [
    "nyc", "chi", "dfw", "lax", "sea", "atl", "den", "mia",
    "bos", "phl", "stl", "phx", "msp", "slc", "iad", "sjc",
]

_TIMEZONES = {
    "nyc": "US/Eastern", "bos": "US/Eastern", "phl": "US/Eastern",
    "atl": "US/Eastern", "mia": "US/Eastern", "iad": "US/Eastern",
    "chi": "US/Central", "dfw": "US/Central", "stl": "US/Central",
    "msp": "US/Central",
    "den": "US/Mountain", "slc": "US/Mountain", "phx": "US/Mountain",
    "lax": "US/Pacific", "sea": "US/Pacific", "sjc": "US/Pacific",
}

#: Interfaces per line card in generated routers.
PORTS_PER_CARD = 4


@dataclass
class TopologyParams:
    """Knobs for the synthetic topology.

    The defaults give a small network suitable for unit tests; the
    benchmark scenarios scale ``n_pops``/``pers_per_pop``/
    ``customers_per_per`` up to approximate the paper's setting.
    """

    n_pops: int = 4
    pers_per_pop: int = 2
    customers_per_per: int = 4
    backbone_degree: int = 3  # inter-PoP neighbors per PoP (partial mesh)
    cdn_pops: Tuple[str, ...] = ()  # PoPs that host a CDN data center
    cdn_servers_per_dc: int = 4
    peering_pops: Tuple[str, ...] = ()  # PoPs with a peering router
    #: fraction of customer access circuits riding a local SONET ring /
    #: optical mesh (restorable layer-1), per PoP
    access_sonet_fraction: float = 0.15
    access_mesh_fraction: float = 0.10
    #: SONET backbone links get a second physical circuit (SONET APS
    #: protection pair — Section II-B item 5's one-logical-to-many-
    #: physical mapping)
    aps_protect_sonet: bool = True
    seed: int = 42


@dataclass
class BuiltTopology:
    """The generated network plus bookkeeping the simulator needs."""

    network: Network
    params: TopologyParams
    #: customer router name -> (per router, per-side customer-facing
    #: interface fqname, customer neighbor ip)
    customer_attachments: Dict[str, Tuple[str, str, str]] = field(default_factory=dict)
    #: per PoP: names of the two core routers
    cores_by_pop: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: route reflector router names
    route_reflectors: List[str] = field(default_factory=list)
    #: peering router -> neighbor ISP name
    peers: Dict[str, str] = field(default_factory=dict)
    #: customer router -> access layer-1 device its circuit rides, if any
    customer_layer1: Dict[str, str] = field(default_factory=dict)

    @property
    def provider_edges(self) -> List[str]:
        return [r.name for r in self.network.routers_by_role(RouterRole.PROVIDER_EDGE)]

    @property
    def customer_routers(self) -> List[str]:
        return [r.name for r in self.network.routers_by_role(RouterRole.CUSTOMER)]


class _AddressPool:
    """Hands out /30 subnets and loopback addresses deterministically."""

    def __init__(self) -> None:
        self._next_p2p = 0
        self._next_loopback = 0

    def next_p2p(self) -> Tuple[str, str, str]:
        """Return (subnet, address_a, address_z) for a point-to-point link."""
        block = self._next_p2p
        self._next_p2p += 1
        octet2, rest = divmod(block * 4, 65536)
        octet3, octet4 = divmod(rest, 256)
        base = f"10.{octet2}.{octet3}.{octet4}"
        return (
            f"{base}/30",
            f"10.{octet2}.{octet3}.{octet4 + 1}",
            f"10.{octet2}.{octet3}.{octet4 + 2}",
        )

    def next_loopback(self) -> str:
        index = self._next_loopback
        self._next_loopback += 1
        octet3, octet4 = divmod(index, 256)
        return f"192.168.{octet3}.{octet4}"


def _pop_name(index: int) -> str:
    base = _POP_NAMES[index % len(_POP_NAMES)]
    if index < len(_POP_NAMES):
        return base
    return f"{base}{index // len(_POP_NAMES) + 1}"


class TopologyBuilder:
    """Builds a :class:`BuiltTopology` from :class:`TopologyParams`."""

    def __init__(self, params: Optional[TopologyParams] = None) -> None:
        self.params = params or TopologyParams()
        self._rng = random.Random(self.params.seed)
        self._pool = _AddressPool()
        self._network = Network()
        self._built = BuiltTopology(network=self._network, params=self.params)
        self._if_counter: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def build(self) -> BuiltTopology:
        """Generate the full topology per the configured parameters."""
        pops = [_pop_name(i) for i in range(self.params.n_pops)]
        for pop in pops:
            tz = _TIMEZONES.get(pop.rstrip("0123456789"), "UTC")
            self._network.add_pop(Pop(name=pop, city=pop.upper(), timezone=tz))
        for pop in pops:
            self._build_pop(pop)
        self._build_backbone(pops)
        self._build_route_reflectors(pops)
        for pop in self.params.peering_pops:
            if pop in self._network.pops:
                self._build_peering(pop)
        for pop in self.params.cdn_pops:
            if pop in self._network.pops:
                self._build_cdn(pop)
        self._network.validate()
        return self._built

    # ------------------------------------------------------------------

    def _new_router(self, name: str, role: RouterRole, pop: str, n_cards: int) -> Router:
        router = Router(
            name=name,
            role=role,
            pop=pop,
            loopback=self._pool.next_loopback(),
            timezone=self._network.pops[pop].timezone,
        )
        router.line_cards = [
            LineCard(router=name, slot=slot) for slot in range(n_cards)
        ]
        self._if_counter[name] = 0
        self._network.add_router(router)
        return router

    def _new_interface(
        self, router: Router, ip_address: Optional[str] = None, description: str = ""
    ) -> Interface:
        index = self._if_counter[router.name]
        self._if_counter[router.name] = index + 1
        slot = index // PORTS_PER_CARD
        port = index % PORTS_PER_CARD
        if slot >= len(router.line_cards):
            router.line_cards.append(LineCard(router=router.name, slot=slot))
        iface = Interface(
            router=router.name,
            name=f"se{slot}/{port}",
            slot=slot,
            ip_address=ip_address,
            description=description,
        )
        router.interfaces.append(iface)
        if ip_address:
            self._network._interface_by_ip[ip_address] = iface.fqname
        return iface

    def _connect(
        self,
        router_a: Router,
        router_z: Router,
        layer1_kind: Layer1Kind,
        layer1_path: Tuple[str, ...] = (),
        n_physical: int = 1,
        description: str = "",
    ) -> LogicalLink:
        """Create a logical link (and its physical members) between routers."""
        subnet, addr_a, addr_z = self._pool.next_p2p()
        iface_a = self._new_interface(router_a, addr_a, description)
        iface_z = self._new_interface(router_z, addr_z, description)
        link_name = f"{router_a.name}--{router_z.name}:{subnet.split('/')[0]}"
        physical_names = []
        for member in range(n_physical):
            phys = PhysicalLink(
                name=f"c-{router_a.name}-{router_z.name}-{subnet.split('/')[0]}-{member}",
                interface_a=iface_a.fqname,
                interface_z=iface_z.fqname,
                layer1_kind=layer1_kind,
            )
            self._network.add_physical_link(phys, layer1_path)
            physical_names.append(phys.name)
        link = LogicalLink(
            name=link_name,
            router_a=router_a.name,
            router_z=router_z.name,
            interface_a=iface_a.fqname,
            interface_z=iface_z.fqname,
            physical_links=tuple(physical_names),
            subnet=subnet,
        )
        self._network.add_logical_link(link)
        return link

    # ------------------------------------------------------------------

    def _build_pop(self, pop: str) -> None:
        core1 = self._new_router(f"{pop}-cr1", RouterRole.CORE, pop, n_cards=4)
        core2 = self._new_router(f"{pop}-cr2", RouterRole.CORE, pop, n_cards=4)
        self._built.cores_by_pop[pop] = (core1.name, core2.name)
        # access layer-1 devices some customer circuits ride
        self._network.add_layer1_device(
            Layer1Device(f"adm-{pop}-acc", Layer1Kind.SONET, pop)
        )
        self._network.add_layer1_device(
            Layer1Device(f"omx-{pop}-acc", Layer1Kind.OPTICAL_MESH, pop)
        )
        # intra-PoP core interconnect rides direct fiber
        self._connect(core1, core2, Layer1Kind.ETHERNET, description="intra-pop")
        for per_index in range(1, self.params.pers_per_pop + 1):
            per = self._new_router(
                f"{pop}-per{per_index}", RouterRole.PROVIDER_EDGE, pop, n_cards=3
            )
            # dual-homed uplinks to both local cores
            self._connect(per, core1, Layer1Kind.ETHERNET, description="uplink")
            self._connect(per, core2, Layer1Kind.ETHERNET, description="uplink")
            self._attach_customers(pop, per)

    def _attach_customers(self, pop: str, per: Router) -> None:
        for cust_index in range(1, self.params.customers_per_per + 1):
            customer = self._new_router(
                f"{pop}-{per.name.split('-')[-1]}-cust{cust_index}",
                RouterRole.CUSTOMER,
                pop,
                n_cards=1,
            )
            subnet, addr_per, addr_cust = self._pool.next_p2p()
            per_iface = self._new_interface(per, addr_per, description="customer")
            cust_iface = self._new_interface(customer, addr_cust, description="to-provider")
            roll = self._rng.random()
            if roll < self.params.access_sonet_fraction:
                kind, layer1_path = Layer1Kind.SONET, (f"adm-{pop}-acc",)
            elif roll < self.params.access_sonet_fraction + self.params.access_mesh_fraction:
                kind, layer1_path = Layer1Kind.OPTICAL_MESH, (f"omx-{pop}-acc",)
            else:
                kind, layer1_path = Layer1Kind.ETHERNET, ()
            phys = PhysicalLink(
                name=f"c-{per.name}-{customer.name}",
                interface_a=per_iface.fqname,
                interface_z=cust_iface.fqname,
                layer1_kind=kind,
            )
            self._network.add_physical_link(phys, layer1_path)
            if layer1_path:
                self._built.customer_layer1[customer.name] = layer1_path[0]
            # Customer attachments are access circuits, not OSPF links, so
            # they are tracked separately from the logical-link table.
            self._built.customer_attachments[customer.name] = (
                per.name,
                per_iface.fqname,
                addr_cust,
            )

    def _build_backbone(self, pops: List[str]) -> None:
        """Partial mesh between PoPs; circuits ride SONET/optical layer-1."""
        n = len(pops)
        connected = set()

        def link_pops(pop_a: str, pop_b: str) -> None:
            key = tuple(sorted((pop_a, pop_b)))
            if key in connected or pop_a == pop_b:
                return
            connected.add(key)
            kind = (
                Layer1Kind.SONET
                if self._rng.random() < 0.5
                else Layer1Kind.OPTICAL_MESH
            )
            prefix = "adm" if kind is Layer1Kind.SONET else "omx"
            device_a = Layer1Device(f"{prefix}-{pop_a}-{pop_b}-1", kind, pop_a)
            device_b = Layer1Device(f"{prefix}-{pop_a}-{pop_b}-2", kind, pop_b)
            self._network.add_layer1_device(device_a)
            self._network.add_layer1_device(device_b)
            n_physical = (
                2
                if kind is Layer1Kind.SONET and self.params.aps_protect_sonet
                else 1
            )
            core_a = self._network.router(self._built.cores_by_pop[pop_a][0])
            core_z = self._network.router(self._built.cores_by_pop[pop_b][0])
            self._connect(
                core_a,
                core_z,
                kind,
                layer1_path=(device_a.name, device_b.name),
                n_physical=n_physical,
                description="backbone",
            )
            # redundant circuit between the second cores, same layer-1 pair
            core_a2 = self._network.router(self._built.cores_by_pop[pop_a][1])
            core_z2 = self._network.router(self._built.cores_by_pop[pop_b][1])
            self._connect(
                core_a2,
                core_z2,
                kind,
                layer1_path=(device_a.name, device_b.name),
                n_physical=n_physical,
                description="backbone",
            )

        # ring for guaranteed connectivity, then random chords
        for i in range(n):
            link_pops(pops[i], pops[(i + 1) % n])
        extra = max(0, self.params.backbone_degree - 2)
        for pop in pops:
            others = [p for p in pops if p != pop]
            self._rng.shuffle(others)
            for target in others[:extra]:
                link_pops(pop, target)

    def _build_route_reflectors(self, pops: List[str]) -> None:
        """Two route reflectors in the first two PoPs (or one PoP if tiny)."""
        rr_pops = pops[:2] if len(pops) >= 2 else pops
        for index, pop in enumerate(rr_pops, start=1):
            rr = self._new_router(f"rr{index}", RouterRole.ROUTE_REFLECTOR, pop, n_cards=1)
            core = self._network.router(self._built.cores_by_pop[pop][0])
            self._connect(rr, core, Layer1Kind.ETHERNET, description="rr-attach")
            self._built.route_reflectors.append(rr.name)

    def _build_peering(self, pop: str) -> None:
        peer = self._new_router(f"{pop}-peer1", RouterRole.PEER, pop, n_cards=2)
        for core_name in self._built.cores_by_pop[pop]:
            core = self._network.router(core_name)
            self._connect(peer, core, Layer1Kind.ETHERNET, description="peer-uplink")
        self._built.peers[peer.name] = f"isp-{pop}"

    def _build_cdn(self, pop: str) -> None:
        dc = f"dc-{pop}"
        per_name = f"{pop}-per1"
        if per_name not in self._network.routers:
            return
        for index in range(1, self.params.cdn_servers_per_dc + 1):
            self._network.add_cdn_server(
                CdnServer(
                    name=f"{dc}-srv{index}",
                    data_center=dc,
                    pop=pop,
                    attached_router=per_name,
                )
            )


def build_topology(params: Optional[TopologyParams] = None) -> BuiltTopology:
    """Convenience wrapper: ``TopologyBuilder(params).build()``."""
    return TopologyBuilder(params).build()
