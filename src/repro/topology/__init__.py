"""Synthetic tier-1 ISP topology substrate.

Provides the element model (routers, line cards, interfaces, logical and
physical links, layer-1 devices), the :class:`Network` container with the
cross-layer lookups of the paper's Fig. 2, a deterministic topology
generator, router-config rendering/parsing, and the layer-1 inventory
database facade.
"""

from .builder import BuiltTopology, TopologyBuilder, TopologyParams, build_topology
from .config_parser import (
    ConfigArchive,
    ParsedConfig,
    parse_config,
    render_config,
    snapshot_network,
)
from .elements import (
    CdnServer,
    Interface,
    Layer1Device,
    Layer1Kind,
    LineCard,
    LogicalLink,
    PhysicalLink,
    Pop,
    Router,
    RouterRole,
)
from .inventory import CircuitRecord, Layer1Inventory
from .network import Network, TopologyError

__all__ = [
    "BuiltTopology",
    "CdnServer",
    "CircuitRecord",
    "ConfigArchive",
    "Interface",
    "Layer1Device",
    "Layer1Inventory",
    "Layer1Kind",
    "LineCard",
    "LogicalLink",
    "Network",
    "ParsedConfig",
    "PhysicalLink",
    "Pop",
    "Router",
    "RouterRole",
    "TopologyBuilder",
    "TopologyError",
    "TopologyParams",
    "build_topology",
    "parse_config",
    "render_config",
    "snapshot_network",
]
