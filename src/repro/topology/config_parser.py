"""Router configuration snapshots: rendering and parsing.

G-RCA "parses daily router configuration snapshots" (Section II-B) to
learn (a) router -> line-card -> interface containment, (b) interface IP
addresses and the /30 networks that associate point-to-point links with
their attached routers, (c) logical-to-physical mappings such as MLPPP
bundles and SONET APS pairs, and (d) BGP neighbor and route-reflector
client configuration.

Since production configs are proprietary, this module also contains the
*renderer* that produces Cisco-IOS-flavoured snapshots from the synthetic
topology; the parser then recovers the mappings from the text exactly the
way the deployed system does — so the parse path is exercised end to end
rather than short-circuited through in-memory objects.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .builder import BuiltTopology
from .elements import Router, RouterRole


@dataclass
class BgpNeighborConfig:
    """One ``neighbor`` stanza of a BGP configuration."""

    neighbor_ip: str
    remote_as: int
    description: str = ""
    route_reflector_client: bool = False


@dataclass
class ParsedInterface:
    name: str
    ip_address: Optional[str] = None
    prefix_len: Optional[int] = None
    description: str = ""
    bundle: Optional[str] = None  # MLPPP bundle name, if a member


@dataclass
class ParsedConfig:
    """Everything the conversion utilities need from one router's config."""

    hostname: str = ""
    timezone: str = "UTC"
    interfaces: Dict[str, ParsedInterface] = field(default_factory=dict)
    bgp_asn: Optional[int] = None
    bgp_neighbors: List[BgpNeighborConfig] = field(default_factory=list)

    @property
    def slot_of(self) -> Dict[str, int]:
        """Interface name -> line card slot, from ``seS/P`` naming."""
        result = {}
        for name in self.interfaces:
            match = re.match(r"[a-z]+(\d+)/(\d+)", name)
            if match:
                result[name] = int(match.group(1))
        return result

    def neighbor_interface(self, neighbor_ip: str) -> Optional[str]:
        """Map a BGP neighbor IP to the local interface on its /30.

        This is the "Router:NeighborIP -> Interface" conversion of
        Section II-B, item 2.
        """
        neighbor_value = _ip_to_int(neighbor_ip)
        if neighbor_value is None:
            return None
        for iface in self.interfaces.values():
            if iface.ip_address is None or iface.prefix_len is None:
                continue
            local = _ip_to_int(iface.ip_address)
            if local is None:
                continue
            mask = ((1 << 32) - 1) ^ ((1 << (32 - iface.prefix_len)) - 1)
            if (local & mask) == (neighbor_value & mask):
                return iface.name
        return None


def _ip_to_int(address: str) -> Optional[int]:
    parts = address.split(".")
    if len(parts) != 4:
        return None
    try:
        octets = [int(p) for p in parts]
    except ValueError:
        return None
    if any(o < 0 or o > 255 for o in octets):
        return None
    return (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]


# ---------------------------------------------------------------------------
# rendering (synthetic substitute for collecting real configs)

PROVIDER_ASN = 7018
_CUSTOMER_ASN_BASE = 64512


def render_config(router: Router, topology: BuiltTopology) -> str:
    """Render a Cisco-IOS-style configuration snapshot for one router."""
    network = topology.network
    lines = [
        "!",
        f"hostname {router.name}",
        f"clock timezone {router.timezone}",
        "!",
    ]
    for iface in router.interfaces:
        lines.append(f"interface {iface.name}")
        if iface.description:
            lines.append(f" description {iface.description}")
        if iface.ip_address:
            lines.append(f" ip address {iface.ip_address} 255.255.255.252")
        lines.append("!")
    neighbors = _bgp_neighbors_for(router, topology)
    if neighbors:
        lines.append(f"router bgp {PROVIDER_ASN}")
        for nbr in neighbors:
            lines.append(f" neighbor {nbr.neighbor_ip} remote-as {nbr.remote_as}")
            if nbr.description:
                lines.append(f" neighbor {nbr.neighbor_ip} description {nbr.description}")
            if nbr.route_reflector_client:
                lines.append(f" neighbor {nbr.neighbor_ip} route-reflector-client")
        lines.append("!")
    del network  # topology.network retained for future per-link stanzas
    return "\n".join(lines) + "\n"


def _bgp_neighbors_for(router: Router, topology: BuiltTopology) -> List[BgpNeighborConfig]:
    neighbors: List[BgpNeighborConfig] = []
    network = topology.network
    if router.role is RouterRole.PROVIDER_EDGE:
        customer_index = 0
        for customer, (per, _iface, cust_ip) in sorted(
            topology.customer_attachments.items()
        ):
            if per != router.name:
                continue
            customer_index += 1
            neighbors.append(
                BgpNeighborConfig(
                    neighbor_ip=cust_ip,
                    remote_as=_CUSTOMER_ASN_BASE + customer_index,
                    description=f"ebgp to {customer}",
                )
            )
        for rr in topology.route_reflectors:
            neighbors.append(
                BgpNeighborConfig(
                    neighbor_ip=network.router(rr).loopback,
                    remote_as=PROVIDER_ASN,
                    description=f"ibgp to reflector {rr}",
                )
            )
    elif router.role is RouterRole.ROUTE_REFLECTOR:
        for per in topology.provider_edges:
            neighbors.append(
                BgpNeighborConfig(
                    neighbor_ip=network.router(per).loopback,
                    remote_as=PROVIDER_ASN,
                    description=f"ibgp client {per}",
                    route_reflector_client=True,
                )
            )
    return neighbors


# ---------------------------------------------------------------------------
# parsing

_HOSTNAME_RE = re.compile(r"^hostname\s+(\S+)")
_TIMEZONE_RE = re.compile(r"^clock timezone\s+(\S+)")
_INTERFACE_RE = re.compile(r"^interface\s+(\S+)")
_IP_RE = re.compile(r"^\s+ip address\s+(\S+)\s+(\S+)")
_DESCRIPTION_RE = re.compile(r"^\s+description\s+(.*)")
_BUNDLE_RE = re.compile(r"^\s+ppp multilink group\s+(\S+)")
_BGP_RE = re.compile(r"^router bgp\s+(\d+)")
_NEIGHBOR_AS_RE = re.compile(r"^\s+neighbor\s+(\S+)\s+remote-as\s+(\d+)")
_NEIGHBOR_DESC_RE = re.compile(r"^\s+neighbor\s+(\S+)\s+description\s+(.*)")
_NEIGHBOR_RRC_RE = re.compile(r"^\s+neighbor\s+(\S+)\s+route-reflector-client")


def _mask_to_prefix_len(mask: str) -> Optional[int]:
    value = _ip_to_int(mask)
    if value is None:
        return None
    return bin(value).count("1")


def parse_config(text: str) -> ParsedConfig:
    """Parse a configuration snapshot into :class:`ParsedConfig`."""
    parsed = ParsedConfig()
    current_iface: Optional[ParsedInterface] = None
    in_bgp = False
    neighbors: Dict[str, BgpNeighborConfig] = {}
    for line in text.splitlines():
        if line.strip() == "!":
            current_iface = None
            continue
        match = _HOSTNAME_RE.match(line)
        if match:
            parsed.hostname = match.group(1)
            continue
        match = _TIMEZONE_RE.match(line)
        if match:
            parsed.timezone = match.group(1)
            continue
        match = _INTERFACE_RE.match(line)
        if match:
            current_iface = ParsedInterface(name=match.group(1))
            parsed.interfaces[current_iface.name] = current_iface
            in_bgp = False
            continue
        match = _BGP_RE.match(line)
        if match:
            parsed.bgp_asn = int(match.group(1))
            in_bgp = True
            current_iface = None
            continue
        if current_iface is not None:
            match = _IP_RE.match(line)
            if match:
                current_iface.ip_address = match.group(1)
                current_iface.prefix_len = _mask_to_prefix_len(match.group(2))
                continue
            match = _DESCRIPTION_RE.match(line)
            if match:
                current_iface.description = match.group(1).strip()
                continue
            match = _BUNDLE_RE.match(line)
            if match:
                current_iface.bundle = match.group(1)
                continue
        if in_bgp:
            match = _NEIGHBOR_AS_RE.match(line)
            if match:
                ip, asn = match.group(1), int(match.group(2))
                neighbors.setdefault(ip, BgpNeighborConfig(ip, asn)).remote_as = asn
                continue
            match = _NEIGHBOR_DESC_RE.match(line)
            if match:
                ip = match.group(1)
                neighbors.setdefault(ip, BgpNeighborConfig(ip, 0)).description = (
                    match.group(2).strip()
                )
                continue
            match = _NEIGHBOR_RRC_RE.match(line)
            if match:
                ip = match.group(1)
                neighbors.setdefault(ip, BgpNeighborConfig(ip, 0)).route_reflector_client = True
                continue
    parsed.bgp_neighbors = list(neighbors.values())
    return parsed


class ConfigArchive:
    """Daily archive of parsed configuration snapshots, by router.

    G-RCA extracts "the reflectors that feed the ingress router" and the
    containment model from "the daily archive of router configurations";
    this class is that archive.  Snapshots are keyed by (router, day) and
    queries return the latest snapshot at or before the requested time.
    """

    def __init__(self) -> None:
        self._snapshots: Dict[str, List[Tuple[float, ParsedConfig]]] = {}
        #: bumped on every archived snapshot; config-dependent spatial
        #: resolutions (Router:NeighborIP lookups) cache against it
        self.generation = 0

    def add_snapshot(self, router: str, timestamp: float, text: str) -> ParsedConfig:
        """Parse and archive one config snapshot for a router."""
        parsed = parse_config(text)
        self._snapshots.setdefault(router, []).append((timestamp, parsed))
        self._snapshots[router].sort(key=lambda item: item[0])
        self.generation += 1
        return parsed

    def config_at(self, router: str, timestamp: float) -> Optional[ParsedConfig]:
        """Latest parsed config at or before ``timestamp``."""
        best: Optional[ParsedConfig] = None
        for snap_time, parsed in self._snapshots.get(router, []):
            if snap_time <= timestamp:
                best = parsed
            else:
                break
        return best

    def version_at(self, router: str, timestamp: float) -> int:
        """Number of snapshots for ``router`` at or before ``timestamp``.

        Two instants with the same version resolve to the same parsed
        config, so config-dependent caches can key on it.
        """
        count = 0
        for snap_time, _ in self._snapshots.get(router, []):
            if snap_time > timestamp:
                break
            count += 1
        return count

    def routers(self) -> List[str]:
        """Routers with at least one archived snapshot."""
        return sorted(self._snapshots)


def snapshot_network(topology: BuiltTopology, timestamp: float) -> ConfigArchive:
    """Render-and-parse configs for every router into a fresh archive."""
    archive = ConfigArchive()
    for router in topology.network.routers.values():
        text = render_config(router, topology)
        archive.add_snapshot(router.name, timestamp, text)
    return archive
