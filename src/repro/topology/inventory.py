"""Layer-1 inventory database.

The paper (Section II-B, item 7) uses "an external database that keeps
track of layer-1 inventory" to map physical links to the layer-1 devices
in between.  This module models that external database as its own store,
decoupled from the :class:`~repro.topology.network.Network`, so the
spatial model consumes it the way G-RCA consumes the external system:
through circuit-id keyed queries that may be stale or incomplete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .network import Network


@dataclass(frozen=True)
class CircuitRecord:
    """One row of the layer-1 inventory: a circuit and its transport path."""

    circuit_id: str
    layer1_devices: Tuple[str, ...]
    kind: str


class Layer1Inventory:
    """Circuit-id -> layer-1 device path lookups, as an external database."""

    def __init__(self) -> None:
        self._records: Dict[str, CircuitRecord] = {}

    @classmethod
    def from_network(cls, network: Network) -> "Layer1Inventory":
        """Snapshot the inventory implied by a topology."""
        inventory = cls()
        for name, link in network.physical_links.items():
            inventory.add(
                CircuitRecord(
                    circuit_id=name,
                    layer1_devices=network.layer1_path(name),
                    kind=link.layer1_kind.value,
                )
            )
        return inventory

    def add(self, record: CircuitRecord) -> None:
        """Insert or replace one circuit record."""
        self._records[record.circuit_id] = record

    def devices_for(self, circuit_id: str) -> Tuple[str, ...]:
        """Layer-1 devices for a circuit; empty when unknown (stale DB)."""
        record = self._records.get(circuit_id)
        return record.layer1_devices if record else ()

    def circuits_on(self, layer1_device: str) -> List[str]:
        """All circuit ids riding a layer-1 device."""
        return [
            record.circuit_id
            for record in self._records.values()
            if layer1_device in record.layer1_devices
        ]

    def __len__(self) -> int:
        return len(self._records)
