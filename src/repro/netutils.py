"""Small IPv4 helpers shared across the library.

Kept dependency-free (no :mod:`ipaddress`) because the hot paths —
longest-prefix match during BGP egress lookup — run once per diagnostic
join and profile better on plain integers.
"""

from __future__ import annotations

from typing import Optional, Tuple


def ip_to_int(address: str) -> int:
    """Convert dotted-quad IPv4 text to an integer.

    Raises :class:`ValueError` on malformed input.
    """
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if octet < 0 or octet > 255:
            raise ValueError(f"malformed IPv4 address {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert an integer to dotted-quad IPv4 text."""
    if value < 0 or value > 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_prefix(prefix: str) -> Tuple[int, int]:
    """Parse ``"a.b.c.d/len"`` into ``(network_int, prefix_len)``."""
    address, _, len_part = prefix.partition("/")
    if not len_part:
        raise ValueError(f"prefix {prefix!r} lacks a /len")
    prefix_len = int(len_part)
    if prefix_len < 0 or prefix_len > 32:
        raise ValueError(f"prefix length out of range in {prefix!r}")
    network = ip_to_int(address) & prefix_mask(prefix_len)
    return network, prefix_len


def prefix_mask(prefix_len: int) -> int:
    """Netmask integer for a prefix length."""
    if prefix_len == 0:
        return 0
    return ((1 << prefix_len) - 1) << (32 - prefix_len)


def prefix_contains(prefix: str, address: str) -> bool:
    """True when ``address`` falls inside ``prefix``."""
    network, prefix_len = parse_prefix(prefix)
    return (ip_to_int(address) & prefix_mask(prefix_len)) == network


def longest_prefix_match(prefixes, address: str) -> Optional[str]:
    """Return the most specific prefix covering ``address``, or ``None``."""
    value = ip_to_int(address)
    best: Optional[str] = None
    best_len = -1
    for prefix in prefixes:
        network, prefix_len = parse_prefix(prefix)
        if prefix_len > best_len and (value & prefix_mask(prefix_len)) == network:
            best = prefix
            best_len = prefix_len
    return best
