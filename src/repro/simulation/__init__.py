"""Synthetic network simulator: the substitution layer for the paper's
proprietary production traces (see DESIGN.md section 2).

Telemetry emission, causal fault injection with ground truth, and the
evaluation scenarios behind every reproduced table and figure.
"""

from .faults import FaultInjector, FeedFault, FeedFaultInjector, GroundTruth
from .scenarios import (
    PROBE_LOSS_MIXTURE,
    SimulationResult,
    TABLE4_MIXTURE,
    TABLE6_MIXTURE,
    TABLE8_MIXTURE,
    backbone_probe_month,
    bgp_flap_storm,
    bgp_month,
    cdn_month,
    cpu_bgp_study,
    linecard_crash,
    pim_fortnight,
)
from .telemetry import BASE_EPOCH, BGP_HOLD_TIMER, TelemetryBuffers, TelemetryEmitter

__all__ = [
    "BASE_EPOCH",
    "BGP_HOLD_TIMER",
    "FaultInjector",
    "FeedFault",
    "FeedFaultInjector",
    "GroundTruth",
    "SimulationResult",
    "TABLE4_MIXTURE",
    "TABLE6_MIXTURE",
    "TABLE8_MIXTURE",
    "PROBE_LOSS_MIXTURE",
    "TelemetryBuffers",
    "TelemetryEmitter",
    "backbone_probe_month",
    "bgp_flap_storm",
    "bgp_month",
    "cdn_month",
    "cpu_bgp_study",
    "linecard_crash",
    "pim_fortnight",
]
