"""Telemetry emission: raw feed lines from simulated network behaviour.

This is the substitution layer for the paper's proprietary data (see
DESIGN.md): instead of production routers, a :class:`TelemetryEmitter`
produces the *raw text* each data source would carry — syslog lines in
each device's local time zone, SNMP poller rows, OSPFMon updates,
BGP-monitor updates, TACACS command logs, layer-1 device logs,
performance measurements, NetFlow samples, workflow logs and CDN server
logs.  Everything then flows through the real Data Collector parsers, so
the full normalization pipeline is exercised.

Timestamp noise (a few seconds of jitter on syslog) models the paper's
"inaccuracy and uncertainty in the timing of network measurements".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..collector import DataCollector
from ..collector.sources.bgpmon import render_bgpmon_row
from ..collector.sources.misc import (
    render_cdn_row,
    render_layer1_row,
    render_netflow_row,
    render_perfmon_row,
    render_tacacs_row,
    render_workflow_row,
)
from ..collector.sources.ospfmon import render_ospfmon_row
from ..collector.sources.snmp import render_snmp_row
from ..collector.sources.syslog import render_syslog_line
from ..topology.builder import BuiltTopology

#: 2010-01-05 00:00:00 UTC — the default simulation epoch.
BASE_EPOCH = 1262649600.0

#: Default eBGP hold timer (Section II-C's 180-second cause-effect delay).
BGP_HOLD_TIMER = 180.0


class TelemetryBuffers:
    """Raw (timestamp, line) pairs per data source, flushed in time order."""

    def __init__(self) -> None:
        self._lines: Dict[str, List[Tuple[float, str]]] = {}

    def add(self, source: str, timestamp: float, line: str) -> None:
        """Buffer one raw line for a source."""
        self._lines.setdefault(source, []).append((timestamp, line))

    def sources(self) -> List[str]:
        """Buffered source names, sorted."""
        return sorted(self._lines)

    def lines(self, source: str) -> List[str]:
        """Raw lines of one source in time order."""
        return [line for _, line in sorted(self._lines.get(source, []))]

    def timed_lines(self, source: str) -> List[Tuple[float, str]]:
        """(emit time, raw line) pairs in time order — for replay."""
        return sorted(self._lines.get(source, []))

    def replay_order(self) -> List[Tuple[float, str, str]]:
        """All lines across sources as (time, source, line), time-ordered.

        This is the arrival order a streaming consumer would see.
        """
        merged = [
            (timestamp, source, line)
            for source, lines in self._lines.items()
            for timestamp, line in lines
        ]
        merged.sort(key=lambda item: (item[0], item[1]))
        return merged

    def total_lines(self) -> int:
        """Total buffered lines across sources."""
        return sum(len(v) for v in self._lines.values())

    def transform(self, source: str, fn) -> int:
        """Rewrite one source's buffered pairs through ``fn``.

        ``fn`` maps ``(timestamp, line)`` to a replacement pair, or to
        ``None`` to drop the line — the hook feed-level fault recipes
        (outage, lag, corruption) are built on.  Returns how many pairs
        were dropped or altered.
        """
        kept: List[Tuple[float, str]] = []
        changed = 0
        for timestamp, line in self._lines.get(source, []):
            out = fn(timestamp, line)
            if out is None:
                changed += 1
                continue
            if out != (timestamp, line):
                changed += 1
            kept.append(out)
        self._lines[source] = kept
        return changed

    def ingest_into(self, collector: DataCollector) -> None:
        """Feed every buffered source through the collector's parsers."""
        for source in self.sources():
            collector.ingest(source, self.lines(source))


@dataclass
class TelemetryEmitter:
    """Low- and mid-level emission primitives over a topology."""

    topology: BuiltTopology
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    buffers: TelemetryBuffers = field(default_factory=TelemetryBuffers)
    syslog_jitter: float = 2.0

    def _tz(self, router: str) -> str:
        record = self.topology.network.routers.get(router)
        return record.timezone if record else "UTC"

    def _jittered(self, timestamp: float) -> float:
        if self.syslog_jitter <= 0:
            return timestamp
        return timestamp + self.rng.uniform(-self.syslog_jitter, self.syslog_jitter)

    # ------------------------------------------------------------------
    # low-level, one raw line each

    def syslog(self, timestamp: float, router: str, code: str, message: str) -> None:
        """Emit one syslog line (device-local clock, jittered)."""
        stamped = self._jittered(timestamp)
        self.buffers.add(
            "syslog",
            stamped,
            render_syslog_line(stamped, router, self._tz(router), code, message),
        )

    def snmp(
        self, timestamp: float, router: str, metric: str, interface: str, value: float
    ) -> None:
        """Emit one SNMP poller row."""
        self.buffers.add(
            "snmp", timestamp, render_snmp_row(timestamp, router, metric, interface, value)
        )

    def ospf_weight(self, timestamp: float, link: str, weight: int) -> None:
        """Emit one OSPFMon link-weight update."""
        self.buffers.add(
            "ospfmon", timestamp, render_ospfmon_row(timestamp, link, weight)
        )

    def bgp_update(
        self,
        timestamp: float,
        kind: str,
        prefix: str,
        egress_router: str,
        local_pref: int = 100,
        as_path_len: int = 1,
    ) -> None:
        """Emit one BGP-monitor announce/withdraw row."""
        self.buffers.add(
            "bgpmon",
            timestamp,
            render_bgpmon_row(
                timestamp, kind, prefix, egress_router,
                local_pref=local_pref, as_path_len=as_path_len,
            ),
        )

    def tacacs(self, timestamp: float, router: str, user: str, command: str) -> None:
        """Emit one TACACS command-accounting row."""
        self.buffers.add(
            "tacacs", timestamp, render_tacacs_row(timestamp, router, user, command)
        )

    def layer1(self, timestamp: float, device: str, event: str, circuit: str) -> None:
        """Emit one layer-1 device log row."""
        self.buffers.add(
            "layer1", timestamp, render_layer1_row(timestamp, device, event, circuit)
        )

    def perf(
        self, timestamp: float, source: str, destination: str, metric: str, value: float
    ) -> None:
        """Emit one end-to-end performance measurement."""
        self.buffers.add(
            "perfmon",
            timestamp,
            render_perfmon_row(timestamp, source, destination, metric, value),
        )

    def netflow(
        self, timestamp: float, source: str, source_ip: str, ingress_router: str
    ) -> None:
        """Emit one NetFlow ingress-mapping sample."""
        self.buffers.add(
            "netflow",
            timestamp,
            render_netflow_row(timestamp, source, source_ip, ingress_router),
        )

    def workflow(self, timestamp: float, router: str, activity: str, detail: str) -> None:
        """Emit one provisioning/workflow log row."""
        self.buffers.add(
            "workflow",
            timestamp,
            render_workflow_row(timestamp, router, activity, detail),
        )

    def cdn(self, timestamp: float, server: str, kind: str, value) -> None:
        """Emit one CDN server-log row."""
        self.buffers.add("cdn", timestamp, render_cdn_row(timestamp, server, kind, value))

    # ------------------------------------------------------------------
    # mid-level composites (protocol-faithful message sequences)

    def interface_flap(
        self,
        t_down: float,
        interface_fq: str,
        duration: float,
        line_protocol: bool = True,
    ) -> float:
        """LINK-3-UPDOWN down/up (and line protocol follow-up); returns t_up."""
        router, _, if_name = interface_fq.partition(":")
        t_up = t_down + duration
        self.syslog(
            t_down, router, "LINK-3-UPDOWN",
            f"Interface {if_name}, changed state to down",
        )
        self.syslog(
            t_up, router, "LINK-3-UPDOWN",
            f"Interface {if_name}, changed state to up",
        )
        if line_protocol:
            self.line_protocol_flap(t_down + 1.0, interface_fq, duration)
        return t_up

    def line_protocol_flap(
        self, t_down: float, interface_fq: str, duration: float
    ) -> float:
        """LINEPROTO-5-UPDOWN down/up pair; returns t_up."""
        router, _, if_name = interface_fq.partition(":")
        t_up = t_down + duration
        self.syslog(
            t_down, router, "LINEPROTO-5-UPDOWN",
            f"Line protocol on Interface {if_name}, changed state to down",
        )
        self.syslog(
            t_up, router, "LINEPROTO-5-UPDOWN",
            f"Line protocol on Interface {if_name}, changed state to up",
        )
        return t_up

    def ebgp_flap(
        self,
        t_down: float,
        router: str,
        neighbor_ip: str,
        duration: float = 45.0,
        reason: str = "",
    ) -> float:
        """BGP-5-ADJCHANGE Down then Up; returns the session-up time."""
        t_up = t_down + duration
        suffix = f" {reason}" if reason else ""
        self.syslog(
            t_down, router, "BGP-5-ADJCHANGE", f"neighbor {neighbor_ip} Down{suffix}"
        )
        self.syslog(t_up, router, "BGP-5-ADJCHANGE", f"neighbor {neighbor_ip} Up")
        return t_up

    def bgp_hold_timer_expiry(self, timestamp: float, router: str, neighbor_ip: str) -> None:
        """BGP NOTIFICATION: hold time expired (sent)."""
        self.syslog(
            timestamp, router, "BGP-5-NOTIFICATION",
            f"sent to neighbor {neighbor_ip} 4/0 (hold time expired) 0 bytes",
        )

    def bgp_customer_reset(self, timestamp: float, router: str, neighbor_ip: str) -> None:
        """Customer-side administrative reset -> session flap."""
        self.syslog(
            timestamp, router, "BGP-5-NOTIFICATION",
            f"received from neighbor {neighbor_ip} 6/4 (administrative reset)",
        )

    def cpu_spike(self, timestamp: float, router: str, percent: int = 96) -> None:
        """SYS-3-CPUHOG message with a CPU percentage."""
        self.syslog(
            timestamp, router, "SYS-3-CPUHOG",
            f"CPU utilization over last 5 seconds: {percent}%",
        )

    def router_restart(self, timestamp: float, router: str) -> None:
        """SYS-5-RESTART message."""
        self.syslog(timestamp, router, "SYS-5-RESTART", "System restarted")

    def pim_neighbor_change(
        self,
        timestamp: float,
        router: str,
        neighbor_ip: str,
        interface: str,
        state: str,
        vrf: Optional[str] = None,
    ) -> None:
        """PIM-5-NBRCHG message, optionally vrf-scoped."""
        vrf_part = f" (vrf {vrf})" if vrf else ""
        self.syslog(
            timestamp, router, "PIM-5-NBRCHG",
            f"neighbor {neighbor_ip} {state.upper()} on interface {interface}{vrf_part}",
        )

    def linecard_crash_msg(self, timestamp: float, router: str, slot: int) -> None:
        """OIR-3-CRASH message naming the slot."""
        self.syslog(
            timestamp, router, "OIR-3-CRASH",
            f"Line card in slot {slot} crashed and is reloading",
        )
