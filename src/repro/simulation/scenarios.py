"""Evaluation scenarios: the workloads behind every table and figure.

Each scenario builds a topology, injects a root-cause mixture (seeded
with the paper's published breakdown so the *shape* of the reproduced
table is meaningful), ingests all emitted telemetry through the real
Data Collector, and returns a :class:`SimulationResult` carrying the
ground truth for scoring.

Scale note: the paper runs on 600+ provider edge routers with several
hundred eBGP sessions each.  The scenarios default to a scaled-down
network (documented in EXPERIMENTS.md); the mixture percentages — which
determine the breakdown tables — are scale-invariant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..collector import DataCollector
from ..platform import GrcaPlatform
from ..topology.builder import BuiltTopology, TopologyParams, build_topology
from .faults import FaultInjector, FeedFaultInjector, GroundTruth
from .telemetry import BASE_EPOCH, TelemetryEmitter

DAY = 86400.0


@dataclass
class SimulationResult:
    """A fully ingested scenario plus its ground truth."""

    topology: BuiltTopology
    collector: DataCollector
    ground_truth: List[GroundTruth]
    start: float
    end: float
    #: scenario-specific extras (client maps, crash targets, ...)
    extras: Dict[str, object] = field(default_factory=dict)

    def platform(self) -> GrcaPlatform:
        """Wire a GrcaPlatform from this scenario's collected data."""
        return GrcaPlatform.from_collector(
            self.topology, self.collector, config_time=self.start - DAY
        )

    def truth_counts(self) -> Dict[str, int]:
        """Injected ground-truth symptom counts per cause."""
        counts: Dict[str, int] = {}
        for truth in self.ground_truth:
            counts[truth.cause] = counts.get(truth.cause, 0) + 1
        return counts


def _register_devices(collector: DataCollector, topology: BuiltTopology) -> None:
    for router in topology.network.routers.values():
        collector.registry.register_device(router.name, router.timezone)


class _TimePlanner:
    """Draws injection times that do not collide on the same target."""

    def __init__(self, rng: random.Random, start: float, end: float, spacing: float) -> None:
        self.rng = rng
        self.start = start
        self.end = end
        self.spacing = spacing
        self._used: Dict[str, List[float]] = {}

    def draw(self, target: str) -> float:
        for _ in range(200):
            t = self.rng.uniform(self.start, self.end)
            if all(abs(t - other) > self.spacing for other in self._used.get(target, [])):
                self._used.setdefault(target, []).append(t)
                return t
        raise RuntimeError(f"cannot place another event on {target!r}; lower the load")


def _emit_background(
    emitter: TelemetryEmitter,
    topology: BuiltTopology,
    rng: random.Random,
    start: float,
    end: float,
    cpu_interval: float = 3600.0,
) -> None:
    """Benign telemetry: normal CPU samples on every PER."""
    for per in topology.provider_edges:
        t = start + rng.uniform(0.0, cpu_interval)
        while t < end:
            emitter.snmp(t, per, "cpu_util_5min", "", rng.uniform(15.0, 55.0))
            t += cpu_interval


# ---------------------------------------------------------------------------
# Table IV: a month of eBGP flaps

#: The paper's Table IV percentages, used as the injected mixture.
TABLE4_MIXTURE: Tuple[Tuple[str, float], ...] = (
    ("Router reboot", 0.33),
    ("Customer reset session", 1.84),
    ("CPU high (average)", 0.02),
    ("CPU high (spike)", 6.44),
    ("Interface flap", 63.94),
    ("Line protocol flap", 11.15),
    ("eBGP HTE", 4.86),
    ("Regular optical mesh network restoration", 0.04),
    ("Fast optical mesh network restoration", 0.14),
    ("SONET restoration", 0.29),
    ("Unknown", 10.95),
)


def bgp_month(
    total_flaps: int = 1200,
    params: Optional[TopologyParams] = None,
    seed: int = 1001,
    duration_days: float = 30.0,
    feed_faults: Optional[Callable[[FeedFaultInjector], None]] = None,
) -> SimulationResult:
    """A month of customer eBGP flaps with the Table IV cause mixture.

    ``feed_faults``, when given, receives a :class:`FeedFaultInjector`
    after all telemetry is emitted and may degrade raw feeds (outage,
    lag, corruption) before ingestion; the injected impairment
    intervals are recorded on the collector's health registry.
    """
    params = params or TopologyParams(
        n_pops=6, pers_per_pop=3, customers_per_per=8, seed=seed
    )
    topology = build_topology(params)
    rng = random.Random(seed)
    emitter = TelemetryEmitter(topology, random.Random(seed + 1))
    injector = FaultInjector(topology, emitter, random.Random(seed + 2))
    start = BASE_EPOCH
    end = start + duration_days * DAY
    planner = _TimePlanner(rng, start + DAY * 0.05, end - DAY * 0.05, spacing=1800.0)

    customers = sorted(topology.customer_attachments)
    sonet_customers = sorted(
        c for c, d in topology.customer_layer1.items() if d.startswith("adm-")
    )
    mesh_customers = sorted(
        c for c, d in topology.customer_layer1.items() if d.startswith("omx-")
    )
    pers = topology.provider_edges

    targets = {cause: max(1, round(pct * total_flaps / 100.0)) for cause, pct in TABLE4_MIXTURE}
    plan: List[Tuple[float, str, str]] = []  # (time, cause, target)

    def customers_for(cause: str) -> Sequence[str]:
        if cause == "SONET restoration":
            return sonet_customers or customers
        if cause.endswith("optical mesh network restoration"):
            return mesh_customers or customers
        return customers

    for cause, _pct in TABLE4_MIXTURE:
        produced = 0
        while produced < targets[cause]:
            if cause == "Router reboot":
                per = rng.choice(pers)
                plan.append((planner.draw(per), cause, per))
                produced += params.customers_per_per
            else:
                customer = rng.choice(list(customers_for(cause)))
                plan.append((planner.draw(customer), cause, customer))
                produced += 1

    plan.sort()
    ground_truth: List[GroundTruth] = []
    inject = {
        "Router reboot": injector.bgp_router_reboot,
        "Customer reset session": injector.bgp_customer_reset,
        "CPU high (average)": injector.bgp_cpu_average,
        "CPU high (spike)": injector.bgp_cpu_spike,
        "Interface flap": injector.bgp_interface_flap,
        "Line protocol flap": injector.bgp_lineproto_flap,
        "eBGP HTE": injector.bgp_hte_unknown,
        "Unknown": injector.bgp_unknown,
    }
    for t, cause, target in plan:
        if cause in inject:
            ground_truth.extend(inject[cause](t, target))
        else:  # the three layer-1 restoration kinds
            ground_truth.extend(injector.bgp_layer1_restoration(t, target, cause))

    _emit_background(emitter, topology, rng, start, end)
    collector = DataCollector()
    _register_devices(collector, topology)
    feed_injector = FeedFaultInjector(emitter.buffers, random.Random(seed + 17))
    if feed_faults is not None:
        feed_faults(feed_injector)
    emitter.buffers.ingest_into(collector)
    feed_injector.apply_to_registry(collector.health)
    return SimulationResult(topology, collector, ground_truth, start, end)


def bgp_flap_storm(
    total_flaps: int = 240,
    params: Optional[TopologyParams] = None,
    seed: int = 4004,
    duration_days: float = 30.0,
    storm_customers: int = 3,
    burst_size: int = 6,
    burst_spacing: float = 900.0,
    feed_faults: Optional[Callable[[FeedFaultInjector], None]] = None,
) -> SimulationResult:
    """A month of eBGP flaps dominated by a few *flapping* attachments.

    Where :func:`bgp_month` spreads its mixture thin (one symptom per
    site per window — every diagnosis is its own incident), this
    scenario concentrates most flaps on ``storm_customers`` troubled
    attachments that flap in **bursts**: ``burst_size`` interface flaps
    ``burst_spacing`` seconds apart, burst after burst across the
    month.  The workload the incident layer exists for — hundreds of
    diagnosed symptoms that an operator should see as a handful of
    flapping incidents (dedupe by cause + location + window, flap
    counts well above 1).  A sparse background of other Table IV causes
    keeps the breakdown non-degenerate.
    """
    params = params or TopologyParams(
        n_pops=6, pers_per_pop=3, customers_per_per=8, seed=seed
    )
    topology = build_topology(params)
    rng = random.Random(seed)
    emitter = TelemetryEmitter(topology, random.Random(seed + 1))
    injector = FaultInjector(topology, emitter, random.Random(seed + 2))
    start = BASE_EPOCH
    end = start + duration_days * DAY

    customers = sorted(topology.customer_attachments)
    troubled = customers[: max(1, storm_customers)]
    burst_flaps = max(2, burst_size)
    storm_total = int(total_flaps * 0.8)
    background_total = total_flaps - storm_total

    ground_truth: List[GroundTruth] = []
    # bursts: each troubled customer flaps burst_flaps times in a row,
    # bursts rotating over the troubled set across the whole span
    n_bursts = max(1, storm_total // burst_flaps)
    span = (end - start) - DAY
    produced = 0
    for b in range(n_bursts):
        customer = troubled[b % len(troubled)]
        burst_start = start + 0.5 * DAY + (b / n_bursts) * span
        for k in range(burst_flaps):
            if produced >= storm_total:
                break
            t = burst_start + k * burst_spacing
            ground_truth.extend(injector.bgp_interface_flap(t, customer))
            produced += 1

    # sparse background mixture away from the troubled attachments
    quiet = [c for c in customers if c not in troubled] or customers
    background = (
        injector.bgp_customer_reset,
        injector.bgp_cpu_spike,
        injector.bgp_lineproto_flap,
        injector.bgp_unknown,
    )
    planner = _TimePlanner(
        rng, start + DAY * 0.05, end - DAY * 0.05, spacing=3600.0
    )
    for k in range(background_total):
        customer = rng.choice(quiet)
        inject = background[k % len(background)]
        ground_truth.extend(inject(planner.draw(customer), customer))

    ground_truth.sort(key=lambda truth: truth.time)
    _emit_background(emitter, topology, rng, start, end)
    collector = DataCollector()
    _register_devices(collector, topology)
    feed_injector = FeedFaultInjector(emitter.buffers, random.Random(seed + 17))
    if feed_faults is not None:
        feed_faults(feed_injector)
    emitter.buffers.ingest_into(collector)
    feed_injector.apply_to_registry(collector.health)
    return SimulationResult(topology, collector, ground_truth, start, end)


# ---------------------------------------------------------------------------
# Table VIII: two weeks of PIM adjacency changes

TABLE8_MIXTURE: Tuple[Tuple[str, float], ...] = (
    ("PIM Configuration change", 4.04),
    ("Router Cost In/Out", 10.34),
    ("Link Cost Out/Down", 1.50),
    ("Link Cost In/Up", 0.84),
    ("OSPF re-convergence", 10.36),
    ("Uplink PIM adjacency loss", 1.95),
    ("interface (customer facing) flap", 69.21),
    ("Unknown", 1.76),
)


def pim_fortnight(
    total_changes: int = 700,
    params: Optional[TopologyParams] = None,
    seed: int = 2002,
    duration_days: float = 14.0,
) -> SimulationResult:
    """Two weeks of MVPN PIM adjacency changes, Table VIII mixture."""
    params = params or TopologyParams(
        n_pops=6, pers_per_pop=3, customers_per_per=6, seed=seed
    )
    topology = build_topology(params)
    rng = random.Random(seed)
    emitter = TelemetryEmitter(topology, random.Random(seed + 1))
    injector = FaultInjector(topology, emitter, random.Random(seed + 2))
    start = BASE_EPOCH
    end = start + duration_days * DAY
    planner = _TimePlanner(rng, start + DAY * 0.05, end - DAY * 0.05, spacing=2400.0)

    customers = sorted(topology.customer_attachments)
    pes = topology.provider_edges
    cores = [
        router.name
        for router in topology.network.routers.values()
        if router.role.value == "core"
    ]
    backbone_links = [
        link.name
        for link in topology.network.logical_links.values()
        if link.router_a in cores and link.router_z in cores
        and topology.network.router(link.router_a).pop
        != topology.network.router(link.router_z).pop
    ]

    targets = {
        cause: max(1, round(pct * total_changes / 100.0))
        for cause, pct in TABLE8_MIXTURE
    }
    ground_truth: List[GroundTruth] = []

    # plan, sorted by time, so the injector's IGP view evolves forward
    plan: List[Tuple[float, str, str]] = []
    for cause, _pct in TABLE8_MIXTURE:
        produced = 0
        # conservative per-injection symptom estimates for planning
        per_injection = {"Router Cost In/Out": 2}.get(cause, 1)
        while produced < targets[cause]:
            if cause == "PIM Configuration change":
                target = rng.choice(pes)
            elif cause == "Router Cost In/Out":
                target = rng.choice(cores)
            elif cause in ("Link Cost Out/Down", "Link Cost In/Up", "OSPF re-convergence"):
                target = rng.choice(backbone_links)
            elif cause == "interface (customer facing) flap":
                target = rng.choice(customers)
            else:  # uplink loss / unknown
                target = rng.choice(pes)
            plan.append((planner.draw(target), cause, target))
            produced += per_injection
    plan.sort()

    inject = {
        "PIM Configuration change": injector.pim_config_change,
        "Router Cost In/Out": injector.pim_router_cost,
        "Link Cost Out/Down": injector.pim_link_cost_out,
        "Link Cost In/Up": injector.pim_link_cost_in,
        "OSPF re-convergence": injector.pim_ospf_reconvergence,
        "Uplink PIM adjacency loss": injector.pim_uplink_adjacency,
        "interface (customer facing) flap": injector.pim_customer_interface_flap,
        "Unknown": injector.pim_unknown,
    }
    counts: Dict[str, int] = {cause: 0 for cause, _ in TABLE8_MIXTURE}
    last_time = start
    for t, cause, target in plan:
        truths = inject[cause](t, target)
        counts[cause] += len(truths)
        ground_truth.extend(truths)
        last_time = max(last_time, t)

    # top-up pass: link-based injections can yield zero symptoms when no
    # PE pair crosses the chosen link at that moment; retry sequentially
    # until each cause hits its target
    t = last_time + 3600.0
    for cause, _pct in TABLE8_MIXTURE:
        attempts = 0
        while counts[cause] < targets[cause] and attempts < 50 and t < end - 600.0:
            attempts += 1
            t += 2700.0
            if cause == "PIM Configuration change":
                target = rng.choice(pes)
            elif cause == "Router Cost In/Out":
                target = rng.choice(cores)
            elif cause in ("Link Cost Out/Down", "Link Cost In/Up", "OSPF re-convergence"):
                target = rng.choice(backbone_links)
            elif cause == "interface (customer facing) flap":
                target = rng.choice(customers)
            else:
                target = rng.choice(pes)
            truths = inject[cause](t, target)
            counts[cause] += len(truths)
            ground_truth.extend(truths)

    _emit_background(emitter, topology, rng, start, end)
    collector = DataCollector()
    _register_devices(collector, topology)
    emitter.buffers.ingest_into(collector)
    return SimulationResult(topology, collector, ground_truth, start, end)


# ---------------------------------------------------------------------------
# Table VI: a month of CDN RTT degradations

TABLE6_MIXTURE: Tuple[Tuple[str, float], ...] = (
    ("CDN assignment policy change", 3.83),
    ("Egress Change due to Inter-domain routing change", 5.71),
    ("Link Congestions", 3.50),
    ("Link Loss", 3.32),
    ("Interface flap", 4.65),
    ("OSPF re-convergence", 4.16),
    ("Outside of our network (Unknown)", 74.83),
)

_RTT_INTERVAL = 1800.0


def cdn_month(
    total_degradations: int = 500,
    params: Optional[TopologyParams] = None,
    seed: int = 3003,
    duration_days: float = 30.0,
    n_clients: int = 24,
    feed_faults: Optional[Callable[[FeedFaultInjector], None]] = None,
) -> SimulationResult:
    """A month of CDN RTT degradations, Table VI mixture.

    ``feed_faults`` may degrade raw feeds before ingestion, as in
    :func:`bgp_month`.
    """
    params = params or TopologyParams(
        n_pops=5,
        pers_per_pop=2,
        customers_per_per=2,
        cdn_pops=("nyc",),
        peering_pops=("chi", "sea"),
        cdn_servers_per_dc=3,
        seed=seed,
    )
    topology = build_topology(params)
    rng = random.Random(seed)
    emitter = TelemetryEmitter(topology, random.Random(seed + 1))
    injector = FaultInjector(topology, emitter, random.Random(seed + 2))
    start = BASE_EPOCH
    end = start + duration_days * DAY

    servers = sorted(topology.network.cdn_servers)
    cdn_router = topology.network.cdn_servers[servers[0]].attached_router
    peer_pops = [p for p in params.peering_pops if p in topology.network.pops]
    egress_by_pop = {p: f"{p}-cr1" for p in peer_pops}

    # client address plan: one /24 per peering pop region, clients split
    prefixes = {p: f"198.51.{100 + i}.0/24" for i, p in enumerate(peer_pops)}
    clients: Dict[str, Tuple[str, str]] = {}  # client id -> (ip, home pop)
    for index in range(n_clients):
        pop = peer_pops[index % len(peer_pops)]
        ip = prefixes[pop].rsplit(".", 1)[0] + f".{10 + index}"
        clients[f"client-{index:03d}"] = (ip, pop)

    # announce every client prefix at its peering pop's core (the egress)
    for pop, prefix in prefixes.items():
        emitter.bgp_update(start - DAY, "A", prefix, egress_by_pop[pop])
    # netflow teaches the platform that CDN servers enter at their PER
    for server in servers:
        emitter.netflow(start - DAY, server, "203.0.113.1", cdn_router)

    # choose measured (server, client) pairs
    pairs = [(rng.choice(servers), client) for client in sorted(clients)]

    # plan fault episodes: each elevates one RTT sample per affected pair
    targets = {
        cause: max(1, round(pct * total_degradations / 100.0))
        for cause, pct in TABLE6_MIXTURE
    }
    sample_slots = int((end - start) / _RTT_INTERVAL)
    warmup_slots = 6

    def path_links(client_pop: str, t: float):
        egress = egress_by_pop[client_pop]
        return injector.paths_between(cdn_router, egress, t)

    episodes: List[Tuple[int, str, List[Tuple[str, str]]]] = []
    used_slots = set()
    ground_truth: List[GroundTruth] = []

    def draw_slot() -> int:
        for _ in range(500):
            slot = rng.randrange(warmup_slots, sample_slots - 1)
            if all(abs(slot - s) > 2 for s in used_slots):
                used_slots.add(slot)
                return slot
        raise RuntimeError("cannot place another CDN fault episode")

    def record(cause: str, slot: int, affected: List[Tuple[str, str]]) -> None:
        episodes.append((slot, cause, affected))
        t = start + slot * _RTT_INTERVAL
        for server, client in affected:
            ground_truth.append(
                GroundTruth(
                    symptom="CDN round trip time increase",
                    cause=cause,
                    time=t,
                    location=f"{server}~{clients[client][0]}",
                )
            )

    def affected_for_pop(pop: str, k: int) -> List[Tuple[str, str]]:
        pool = [(s, c) for s, c in pairs if clients[c][1] == pop]
        rng.shuffle(pool)
        return sorted(pool[:k])

    for cause, _pct in TABLE6_MIXTURE:
        produced = 0
        while produced < targets[cause]:
            slot = draw_slot()
            t = start + slot * _RTT_INTERVAL + 60.0
            pop = rng.choice(peer_pops)
            k = min(max(1, targets[cause] - produced), 4)
            affected = affected_for_pop(pop, k)
            if not affected:
                continue
            if cause == "CDN assignment policy change":
                injector.cdn_policy_change(t, servers)
            elif cause == "Egress Change due to Inter-domain routing change":
                other = [p for p in peer_pops if p != pop]
                new_egress = egress_by_pop[other[0]] if other else None
                injector.cdn_egress_change(
                    t, prefixes[pop], egress_by_pop[pop], new_egress
                )
            elif cause in ("Link Congestions", "Link Loss", "Interface flap",
                           "OSPF re-convergence"):
                paths = path_links(pop, t)
                if not paths.reachable or not paths.links:
                    continue
                link = sorted(paths.links)[0]
                if cause == "Link Congestions":
                    iface = topology.network.logical_link(link).interface_a
                    injector.cdn_link_congestion(t, iface, _RTT_INTERVAL)
                elif cause == "Link Loss":
                    iface = topology.network.logical_link(link).interface_a
                    injector.cdn_link_loss(t, iface, _RTT_INTERVAL)
                elif cause == "Interface flap":
                    injector.cdn_backbone_interface_flap(t, link)
                else:
                    injector.cdn_ospf_reconvergence(t, link)
            # "Outside of our network (Unknown)": no in-network telemetry
            record(cause, slot, affected)
            produced += len(affected)

    # generate all RTT samples in one sweep
    elevated = {}
    for slot, _cause, affected in episodes:
        for pair in affected:
            elevated.setdefault(pair, set()).add(slot)
    base_rtt = {
        pair: rng.uniform(30.0, 80.0) for pair in pairs
    }
    for pair in pairs:
        server, client = pair
        client_ip = clients[client][0]
        lifted = elevated.get(pair, set())
        for slot in range(sample_slots):
            t = start + (slot + 1) * _RTT_INTERVAL
            value = base_rtt[pair] + rng.gauss(0.0, 1.5)
            if slot in lifted:
                value *= rng.uniform(2.2, 3.5)
            emitter.perf(t, server, client_ip, "rtt_ms", max(1.0, value))

    collector = DataCollector()
    _register_devices(collector, topology)
    feed_injector = FeedFaultInjector(emitter.buffers, random.Random(seed + 17))
    if feed_faults is not None:
        feed_faults(feed_injector)
    emitter.buffers.ingest_into(collector)
    feed_injector.apply_to_registry(collector.health)
    result = SimulationResult(topology, collector, ground_truth, start, end)
    result.extras["clients"] = clients
    result.extras["pairs"] = pairs
    result.extras["rtt_interval"] = _RTT_INTERVAL
    return result


# ---------------------------------------------------------------------------
# Backbone probe losses (the introduction's motivating workload)

_PROBE_INTERVAL = 300.0

#: Cause mixture for the probe-loss scenario.  The paper publishes no
#: breakdown for this workload; the mixture makes congestion dominate so
#: the intro's "capacity augmentation" decision falls out of the data.
PROBE_LOSS_MIXTURE: Tuple[Tuple[str, float], ...] = (
    ("Link Congestions", 55.0),
    ("OSPF re-convergence", 30.0),
    ("Unknown", 15.0),
)


def backbone_probe_month(
    total_losses: int = 200,
    params: Optional[TopologyParams] = None,
    seed: int = 6006,
    duration_days: float = 30.0,
    n_probe_pairs: int = 10,
) -> SimulationResult:
    """A month of inter-PoP probe measurements with loss episodes."""
    params = params or TopologyParams(
        n_pops=5, pers_per_pop=2, customers_per_per=2, seed=seed
    )
    topology = build_topology(params)
    rng = random.Random(seed)
    emitter = TelemetryEmitter(topology, random.Random(seed + 1))
    injector = FaultInjector(topology, emitter, random.Random(seed + 2))
    start = BASE_EPOCH
    end = start + duration_days * DAY

    pers = topology.provider_edges
    pairs: List[Tuple[str, str]] = []
    while len(pairs) < n_probe_pairs:
        a, b = rng.sample(pers, 2)
        if topology.network.router(a).pop == topology.network.router(b).pop:
            continue
        if (a, b) not in pairs:
            pairs.append((a, b))

    sample_slots = int((end - start) / _PROBE_INTERVAL)
    warmup_slots = 6
    targets = {
        cause: max(1, round(pct * total_losses / 100.0))
        for cause, pct in PROBE_LOSS_MIXTURE
    }
    used_slots: set = set()
    ground_truth: List[GroundTruth] = []
    elevated: Dict[Tuple[str, str], set] = {}

    def draw_slot() -> int:
        for _ in range(2000):
            slot = rng.randrange(warmup_slots, sample_slots - 1)
            if all(abs(slot - s) > 3 for s in used_slots):
                used_slots.add(slot)
                return slot
        raise RuntimeError("cannot place another probe-loss episode")

    def crossing_pairs(link: str, t: float, limit: int) -> List[Tuple[str, str]]:
        found = []
        for a, b in pairs:
            paths = injector.paths_between(a, b, t)
            if paths.reachable and link in paths.links:
                found.append((a, b))
                if len(found) >= limit:
                    break
        return found

    for cause, _pct in PROBE_LOSS_MIXTURE:
        produced = 0
        attempts = 0
        while produced < targets[cause] and attempts < 500:
            attempts += 1
            slot = draw_slot()
            t = start + slot * _PROBE_INTERVAL + 30.0
            if cause == "Unknown":
                affected = [rng.choice(pairs)]
            else:
                pair = rng.choice(pairs)
                paths = injector.paths_between(pair[0], pair[1], t)
                if not paths.reachable or not paths.links:
                    continue
                link = sorted(paths.links)[rng.randrange(len(paths.links))]
                affected = crossing_pairs(link, t, limit=3)
                if not affected:
                    continue
                if cause == "Link Congestions":
                    iface = topology.network.logical_link(link).interface_a
                    injector.cdn_link_congestion(t, iface, _PROBE_INTERVAL)
                else:
                    injector.cdn_ospf_reconvergence(t, link, duration=200.0)
            for a, b in affected:
                elevated.setdefault((a, b), set()).add(slot)
                ground_truth.append(
                    GroundTruth(
                        symptom="In-network loss increase",
                        cause=cause,
                        time=t,
                        location=f"{a}~{b}",
                    )
                )
                produced += 1

    # one sweep of probe samples per pair
    for a, b in pairs:
        lifted = elevated.get((a, b), set())
        for slot in range(sample_slots):
            t = start + (slot + 1) * _PROBE_INTERVAL
            value = max(0.0, rng.gauss(0.05, 0.02))
            if slot in lifted:
                value = rng.uniform(2.0, 6.0)
            emitter.perf(t, a, b, "loss_pct", value)

    collector = DataCollector()
    _register_devices(collector, topology)
    emitter.buffers.ingest_into(collector)
    result = SimulationResult(topology, collector, ground_truth, start, end)
    result.extras["probe_pairs"] = pairs
    return result


# ---------------------------------------------------------------------------
# Section IV-B (Fig. 7): the provisioning-activity study

def cpu_bgp_study(
    seed: int = 4004,
    duration_days: float = 90.0,
    n_provisioning: int = 600,
    provisioning_flap_probability: float = 0.03,
    n_other_flaps: int = 3500,
    n_pure_cpu_flaps: int = 40,
    params: Optional[TopologyParams] = None,
) -> SimulationResult:
    """Three months of flaps with a hidden provisioning-induced bug.

    ``provisioning.port_turnup`` is a *routine* activity; on rare
    occasions (a router-software bug) it trips a CPU spike that times
    out customer BGP sessions.  The handful of incidents is buried among
    thousands of ordinary flaps — exactly the Section IV-B setting where
    only the prefiltered correlation test can surface the association.
    """
    params = params or TopologyParams(
        n_pops=5, pers_per_pop=3, customers_per_per=6, seed=seed
    )
    topology = build_topology(params)
    rng = random.Random(seed)
    emitter = TelemetryEmitter(topology, random.Random(seed + 1))
    injector = FaultInjector(topology, emitter, random.Random(seed + 2))
    start = BASE_EPOCH
    end = start + duration_days * DAY
    planner = _TimePlanner(rng, start + DAY * 0.05, end - DAY * 0.05, spacing=1800.0)

    customers = sorted(topology.customer_attachments)
    by_per: Dict[str, List[str]] = {}
    for customer, (per, _iface, _ip) in topology.customer_attachments.items():
        by_per.setdefault(per, []).append(customer)
    pers = sorted(by_per)

    ground_truth: List[GroundTruth] = []
    plan: List[Tuple[float, str, str]] = []

    # the buggy provisioning activity
    for _ in range(n_provisioning):
        per = rng.choice(pers)
        plan.append((planner.draw(per), "provisioning", per))
    # ordinary interface-flap noise
    for _ in range(n_other_flaps):
        customer = rng.choice(customers)
        plan.append((planner.draw(customer), "Interface flap", customer))
    # genuinely CPU-caused flaps, unrelated to provisioning
    for _ in range(n_pure_cpu_flaps):
        customer = rng.choice(customers)
        plan.append((planner.draw(customer), "CPU high (spike)", customer))
    # benign background workflow activities (candidate-universe noise)
    benign_activities = [
        "maintenance.card_swap", "audit.config_scan", "backup.config_pull",
        "qos.policy_update", "maintenance.fan_check",
    ]
    for _ in range(n_provisioning * len(benign_activities)):
        per = rng.choice(pers)
        t = rng.uniform(start, end)
        emitter.workflow(t, per, rng.choice(benign_activities), "routine")

    plan.sort()
    for t, kind, target in plan:
        if kind == "provisioning":
            emitter.workflow(t, target, "provisioning.port_turnup",
                             f"order-{rng.randint(10000, 99999)}")
            if rng.random() < provisioning_flap_probability:
                victim = rng.choice(sorted(by_per[target]))
                truths = injector.bgp_cpu_spike(t + rng.uniform(10.0, 50.0), victim)
                for truth in truths:
                    ground_truth.append(
                        GroundTruth(
                            symptom=truth.symptom,
                            cause="Provisioning-induced CPU flap",
                            time=truth.time,
                            location=truth.location,
                        )
                    )
        elif kind == "Interface flap":
            ground_truth.extend(injector.bgp_interface_flap(t, target))
        else:
            ground_truth.extend(injector.bgp_cpu_spike(t, target))

    collector = DataCollector()
    _register_devices(collector, topology)
    emitter.buffers.ingest_into(collector)
    return SimulationResult(topology, collector, ground_truth, start, end)


# ---------------------------------------------------------------------------
# Section IV-C (Fig. 8): the line-card crash study

def linecard_crash(
    seed: int = 5005,
    duration_days: float = 30.0,
    n_background_flaps: int = 120,
    params: Optional[TopologyParams] = None,
) -> SimulationResult:
    """A month of flaps on one PER plus one line-card crash episode.

    The crash flaps every customer session on one card within ~3
    minutes.  No crash signature is emitted — the root cause is
    *unobservable*, as in Section IV-C.
    """
    params = params or TopologyParams(
        n_pops=3, pers_per_pop=2, customers_per_per=10, seed=seed
    )
    topology = build_topology(params)
    rng = random.Random(seed)
    emitter = TelemetryEmitter(topology, random.Random(seed + 1))
    injector = FaultInjector(topology, emitter, random.Random(seed + 2))
    start = BASE_EPOCH
    end = start + duration_days * DAY
    planner = _TimePlanner(rng, start + DAY * 0.05, end - DAY * 0.05, spacing=1800.0)

    # pick the PER and the line card with the most customer interfaces
    per = topology.provider_edges[0]
    router = topology.network.router(per)
    customer_ifaces = {
        iface for _c, (owner, iface, _ip) in topology.customer_attachments.items()
        if owner == per
    }
    slot_counts: Dict[int, int] = {}
    for fq in customer_ifaces:
        slot = topology.network.interface(fq).slot
        slot_counts[slot] = slot_counts.get(slot, 0) + 1
    crash_slot = max(slot_counts, key=lambda s: slot_counts[s])
    del router

    ground_truth: List[GroundTruth] = []
    customers = sorted(topology.customer_attachments)
    for _ in range(n_background_flaps):
        customer = rng.choice(customers)
        ground_truth.extend(
            injector.bgp_interface_flap(planner.draw(customer), customer)
        )

    crash_time = start + duration_days * DAY / 2.0
    ground_truth.extend(injector.bgp_linecard_crash(crash_time, per, crash_slot))

    collector = DataCollector()
    _register_devices(collector, topology)
    emitter.buffers.ingest_into(collector)
    result = SimulationResult(topology, collector, ground_truth, start, end)
    result.extras["crash_router"] = per
    result.extras["crash_slot"] = crash_slot
    result.extras["crash_time"] = crash_time
    return result
