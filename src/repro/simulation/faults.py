"""Root-cause fault recipes.

Each ``inject_*`` method emits the full causal telemetry chain for one
root cause — the cause's own signature, the protocol messages it
triggers (with realistic timer delays: line protocol follows the
interface within a second; an eBGP hold-timer expiry lags the cause by
up to 180 s), and the symptom events the RCA applications will pick up.

Every injection returns the list of :class:`GroundTruth` records (one
per symptom instance it creates), which the benchmark harness compares
against the engine's diagnosed breakdown.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..collector.health import FeedState
from ..collector.sources.misc import (
    EVENT_MESH_FAST,
    EVENT_MESH_REGULAR,
    EVENT_SONET,
)
from ..routing.ospf import COST_OUT_WEIGHT, DEFAULT_WEIGHT, OspfSimulator, WeightChange, WeightHistory
from ..topology.builder import BuiltTopology
from .telemetry import BGP_HOLD_TIMER, TelemetryEmitter


@dataclass(frozen=True)
class GroundTruth:
    """What was actually injected behind one symptom instance."""

    symptom: str  # symptom event name, e.g. "eBGP flap"
    cause: str  # injected root-cause label (matches app vocabulary)
    time: float
    location: str  # free-form: session / pe pair / server:client
    detail: Tuple[Tuple[str, str], ...] = ()


class FaultInjector:
    """Stateful injector over a topology: emits telemetry + ground truth."""

    def __init__(
        self,
        topology: BuiltTopology,
        emitter: TelemetryEmitter,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.topology = topology
        self.network = topology.network
        self.emitter = emitter
        self.rng = rng or random.Random(4242)
        # the injector's own view of IGP weights, kept consistent with
        # the ospfmon rows it emits, so path-dependent injections use
        # the same paths the RCA engine will later reconstruct
        self._weight_history = WeightHistory(
            {name: DEFAULT_WEIGHT for name in self.network.logical_links}
        )
        self._ospf = OspfSimulator(self.network, self._weight_history)
        self._last_weight_time = float("-inf")

    # ------------------------------------------------------------------
    # shared helpers

    def _set_weight(self, timestamp: float, link: str, weight: int) -> None:
        self.emitter.ospf_weight(timestamp, link, weight)
        self._weight_history.record(WeightChange(timestamp, link, weight))
        if timestamp < self._last_weight_time:
            # out-of-order insert shifts history version numbering, so
            # cached SPF tables keyed by version are no longer valid
            self._ospf._spf_cache.clear()
        else:
            self._last_weight_time = timestamp

    def attachment(self, customer: str) -> Tuple[str, str, str]:
        """(per, customer-facing interface fq, neighbor ip) for a customer."""
        return self.topology.customer_attachments[customer]

    def paths_between(self, a: str, b: str, timestamp: float):
        """Current equal-cost paths in the injector's IGP view."""
        return self._ospf.paths(a, b, timestamp)

    def pe_pairs_crossing(
        self, link: str, timestamp: float, limit: int = 4
    ) -> List[Tuple[str, str]]:
        """PE pairs whose current path uses ``link``."""
        pes = self.topology.provider_edges
        pairs = []
        for i, a in enumerate(pes):
            for b in pes[i + 1 :]:
                paths = self._ospf.paths(a, b, timestamp)
                if paths.reachable and link in paths.links:
                    pairs.append((a, b))
                    if len(pairs) >= limit:
                        return pairs
        return pairs

    def pe_pairs_through_router(
        self, router: str, timestamp: float, limit: int = 4
    ) -> List[Tuple[str, str]]:
        """PE pairs whose current path transits a router."""
        pes = self.topology.provider_edges
        pairs = []
        for i, a in enumerate(pes):
            for b in pes[i + 1 :]:
                if router in (a, b):
                    continue
                paths = self._ospf.paths(a, b, timestamp)
                if paths.reachable and router in paths.routers:
                    pairs.append((a, b))
                    if len(pairs) >= limit:
                        return pairs
        return pairs

    def _flap_session(
        self, t: float, per: str, neighbor_ip: str, duration: float = 45.0
    ) -> None:
        self.emitter.ebgp_flap(t, per, neighbor_ip, duration)

    def _truth(self, symptom: str, cause: str, t: float, location: str, **detail) -> GroundTruth:
        return GroundTruth(
            symptom=symptom,
            cause=cause,
            time=t,
            location=location,
            detail=tuple(sorted((k, str(v)) for k, v in detail.items())),
        )

    # ------------------------------------------------------------------
    # BGP-flap root causes (Table IV vocabulary)

    def bgp_interface_flap(self, t: float, customer: str) -> List[GroundTruth]:
        """Customer-facing interface flap -> eBGP flap (fast fallover)."""
        per, iface, neighbor_ip = self.attachment(customer)
        duration = self.rng.uniform(5.0, 40.0)
        self.emitter.interface_flap(t, iface, duration)
        self._flap_session(t + 2.0, per, neighbor_ip, duration + 30.0)
        return [self._truth("eBGP flap", "Interface flap", t, f"{per}~{neighbor_ip}")]

    def bgp_lineproto_flap(self, t: float, customer: str) -> List[GroundTruth]:
        """Line protocol flap only -> eBGP flap via hold-timer expiry."""
        per, iface, neighbor_ip = self.attachment(customer)
        duration = self.rng.uniform(10.0, 60.0)
        self.emitter.line_protocol_flap(t, iface, duration)
        t_flap = t + BGP_HOLD_TIMER
        self.emitter.bgp_hold_timer_expiry(t_flap, per, neighbor_ip)
        self._flap_session(t_flap, per, neighbor_ip)
        return [self._truth("eBGP flap", "Line protocol flap", t_flap, f"{per}~{neighbor_ip}")]

    def bgp_cpu_spike(self, t: float, customer: str) -> List[GroundTruth]:
        """CPU spike -> hold-timer expiry -> session flap."""
        per, _iface, neighbor_ip = self.attachment(customer)
        self.emitter.cpu_spike(t, per, percent=self.rng.randint(91, 99))
        t_flap = t + self.rng.uniform(5.0, 30.0)
        self.emitter.bgp_hold_timer_expiry(t_flap, per, neighbor_ip)
        self._flap_session(t_flap, per, neighbor_ip)
        return [self._truth("eBGP flap", "CPU high (spike)", t_flap, f"{per}~{neighbor_ip}")]

    def bgp_cpu_average(self, t: float, customer: str) -> List[GroundTruth]:
        """Sustained CPU overload -> hold-timer expiry -> flap."""
        per, _iface, neighbor_ip = self.attachment(customer)
        # the 5-minute SNMP sample covering t reports the overload
        sample_t = t - (t % 300.0) + 300.0
        self.emitter.snmp(sample_t, per, "cpu_util_5min", "", self.rng.uniform(82, 95))
        t_flap = t + self.rng.uniform(5.0, 60.0)
        self.emitter.bgp_hold_timer_expiry(t_flap, per, neighbor_ip)
        self._flap_session(t_flap, per, neighbor_ip)
        return [self._truth("eBGP flap", "CPU high (average)", t_flap, f"{per}~{neighbor_ip}")]

    def bgp_customer_reset(self, t: float, customer: str) -> List[GroundTruth]:
        """Customer-side administrative reset -> session flap."""
        per, _iface, neighbor_ip = self.attachment(customer)
        self.emitter.bgp_customer_reset(t, per, neighbor_ip)
        self._flap_session(t + 1.0, per, neighbor_ip, duration=20.0)
        return [self._truth("eBGP flap", "Customer reset session", t, f"{per}~{neighbor_ip}")]

    def bgp_router_reboot(self, t: float, per: str) -> List[GroundTruth]:
        """Reboot a PER: every eBGP session on it flaps."""
        truths = []
        boot_time = t + 120.0
        self.emitter.router_restart(boot_time, per)
        for customer, (owner, iface, neighbor_ip) in sorted(
            self.topology.customer_attachments.items()
        ):
            if owner != per:
                continue
            self.emitter.interface_flap(t, iface, boot_time - t + 10.0)
            self._flap_session(t + 1.0, per, neighbor_ip, duration=boot_time - t + 60.0)
            truths.append(
                self._truth("eBGP flap", "Router reboot", t, f"{per}~{neighbor_ip}")
            )
        return truths

    def bgp_hte_unknown(self, t: float, customer: str) -> List[GroundTruth]:
        """Hold-timer expiry with no deeper observable cause."""
        per, _iface, neighbor_ip = self.attachment(customer)
        self.emitter.bgp_hold_timer_expiry(t, per, neighbor_ip)
        self._flap_session(t, per, neighbor_ip)
        return [self._truth("eBGP flap", "eBGP HTE", t, f"{per}~{neighbor_ip}")]

    def bgp_layer1_restoration(
        self, t: float, customer: str, kind: str
    ) -> List[GroundTruth]:
        """Layer-1 restoration hits a customer circuit riding it."""
        per, iface, neighbor_ip = self.attachment(customer)
        device = self.topology.customer_layer1.get(customer)
        if device is None:
            raise ValueError(f"customer {customer!r} has no layer-1 access circuit")
        event = {
            "SONET restoration": EVENT_SONET,
            "Regular optical mesh network restoration": EVENT_MESH_REGULAR,
            "Fast optical mesh network restoration": EVENT_MESH_FAST,
        }[kind]
        circuit = self.network.physical_links_of_interface(iface)[0].name
        self.emitter.layer1(t, device, event, circuit)
        flap_duration = 4.0 if event == EVENT_MESH_FAST else self.rng.uniform(8.0, 25.0)
        self.emitter.interface_flap(t + 1.0, iface, flap_duration)
        self._flap_session(t + 3.0, per, neighbor_ip, flap_duration + 30.0)
        return [self._truth("eBGP flap", kind, t, f"{per}~{neighbor_ip}")]

    def bgp_unknown(self, t: float, customer: str) -> List[GroundTruth]:
        """A flap with no in-network evidence at all."""
        per, _iface, neighbor_ip = self.attachment(customer)
        self._flap_session(t, per, neighbor_ip, duration=30.0)
        return [self._truth("eBGP flap", "Unknown", t, f"{per}~{neighbor_ip}")]

    def bgp_linecard_crash(self, t: float, per: str, slot: int) -> List[GroundTruth]:
        """Section IV-C: a crashing line card flaps every session on it.

        The crash itself is *unobservable* to the RCA tool (the OIR
        signature was not in the Knowledge Library at the time), so only
        the per-interface flaps and session flaps are emitted unless the
        caller also emits the crash message.
        """
        truths = []
        router = self.network.router(per)
        spread = 170.0  # all flaps land within ~3 minutes (paper: 3 min)
        for iface in router.interfaces_on_slot(slot):
            fq = iface.fqname
            for customer, (owner, cust_iface, neighbor_ip) in sorted(
                self.topology.customer_attachments.items()
            ):
                if owner != per or cust_iface != fq:
                    continue
                flap_t = t + self.rng.uniform(0.0, spread)
                self.emitter.interface_flap(flap_t, fq, self.rng.uniform(20.0, 60.0))
                self._flap_session(flap_t + 2.0, per, neighbor_ip)
                truths.append(
                    self._truth(
                        "eBGP flap", "Line-card crash", flap_t,
                        f"{per}~{neighbor_ip}", slot=slot,
                    )
                )
        return truths

    # ------------------------------------------------------------------
    # PIM / MVPN root causes (Table VIII vocabulary)

    def _pim_changes(
        self,
        t: float,
        pe: str,
        remote_pes: Sequence[str],
        cause: str,
        vrf: str = "cust-vpn-1",
    ) -> List[GroundTruth]:
        """PIM NBRCHG (vrf) messages on ``pe`` towards remote PEs."""
        truths = []
        uplink = self.network.uplinks_of(pe)[0]
        local_if = (
            uplink.interface_a
            if uplink.interface_a.startswith(pe)
            else uplink.interface_z
        ).partition(":")[2]
        for remote in remote_pes:
            loopback = self.network.router(remote).loopback
            self.emitter.pim_neighbor_change(t, pe, loopback, local_if, "down", vrf)
            self.emitter.pim_neighbor_change(
                t + self.rng.uniform(30.0, 90.0), pe, loopback, local_if, "up", vrf
            )
            truths.append(
                self._truth("PIM Neighbor Adjacency Change", cause, t, f"{pe}~{remote}")
            )
        return truths

    def _remote_pes(self, pe: str, count: int = 2) -> List[str]:
        others = [p for p in self.topology.provider_edges if p != pe]
        self.rng.shuffle(others)
        return sorted(others[:count])

    def pim_config_change(self, t: float, pe: str) -> List[GroundTruth]:
        """MVPN (de)provisioning -> PIM adjacency changes."""
        self.emitter.workflow(
            t, pe, "provisioning.mvpn_config", f"ticket-{self.rng.randint(1000, 9999)}"
        )
        self.emitter.tacacs(
            t + 2.0, pe, "prov-sys", "conf t; ip vrf cust-vpn-1; mdt default 239.1.1.1"
        )
        return self._pim_changes(t + 10.0, pe, self._remote_pes(pe, 1),
                                 "PIM Configuration change")

    def pim_router_cost(self, t: float, router: str) -> List[GroundTruth]:
        """Maintenance cost-out of a core router disturbs PE adjacencies."""
        pairs = self.pe_pairs_through_router(router, t - 1.0)
        links = self.network.logical_links_of_router(router)
        for index, link in enumerate(links):
            self._set_weight(t + index * 1.0, link.name, COST_OUT_WEIGHT)
        truths = []
        for a, b in pairs[:2]:
            truths.extend(
                self._pim_changes(t + 5.0, a, [b], "Router Cost In/Out")
            )
        # cost the router back in later (creates the paired In event)
        t_in = t + 1800.0
        for index, link in enumerate(links):
            self._set_weight(t_in + index * 1.0, link.name, DEFAULT_WEIGHT)
        return truths

    def pim_link_cost_out(self, t: float, link: str) -> List[GroundTruth]:
        """Backbone link costed out -> PIM adjacency changes."""
        pairs = self.pe_pairs_crossing(link, t - 1.0, limit=1)
        self._set_weight(t, link, COST_OUT_WEIGHT)
        self._set_weight(t + 1800.0, link, DEFAULT_WEIGHT)
        truths = []
        for a, b in pairs:
            truths.extend(self._pim_changes(t + 5.0, a, [b], "Link Cost Out/Down"))
        return truths

    def pim_link_cost_in(self, t: float, link: str) -> List[GroundTruth]:
        """A link returning to service (was out since t-3600)."""
        self._set_weight(t - 3600.0, link, COST_OUT_WEIGHT)
        self._set_weight(t, link, DEFAULT_WEIGHT)
        pairs = self.pe_pairs_crossing(link, t + 1.0, limit=1)
        truths = []
        for a, b in pairs:
            truths.extend(self._pim_changes(t + 5.0, a, [b], "Link Cost In/Up"))
        return truths

    def pim_ospf_reconvergence(self, t: float, link: str) -> List[GroundTruth]:
        """A traffic-engineering weight tweak (not a cost in/out)."""
        pairs = self.pe_pairs_crossing(link, t - 1.0, limit=1)
        self._set_weight(t, link, DEFAULT_WEIGHT + self.rng.randint(5, 30))
        truths = []
        for a, b in pairs:
            truths.extend(self._pim_changes(t + 5.0, a, [b], "OSPF re-convergence"))
        return truths

    def pim_uplink_adjacency(self, t: float, pe: str) -> List[GroundTruth]:
        """The PE's uplink PIM adjacency (no vrf) drops first."""
        uplink = self.network.uplinks_of(pe)[0]
        local_if = (
            uplink.interface_a
            if uplink.interface_a.startswith(pe)
            else uplink.interface_z
        ).partition(":")[2]
        neighbor = uplink.other_router(pe)
        neighbor_loopback = self.network.router(neighbor).loopback
        self.emitter.pim_neighbor_change(t, pe, neighbor_loopback, local_if, "down")
        self.emitter.pim_neighbor_change(
            t + 60.0, pe, neighbor_loopback, local_if, "up"
        )
        return self._pim_changes(
            t + 5.0, pe, self._remote_pes(pe, 1), "Uplink PIM adjacency loss"
        )

    def pim_customer_interface_flap(self, t: float, customer: str) -> List[GroundTruth]:
        """Customer-facing flap -> PIM adjacency changes."""
        per, iface, _neighbor_ip = self.attachment(customer)
        self.emitter.interface_flap(t, iface, self.rng.uniform(10.0, 50.0))
        return self._pim_changes(
            t + 3.0, per, self._remote_pes(per, 1), "interface (customer facing) flap"
        )

    def pim_unknown(self, t: float, pe: str) -> List[GroundTruth]:
        """PIM adjacency change with no observable cause."""
        return self._pim_changes(t, pe, self._remote_pes(pe, 1), "Unknown")

    # ------------------------------------------------------------------
    # CDN root causes (Table VI vocabulary)

    def cdn_policy_change(self, t: float, servers: Sequence[str]) -> None:
        """CDN assignment-map change logged on the servers."""
        for server in servers:
            self.emitter.cdn(t, server, "policy_change", f"map-v{self.rng.randint(2, 99)}")

    def cdn_server_overload(self, t: float, server: str, duration: float) -> None:
        """Sustained high load samples on one CDN server."""
        for offset in range(0, int(duration), 300):
            self.emitter.cdn(t + offset, server, "load", self.rng.uniform(0.92, 0.99))

    def cdn_link_congestion(self, t: float, interface_fq: str, duration: float) -> None:
        """High-utilization SNMP samples on one interface."""
        router, _, if_name = interface_fq.partition(":")
        for offset in range(0, int(duration), 300):
            self.emitter.snmp(
                t + offset, router, "link_util", if_name, self.rng.uniform(85.0, 99.0)
            )

    def cdn_link_loss(self, t: float, interface_fq: str, duration: float) -> None:
        """Corrupted-packet SNMP samples on one interface."""
        router, _, if_name = interface_fq.partition(":")
        for offset in range(0, int(duration), 300):
            self.emitter.snmp(
                t + offset, router, "corrupted_packets", if_name,
                float(self.rng.randint(150, 2000)),
            )

    def cdn_backbone_interface_flap(self, t: float, link_name: str) -> str:
        """Flap one end of a backbone link (plus the OSPF ripple)."""
        link = self.network.logical_link(link_name)
        self.emitter.interface_flap(t, link.interface_a, self.rng.uniform(15.0, 45.0))
        self._set_weight(t + 1.0, link_name, COST_OUT_WEIGHT)
        self._set_weight(t + 120.0, link_name, DEFAULT_WEIGHT)
        return link.interface_a

    def cdn_egress_change(
        self,
        t: float,
        prefix: str,
        old_egress: str,
        new_egress: Optional[str] = None,
        duration: float = 1700.0,
    ) -> None:
        """Inter-domain routing change: a prefix moves egress and back.

        The neighboring ISP withdraws the prefix from ``old_egress``;
        traffic shifts to ``new_egress`` (when given) until the original
        announcement returns ``duration`` seconds later.
        """
        self.emitter.bgp_update(t, "W", prefix, old_egress)
        if new_egress is not None:
            self.emitter.bgp_update(t + 2.0, "A", prefix, new_egress)
            self.emitter.bgp_update(t + duration + 2.0, "W", prefix, new_egress)
        self.emitter.bgp_update(t + duration, "A", prefix, old_egress)

    def cdn_ospf_reconvergence(self, t: float, link: str, duration: float = 900.0) -> None:
        """A traffic-engineering tweak, reverted after ``duration``."""
        self._set_weight(t, link, DEFAULT_WEIGHT + self.rng.randint(5, 25))
        self._set_weight(t + duration, link, DEFAULT_WEIGHT)


# ---------------------------------------------------------------------------
# feed-level fault recipes (measurement infrastructure misbehaving)


@dataclass(frozen=True)
class FeedFault:
    """One injected feed-level impairment (not a network root cause)."""

    source: str  # collector feed / table name
    kind: str  # "outage" | "lag" | "corruption"
    start: float
    end: float
    detail: str = ""


class FeedFaultInjector:
    """Degrades raw feeds between emission and ingestion.

    Where :class:`FaultInjector` simulates the *network* misbehaving,
    this simulates the *measurement infrastructure* misbehaving: a feed
    transport dropping out entirely, delivering late, or emitting
    garbage.  Recipes rewrite the emitter's :class:`TelemetryBuffers`
    in place and remember every injected fault so
    :meth:`apply_to_registry` can stand in for the transport-level
    monitoring (circuit breakers, poller liveness checks) that would
    report those intervals in a live deployment.
    """

    #: health-interval state recorded per fault kind
    STATE_BY_KIND = {
        "outage": FeedState.DOWN,
        "lag": FeedState.LAGGING,
        "corruption": FeedState.DEGRADED,
    }

    def __init__(self, buffers, rng: Optional[random.Random] = None) -> None:
        self.buffers = buffers
        self.rng = rng or random.Random(7331)
        self.faults: List[FeedFault] = []

    def outage(self, source: str, start: float, end: float) -> int:
        """Drop every line of a feed in ``[start, end)`` — transport down.

        Returns the number of lines lost.
        """
        def drop(t: float, line: str):
            return None if start <= t < end else (t, line)

        lost = self.buffers.transform(source, drop)
        self.faults.append(
            FeedFault(source, "outage", start, end, f"{lost} lines lost")
        )
        return lost

    def lag(self, source: str, start: float, end: float, delay: float) -> int:
        """Delay delivery of lines in ``[start, end)`` by ``delay`` seconds.

        Data timestamps inside each line are untouched — the records are
        correct, just late — so a streaming replay sees the feed's
        watermark trail the arrival clock.  Returns the shifted count.
        """
        def shift(t: float, line: str):
            return (t + delay, line) if start <= t < end else (t, line)

        moved = self.buffers.transform(source, shift)
        self.faults.append(
            FeedFault(source, "lag", start, end, f"{moved} lines +{delay:.0f}s")
        )
        return moved

    def corruption(
        self, source: str, start: float, end: float, probability: float = 1.0
    ) -> int:
        """Garble lines in ``[start, end)`` so the parser rejects them.

        Returns the number of lines corrupted.
        """
        def mangle(t: float, line: str):
            if start <= t < end and self.rng.random() < probability:
                return (t, "~CORRUPT~" + line)
            return (t, line)

        hit = self.buffers.transform(source, mangle)
        self.faults.append(
            FeedFault(source, "corruption", start, end, f"{hit} lines garbled")
        )
        return hit

    def apply_to_registry(self, registry) -> None:
        """Record every injected fault as a feed-health interval.

        Batch replays have no live observation clock, so the intervals a
        transport monitor would have flagged are recorded directly on
        the :class:`~repro.collector.health.HealthRegistry`.
        """
        for fault in self.faults:
            registry.record_outage(
                fault.source, fault.start, fault.end, self.STATE_BY_KIND[fault.kind]
            )
