"""Scenario evaluation harness: seeded, scored, failure-injected runs.

The paper validates G-RCA by replaying known fault episodes through the
three applications and counting how often the true root cause comes
back.  This package is that loop made first-class: a **Scenario** is a
named, fully seeded recipe (topology, workload size, a script of
:class:`FailureInjection`\\ s) whose simulation produces a ground-truth
label set; a :class:`ScenarioRunner` replays it through the real engine
(or end-to-end through the RCA service / HTTP gateway); a
:class:`Scorer` turns the diagnoses into dimension scores — accuracy,
coverage, localization, evidence-gap honesty — rolled into one
composite; and the matrix module runs every registered scenario and
writes the ``BENCH_scenarios.json`` CI artifact with gating regression
thresholds on the paper apps.

Same seed ⇒ byte-identical scores: everything that feeds a score is
driven by the scenario's seeds, never by wall-clock time.  Latency
(p50/p99) is measured and reported in a separate ``timing`` section
that is excluded from score comparisons.
"""

from .matrix import (
    MATRIX_SCHEMA,
    MatrixGateFailure,
    diff_matrices,
    ensure_gate,
    format_diff_lines,
    gate_failures,
    load_matrix,
    matrix_document,
    run_matrix,
    write_matrix,
)
from .registry import all_scenarios, gating_scenarios, get_scenario, scenario_names
from .runner import RunOutcome, ScenarioRunner
from .scenario import FailureInjection, Scenario, ScenarioThresholds
from .scoring import DimensionScore, EvaluationResult, Scorer

__all__ = [
    "DimensionScore",
    "EvaluationResult",
    "FailureInjection",
    "MATRIX_SCHEMA",
    "MatrixGateFailure",
    "RunOutcome",
    "Scenario",
    "ScenarioRunner",
    "ScenarioThresholds",
    "Scorer",
    "all_scenarios",
    "diff_matrices",
    "ensure_gate",
    "format_diff_lines",
    "gate_failures",
    "gating_scenarios",
    "get_scenario",
    "load_matrix",
    "matrix_document",
    "run_matrix",
    "scenario_names",
    "write_matrix",
]
