"""The named scenario registry: the workloads every PR is scored on.

Eleven scenarios in five families:

* **paper apps** (gated): ``bgp_month_core`` / ``cdn_month_core`` /
  ``pim_fortnight_core`` replay scaled-down versions of the paper's
  Table IV / VI / VIII episodes; their accuracy thresholds are enforced
  by the CI gate (a regression here means the reproduction broke);
* **coverage**: ``backbone_probe_core`` exercises the introduction's
  probe-loss workload;
* **degraded feeds**: outage / lag / corruption scripted on diagnostic
  feeds, scoring the evidence-gap honesty dimension for real;
* **incident lifecycle** (non-gating): ``bgp_incident_dedupe`` replays
  a flap storm through the incident aggregator and reports dedupe
  counts (incidents, flap totals) in the matrix artifact;
* **serving layer**: the same bgp workload pushed through the worker
  pool (``service``), through the pool with chaos (worker crashes +
  transient failures), and end-to-end over the HTTP gateway.

Sizes are deliberately small (seconds per scenario) so the full matrix
runs in CI on every PR; the benchmarks keep the paper-scale versions.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .scenario import FailureInjection, Scenario, ScenarioThresholds

DAY = 86400.0

#: a compact bgp topology shared by the non-core bgp scenarios
_BGP_SMALL_TOPOLOGY: Tuple[Tuple[str, object], ...] = (
    ("n_pops", 4),
    ("pers_per_pop", 2),
    ("customers_per_per", 4),
)


def _build_registry() -> Dict[str, Scenario]:
    """Construct the scenario table (order = matrix run order)."""
    scenarios: List[Scenario] = [
        # -- paper apps (gated) ----------------------------------------
        Scenario(
            name="bgp_month_core",
            description="Table IV: a month of customer eBGP flaps, "
                        "Table IV cause mixture, clean feeds.",
            app="bgp_flaps",
            seed=9101,
            size=150,
            topology=_BGP_SMALL_TOPOLOGY,
            thresholds=ScenarioThresholds(
                accuracy=0.90, coverage=0.85, composite=85.0
            ),
            gate=True,
            tags=("paper", "bgp"),
        ),
        Scenario(
            name="cdn_month_core",
            description="Table VI: a month of CDN RTT degradations, "
                        "Table VI cause mixture, clean feeds.",
            app="cdn",
            seed=9103,
            size=120,
            thresholds=ScenarioThresholds(
                accuracy=0.80, coverage=0.80, composite=80.0
            ),
            gate=True,
            tags=("paper", "cdn"),
        ),
        Scenario(
            name="pim_fortnight_core",
            description="Table VIII: two weeks of MVPN PIM adjacency "
                        "changes, Table VIII cause mixture.",
            app="pim",
            seed=9102,
            size=120,
            thresholds=ScenarioThresholds(
                accuracy=0.80, coverage=0.75, composite=78.0
            ),
            gate=True,
            tags=("paper", "pim"),
        ),
        # -- additional coverage ---------------------------------------
        Scenario(
            name="backbone_probe_core",
            description="Introduction workload: inter-PoP probe loss "
                        "episodes (congestion-dominated mixture).",
            app="backbone",
            seed=9106,
            size=60,
            thresholds=ScenarioThresholds(accuracy=0.60, coverage=0.60),
            tags=("backbone",),
        ),
        # -- degraded measurement infrastructure -----------------------
        Scenario(
            name="bgp_snmp_outage",
            description="bgp workload with the SNMP CPU feed dark for "
                        "days 8-16: CPU-caused flaps lose their "
                        "evidence; honesty demands caveats, not "
                        "confident wrong answers.",
            app="bgp_flaps",
            seed=9104,
            size=150,
            topology=_BGP_SMALL_TOPOLOGY,
            injections=(
                FailureInjection.make(
                    "feed_outage", "snmp", at_s=8 * DAY, duration_s=8 * DAY
                ),
            ),
            thresholds=ScenarioThresholds(accuracy=0.80),
            tags=("bgp", "degraded"),
        ),
        Scenario(
            name="bgp_syslog_lag",
            description="bgp workload with the syslog feed delivering "
                        "30 minutes late for a week: records correct "
                        "but late (batch replay ingests them all, the "
                        "health registry records the impairment).",
            app="bgp_flaps",
            seed=9105,
            size=150,
            topology=_BGP_SMALL_TOPOLOGY,
            injections=(
                FailureInjection.make(
                    "feed_lag", "syslog", at_s=10 * DAY, duration_s=7 * DAY,
                    delay=1800.0,
                ),
            ),
            thresholds=ScenarioThresholds(accuracy=0.80),
            tags=("bgp", "degraded"),
        ),
        Scenario(
            name="cdn_bgpmon_corruption",
            description="CDN workload with half the BGP-monitor feed "
                        "garbled for ten days: egress-change evidence "
                        "thins out, the parser rejects the garbage.",
            app="cdn",
            seed=9107,
            size=100,
            injections=(
                FailureInjection.make(
                    "feed_corruption", "bgpmon",
                    at_s=8 * DAY, duration_s=10 * DAY, probability=0.5,
                ),
            ),
            thresholds=ScenarioThresholds(accuracy=0.70),
            tags=("cdn", "degraded"),
        ),
        # -- incident lifecycle (non-gating) ---------------------------
        Scenario(
            name="bgp_incident_dedupe",
            description="Flap-storm workload folded through the "
                        "incident aggregator: repeated same-cause "
                        "same-location symptoms must collapse into "
                        "deduped incidents with flap counts > 1 "
                        "(counts reported, no gate).",
            app="bgp_storm",
            seed=9108,
            size=60,
            topology=_BGP_SMALL_TOPOLOGY,
            tags=("bgp", "incidents"),
        ),
        # -- serving layer ---------------------------------------------
        Scenario(
            name="bgp_service_pool",
            description="bgp workload diagnosed through the supervised "
                        "RcaService worker pool (results must match "
                        "the inline engine).",
            app="bgp_flaps",
            seed=9101,
            size=150,
            mode="service",
            workers=2,
            topology=_BGP_SMALL_TOPOLOGY,
            thresholds=ScenarioThresholds(accuracy=0.90, coverage=0.85),
            tags=("bgp", "service"),
        ),
        Scenario(
            name="bgp_service_chaos",
            description="The service-pool scenario under chaos: one "
                        "worker crash plus transient execution "
                        "failures; retries and failover must deliver "
                        "every diagnosis anyway.",
            app="bgp_flaps",
            seed=9101,
            size=150,
            mode="service",
            workers=2,
            topology=_BGP_SMALL_TOPOLOGY,
            injections=(
                FailureInjection.make("worker_crash", "*", times=1),
                FailureInjection.make("worker_fail", "*", times=2),
            ),
            thresholds=ScenarioThresholds(accuracy=0.90, coverage=0.85),
            tags=("bgp", "service", "chaos"),
        ),
        Scenario(
            name="bgp_http_e2e",
            description="End to end: the bgp workload submitted to the "
                        "sharded HTTP gateway, diagnoses decoded back "
                        "from grca-diagnosis/1 JSON.",
            app="bgp_flaps",
            seed=9101,
            size=100,
            mode="http",
            workers=2,
            shards=2,
            topology=_BGP_SMALL_TOPOLOGY,
            thresholds=ScenarioThresholds(accuracy=0.90),
            tags=("bgp", "http"),
        ),
    ]
    registry = {}
    for scenario in scenarios:
        if scenario.name in registry:
            raise ValueError(f"duplicate scenario name {scenario.name!r}")
        registry[scenario.name] = scenario
    return registry


_REGISTRY = _build_registry()


def scenario_names() -> List[str]:
    """Every registered scenario name, in matrix run order."""
    return list(_REGISTRY)


def all_scenarios() -> List[Scenario]:
    """Every registered scenario, in matrix run order."""
    return list(_REGISTRY.values())


def gating_scenarios() -> List[Scenario]:
    """The paper-app scenarios whose thresholds gate CI."""
    return [s for s in _REGISTRY.values() if s.gate]


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name (KeyError lists what exists)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; registered: {known}")
