"""Scenario specifications: what to replay, what to break, what to expect.

A :class:`Scenario` is declarative — nothing here runs anything.  It
names one of the simulation workloads (``bgp_flaps`` / ``cdn`` / ``pim``
/ ``backbone``), pins every seed and size knob, scripts the failure
injections to apply on top of the workload's own root-cause mixture,
and carries the accuracy/coverage thresholds the matrix gate enforces.

Two distinct failure planes can be scripted:

* **feed faults** (``feed_outage`` / ``feed_lag`` / ``feed_corruption``)
  degrade the measurement infrastructure between telemetry emission and
  ingestion, via :class:`~repro.simulation.faults.FeedFaultInjector`;
* **service faults** (``worker_crash`` / ``worker_delay`` /
  ``worker_fail``) fire inside the serving layer via
  :class:`~repro.service.faults.ServiceFaultInjector` and only apply to
  ``service`` / ``http`` mode runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

#: injection kinds that rewrite raw feeds before ingestion
FEED_FAULT_KINDS = ("feed_outage", "feed_lag", "feed_corruption")

#: injection kinds that fire inside the service worker pool
SERVICE_FAULT_KINDS = ("worker_crash", "worker_delay", "worker_fail")

#: execution modes a scenario may request
MODES = ("engine", "service", "http")


@dataclass(frozen=True)
class FailureInjection:
    """One scripted failure: what breaks, where, when, for how long.

    ``at_s`` and ``duration_s`` are offsets **in seconds from the
    scenario's data start** (its tick axis), so an injection script is
    meaningful independent of the absolute simulated epoch.  ``params``
    carries kind-specific knobs: ``delay`` (seconds) for ``feed_lag``,
    ``probability`` for ``feed_corruption``, ``times`` / ``delay`` for
    the service kinds.
    """

    kind: str  # one of FEED_FAULT_KINDS + SERVICE_FAULT_KINDS
    target: str  # feed/table name for feed faults; "*" = any job
    at_s: float = 0.0
    duration_s: float = 0.0
    params: Tuple[Tuple[str, float], ...] = ()

    def param(self, name: str, default: float) -> float:
        """Look up one kind-specific knob with a default."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    @staticmethod
    def make(
        kind: str,
        target: str,
        at_s: float = 0.0,
        duration_s: float = 0.0,
        **params: float,
    ) -> "FailureInjection":
        """Build an injection with keyword params (sorted, hashable)."""
        if kind not in FEED_FAULT_KINDS + SERVICE_FAULT_KINDS:
            raise ValueError(f"unknown failure-injection kind {kind!r}")
        return FailureInjection(
            kind=kind,
            target=target,
            at_s=at_s,
            duration_s=duration_s,
            params=tuple(sorted(params.items())),
        )


@dataclass(frozen=True)
class ScenarioThresholds:
    """Minimum scores (0..1) a scenario must reach to pass its gate."""

    accuracy: float = 0.0
    coverage: float = 0.0
    composite: float = 0.0  # composite is on the 0..100 scale

    def as_dict(self) -> Dict[str, float]:
        """The thresholds as a plain dict (for the matrix artifact)."""
        return {
            "accuracy": self.accuracy,
            "coverage": self.coverage,
            "composite": self.composite,
        }


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible evaluation scenario.

    ``app`` selects the workload + RCA application pair; ``seed`` drives
    every random draw in the simulation (topology, mixture, injection
    placement), so two runs of the same scenario produce identical
    diagnoses and identical scores.  ``topology`` optionally overrides
    the workload's default :class:`~repro.topology.TopologyParams`
    knobs (``n_pops``, ``pers_per_pop``, ...).
    """

    name: str
    description: str
    app: str  # "bgp_flaps" | "bgp_storm" | "cdn" | "pim" | "backbone"
    seed: int
    size: int  # workload size (flaps / degradations / changes / losses)
    mode: str = "engine"  # "engine" | "service" | "http"
    duration_days: Optional[float] = None  # workload default when None
    topology: Tuple[Tuple[str, object], ...] = ()  # TopologyParams overrides
    injections: Tuple[FailureInjection, ...] = ()
    thresholds: ScenarioThresholds = field(default_factory=ScenarioThresholds)
    gate: bool = False  # paper-app scenario enforced by the CI gate
    workers: int = 2  # service/http mode worker threads
    shards: int = 2  # http mode shard count
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown scenario mode {self.mode!r}")
        feed_only = all(
            inj.kind in FEED_FAULT_KINDS for inj in self.injections
        )
        if self.mode == "engine" and not feed_only:
            raise ValueError(
                f"scenario {self.name!r}: service-fault injections need "
                f"mode 'service' or 'http'"
            )

    def feed_injections(self) -> Tuple[FailureInjection, ...]:
        """The subset of injections that degrade raw feeds."""
        return tuple(
            inj for inj in self.injections if inj.kind in FEED_FAULT_KINDS
        )

    def service_injections(self) -> Tuple[FailureInjection, ...]:
        """The subset of injections that fire in the worker pool."""
        return tuple(
            inj for inj in self.injections if inj.kind in SERVICE_FAULT_KINDS
        )

    def topology_overrides(self) -> Mapping[str, object]:
        """Topology knob overrides as a dict (empty = workload default)."""
        return dict(self.topology)

    def describe(self) -> str:
        """One human line: name, app, mode, size, injection count."""
        extras = []
        if self.injections:
            extras.append(f"{len(self.injections)} injected failures")
        if self.gate:
            extras.append("gated")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return (
            f"{self.name}: {self.app}/{self.mode}, size {self.size}, "
            f"seed {self.seed}{suffix}"
        )
