"""The scenario matrix: run everything, write the artifact, gate, diff.

``BENCH_scenarios.json`` (schema ``grca-scenario-matrix/1``) is the CI
artifact: one entry per scenario with its deterministic scores and a
separate ``timing`` section.  Two runs of the same matrix at the same
seeds produce byte-identical ``scores`` sections; only ``timing``
varies with the hardware.

The gate (:func:`gate_failures`) enforces each gated scenario's
accuracy/coverage/composite thresholds — the CI job that runs the
paper-app scenarios fails the build on any miss.  :func:`diff_matrices`
compares two artifact files (e.g. a PR run against main's) and flags
per-dimension regressions.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .registry import all_scenarios, get_scenario
from .runner import ScenarioRunner
from .scenario import Scenario
from .scoring import EvaluationResult, Scorer

#: schema tag stamped on every matrix artifact
MATRIX_SCHEMA = "grca-scenario-matrix/1"

#: composite-score drop (absolute points) that counts as a regression
#: when diffing two matrix files
DIFF_REGRESSION_POINTS = 1.0


class MatrixGateFailure(Exception):
    """Raised by :func:`ensure_gate` when a gated threshold is missed."""

    def __init__(self, failures: List[str]) -> None:
        super().__init__("; ".join(failures))
        self.failures = failures


def run_matrix(
    names: Optional[Sequence[str]] = None,
    runner: Optional[ScenarioRunner] = None,
    scorer: Optional[Scorer] = None,
    scenarios: Optional[Sequence[Scenario]] = None,
    progress=None,
) -> List[EvaluationResult]:
    """Run and score a set of scenarios (default: the full registry).

    ``names`` restricts to a subset of registered names; ``scenarios``
    bypasses the registry entirely (tests inject tiny scenarios this
    way).  ``progress``, when given, receives one line per scenario.
    """
    if scenarios is None:
        if names:
            scenarios = [get_scenario(name) for name in names]
        else:
            scenarios = all_scenarios()
    runner = runner or ScenarioRunner()
    scorer = scorer or Scorer()
    results = []
    for scenario in scenarios:
        if progress is not None:
            progress(f"running {scenario.describe()}")
        results.append(scorer.score(runner.run(scenario)))
    return results


def matrix_document(
    results: Sequence[EvaluationResult], include_timing: bool = True
) -> Dict[str, Any]:
    """The artifact document for a set of scored results."""
    return {
        "schema": MATRIX_SCHEMA,
        "scenarios": [r.to_dict(include_timing=include_timing) for r in results],
        "summary": {
            "count": len(results),
            "composite_mean": round(
                sum(r.composite for r in results) / len(results), 2
            ) if results else 0.0,
            "gated": sorted(r.scenario for r in results if r.gate),
            "gate_failures": gate_failures(results),
        },
    }


def write_matrix(
    path: str,
    results: Sequence[EvaluationResult],
    include_timing: bool = True,
) -> Dict[str, Any]:
    """Write the matrix artifact as stable JSON; returns the document."""
    document = matrix_document(results, include_timing=include_timing)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def load_matrix(path: str) -> Dict[str, Any]:
    """Load a matrix artifact, checking the schema tag."""
    with open(path) as handle:
        document = json.load(handle)
    if document.get("schema") != MATRIX_SCHEMA:
        raise ValueError(
            f"{path}: unsupported matrix schema "
            f"{document.get('schema')!r}; expected {MATRIX_SCHEMA!r}"
        )
    return document


def gate_failures(results: Iterable[EvaluationResult]) -> List[str]:
    """Threshold misses among the *gated* scenarios only."""
    failures: List[str] = []
    for result in results:
        if result.gate:
            failures.extend(result.threshold_failures())
    return failures


def ensure_gate(results: Iterable[EvaluationResult]) -> None:
    """Raise :class:`MatrixGateFailure` if any gated threshold is missed."""
    failures = gate_failures(results)
    if failures:
        raise MatrixGateFailure(failures)


def diff_matrices(
    old: Dict[str, Any], new: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Per-scenario comparison of two matrix documents.

    Returns one entry per scenario present in either document:
    composite delta, per-dimension deltas, and flags for added /
    removed scenarios and composite regressions beyond
    :data:`DIFF_REGRESSION_POINTS`.
    """
    def by_name(document):
        return {entry["scenario"]: entry for entry in document["scenarios"]}

    old_entries, new_entries = by_name(old), by_name(new)
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(old_entries) | set(new_entries)):
        before, after = old_entries.get(name), new_entries.get(name)
        if before is None or after is None:
            rows.append({
                "scenario": name,
                "status": "added" if before is None else "removed",
            })
            continue
        def dims(entry):
            return {d["name"]: d["score"] for d in entry["dimensions"]}

        delta = round(after["composite"] - before["composite"], 2)
        dimension_deltas = {
            key: round(dims(after).get(key, 0.0) - value, 2)
            for key, value in dims(before).items()
        }
        regressed = delta < -DIFF_REGRESSION_POINTS
        rows.append({
            "scenario": name,
            "status": "regressed" if regressed else (
                "improved" if delta > DIFF_REGRESSION_POINTS else "unchanged"
            ),
            "composite_before": before["composite"],
            "composite_after": after["composite"],
            "composite_delta": delta,
            "dimension_deltas": dimension_deltas,
        })
    return rows


def format_diff_lines(rows: Sequence[Dict[str, Any]]) -> List[str]:
    """Terminal rendering of :func:`diff_matrices` output."""
    lines = []
    for row in rows:
        if row["status"] in ("added", "removed"):
            lines.append(f"{row['scenario']}: {row['status']}")
            continue
        moved = ", ".join(
            f"{name} {delta:+.2f}"
            for name, delta in sorted(row["dimension_deltas"].items())
            if abs(delta) > 0.005
        )
        suffix = f" ({moved})" if moved else ""
        lines.append(
            f"{row['scenario']}: {row['status']} "
            f"{row['composite_before']:.2f} -> {row['composite_after']:.2f} "
            f"[{row['composite_delta']:+.2f}]{suffix}"
        )
    return lines
