"""Scoring: diagnoses + ground truth -> dimension scores -> composite.

Four deterministic dimensions (each 0..100) make up the composite:

* **accuracy** — top-1 root-cause match: the fraction of diagnoses
  whose primary cause equals the injected cause behind the nearest
  ground-truth entry at the same location (the paper's Table IV/VI/VIII
  agreement measure);
* **coverage** — the fraction of injected ground-truth faults surfaced
  by at least one diagnosis at the right location and time;
* **localization** — precision: the fraction of diagnoses that land on
  a real injected fault (location match within the time tolerance);
* **honesty** — evidence-gap honesty: inside injected feed-degradation
  windows, a diagnosis must either still be right or *say* it is
  impaired (caveats, evidence gaps, confidence < 1).  A degraded feed
  yielding a confident wrong answer is the failure this dimension
  punishes.

Latency (p50/p99 per diagnosis/job, total wall seconds) is measured and
reported under ``timing`` but deliberately excluded from the composite:
scores must be byte-identical across runs of the same seed, and
wall-clock time never is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.engine import Diagnosis
from ..core.knowledge import names
from ..simulation import FeedFault, GroundTruth
from .runner import RunOutcome
from .scenario import Scenario

#: composite weights per dimension (sum to 1.0)
DIMENSION_WEIGHTS = {
    "accuracy": 0.40,
    "coverage": 0.25,
    "localization": 0.20,
    "honesty": 0.15,
}

#: per-app map from diagnosed cause names (the knowledge base's Table I
#: vocabulary) to the injected ground-truth labels (the paper tables'
#: row headings) — the same correspondence the Table IV/VI/VIII
#: benchmarks encode in their ``CAUSE_MAP``\ s.
CAUSE_ALIASES: Dict[str, Dict[str, str]] = {
    "bgp_flaps": {
        names.EBGP_HTE: "eBGP HTE (due to unknown reasons)",
    },
    "bgp_storm": {
        names.EBGP_HTE: "eBGP HTE (due to unknown reasons)",
    },
    "cdn": {
        names.BGP_EGRESS_CHANGE: "Egress Change due to Inter-domain routing change",
        names.LINK_CONGESTION: "Link Congestions",
        names.LINK_LOSS: "Link Loss",
        names.OSPF_RECONVERGENCE: "OSPF re-convergence",
        "Unknown": "Outside of our network (Unknown)",
    },
    "pim": {
        names.PIM_CONFIG_CHANGE:
            "PIM Configuration Change (to add and remove customers)",
        names.OSPF_RECONVERGENCE: "OSPF re-convergence",
        names.UPLINK_PIM_ADJACENCY_CHANGE: "Uplink PIM adjacency loss",
    },
    "backbone": {
        names.LINK_CONGESTION: "Link Congestions",
        names.OSPF_RECONVERGENCE: "OSPF re-convergence",
    },
}


@dataclass
class DimensionScore:
    """Score for one evaluation dimension (0..100) plus its raw metrics."""

    name: str
    score: float
    weight: float
    metrics: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """The dimension as a JSON-ready dict (values rounded)."""
        return {
            "name": self.name,
            "score": round(self.score, 2),
            "weight": self.weight,
            "metrics": {
                key: (round(value, 4) if isinstance(value, float) else value)
                for key, value in sorted(self.metrics.items())
            },
            "notes": self.notes,
        }


@dataclass
class EvaluationResult:
    """One scenario's full scored outcome."""

    scenario: str
    app: str
    mode: str
    seed: int
    composite: float
    dimensions: List[DimensionScore]
    counts: Dict[str, int]
    thresholds: Dict[str, float]
    gate: bool
    #: non-deterministic wall-clock measurements, outside the scores
    timing: Dict[str, float] = field(default_factory=dict)

    def dimension(self, name: str) -> DimensionScore:
        """Look one dimension up by name."""
        for dimension in self.dimensions:
            if dimension.name == name:
                return dimension
        raise KeyError(name)

    def ratio(self, name: str) -> float:
        """A dimension's score on the 0..1 scale."""
        return self.dimension(name).score / 100.0

    def scores_dict(self) -> Dict[str, Any]:
        """The deterministic part: same seed ⇒ byte-identical JSON."""
        return {
            "scenario": self.scenario,
            "app": self.app,
            "mode": self.mode,
            "seed": self.seed,
            "composite": round(self.composite, 2),
            "dimensions": [d.to_dict() for d in self.dimensions],
            "counts": dict(sorted(self.counts.items())),
            "thresholds": dict(sorted(self.thresholds.items())),
            "gate": self.gate,
        }

    def to_dict(self, include_timing: bool = True) -> Dict[str, Any]:
        """The full result; ``include_timing=False`` for byte-stable output."""
        document = self.scores_dict()
        if include_timing:
            document["timing"] = {
                key: round(value, 3) for key, value in sorted(self.timing.items())
            }
        return document

    def threshold_failures(self) -> List[str]:
        """Human-readable list of thresholds this result misses."""
        failures = []
        for metric in ("accuracy", "coverage"):
            floor = self.thresholds.get(metric, 0.0)
            if floor > 0.0 and self.ratio(metric) < floor:
                failures.append(
                    f"{self.scenario}: {metric} {self.ratio(metric):.3f} "
                    f"< threshold {floor:.3f}"
                )
        floor = self.thresholds.get("composite", 0.0)
        if floor > 0.0 and self.composite < floor:
            failures.append(
                f"{self.scenario}: composite {self.composite:.2f} "
                f"< threshold {floor:.2f}"
            )
        return failures

    def format_lines(self) -> List[str]:
        """A terminal report: composite, dimensions, counts, timing."""
        lines = [
            f"scenario {self.scenario} ({self.app}/{self.mode}, seed {self.seed}): "
            f"composite {self.composite:.2f}"
        ]
        for dimension in self.dimensions:
            note = f"  [{dimension.notes}]" if dimension.notes else ""
            lines.append(
                f"  {dimension.name:<13} {dimension.score:6.2f} "
                f"(weight {dimension.weight:.2f}){note}"
            )
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        lines.append(f"  counts: {counts}")
        if self.timing:
            timing = ", ".join(
                f"{k}={v:.3f}" for k, v in sorted(self.timing.items())
            )
            lines.append(f"  timing (not scored): {timing}")
        failures = self.threshold_failures()
        for failure in failures:
            lines.append(f"  THRESHOLD MISS: {failure}")
        if self.gate and not failures:
            lines.append("  gate: pass")
        return lines


class Scorer:
    """Turns a :class:`RunOutcome` into an :class:`EvaluationResult`.

    ``match_tolerance_s`` bounds how far apart (in data time) a
    diagnosis and a ground-truth entry at the same location may be and
    still count as the same episode, for the coverage and localization
    dimensions.  Accuracy follows the benchmarks' convention: each
    diagnosis is judged against the *nearest* truth at its location.
    """

    def __init__(self, match_tolerance_s: float = 3600.0) -> None:
        self.match_tolerance_s = match_tolerance_s

    def score(self, outcome: RunOutcome) -> EvaluationResult:
        """Score one replay's diagnoses against its ground truth."""
        scenario = outcome.scenario
        diagnoses = outcome.diagnoses
        truths = outcome.ground_truth
        aliases = CAUSE_ALIASES.get(scenario.app, {})
        by_location: Dict[str, List[GroundTruth]] = {}
        for truth in truths:
            by_location.setdefault(truth.location, []).append(truth)

        hits = 0
        localized = 0
        claimed: set = set()
        for diagnosis in diagnoses:
            key = "~".join(diagnosis.symptom.location.parts)
            candidates = by_location.get(key, [])
            nearest = min(
                candidates,
                key=lambda t: abs(t.time - diagnosis.symptom.start),
                default=None,
            )
            if nearest is not None and self._cause_match(
                diagnosis.primary_cause, nearest.cause, aliases
            ):
                hits += 1
            if nearest is not None and (
                abs(nearest.time - diagnosis.symptom.start) <= self.match_tolerance_s
            ):
                localized += 1
            for index, truth in enumerate(candidates):
                if abs(truth.time - diagnosis.symptom.start) <= self.match_tolerance_s:
                    claimed.add((key, index))

        n = len(diagnoses)
        accuracy = hits / n if n else 0.0
        coverage = len(claimed) / len(truths) if truths else 0.0
        localization = localized / n if n else 0.0
        honesty, honesty_metrics, honesty_note = self._honesty(
            diagnoses, by_location, outcome.feed_faults, aliases
        )

        dimensions = [
            DimensionScore(
                "accuracy", 100.0 * accuracy, DIMENSION_WEIGHTS["accuracy"],
                {"hits": float(hits), "diagnoses": float(n), "ratio": accuracy},
                "top-1 root-cause match vs injected ground truth",
            ),
            DimensionScore(
                "coverage", 100.0 * coverage, DIMENSION_WEIGHTS["coverage"],
                {
                    "claimed": float(len(claimed)),
                    "injected": float(len(truths)),
                    "ratio": coverage,
                },
                "injected faults surfaced by at least one diagnosis",
            ),
            DimensionScore(
                "localization", 100.0 * localization,
                DIMENSION_WEIGHTS["localization"],
                {"localized": float(localized), "diagnoses": float(n),
                 "ratio": localization},
                "diagnoses that land on a real injected fault",
            ),
            DimensionScore(
                "honesty", 100.0 * honesty, DIMENSION_WEIGHTS["honesty"],
                honesty_metrics, honesty_note,
            ),
        ]
        composite = sum(d.score * d.weight for d in dimensions) / sum(
            d.weight for d in dimensions
        )
        counts = {
            "diagnoses": n,
            "symptoms": outcome.n_symptoms,
            "ground_truth": len(truths),
            "feed_faults": len(outcome.feed_faults),
            "explained": sum(1 for d in diagnoses if d.is_explained),
            "degraded": sum(
                1 for d in diagnoses if d.caveats or d.gaps or d.confidence < 1.0
            ),
        }
        for rule, fired in sorted(outcome.chaos_fired.items()):
            counts[f"chaos_{rule}"] = fired
        counts.update(outcome.incident_counts)
        timing = self._timing(outcome)
        return EvaluationResult(
            scenario=scenario.name,
            app=scenario.app,
            mode=scenario.mode,
            seed=scenario.seed,
            composite=composite,
            dimensions=dimensions,
            counts=counts,
            thresholds=scenario.thresholds.as_dict(),
            gate=scenario.gate,
            timing=timing,
        )

    # ------------------------------------------------------------------
    # dimension internals

    @staticmethod
    def _cause_match(
        diagnosed: str, truth: str, aliases: Dict[str, str]
    ) -> bool:
        """Whether a diagnosed cause names the injected ground-truth cause.

        The knowledge base speaks Table I vocabulary while the injected
        labels use the paper tables' row headings; ``aliases`` bridges
        the two (see :data:`CAUSE_ALIASES`).
        """
        return diagnosed == truth or aliases.get(diagnosed) == truth

    def _honesty(
        self,
        diagnoses: Sequence[Diagnosis],
        by_location: Dict[str, List[GroundTruth]],
        feed_faults: Sequence[FeedFault],
        aliases: Dict[str, str],
    ) -> Tuple[float, Dict[str, float], str]:
        """Inside degraded-feed windows: right, or honest about gaps."""
        if not feed_faults:
            return (
                1.0,
                {"in_window": 0.0, "honest": 0.0, "confident_wrong": 0.0},
                "no injected feed degradation in this scenario",
            )
        in_window = 0
        honest = 0
        confident_wrong = 0
        for diagnosis in diagnoses:
            t = diagnosis.symptom.start
            if not any(fault.start <= t <= fault.end for fault in feed_faults):
                continue
            in_window += 1
            key = "~".join(diagnosis.symptom.location.parts)
            nearest = min(
                by_location.get(key, []),
                key=lambda truth: abs(truth.time - t),
                default=None,
            )
            correct = nearest is not None and self._cause_match(
                diagnosis.primary_cause, nearest.cause, aliases
            )
            flagged = bool(
                diagnosis.caveats or diagnosis.gaps or diagnosis.confidence < 1.0
            )
            if correct or flagged:
                honest += 1
            else:
                confident_wrong += 1
        ratio = honest / in_window if in_window else 1.0
        return (
            ratio,
            {
                "in_window": float(in_window),
                "honest": float(honest),
                "confident_wrong": float(confident_wrong),
            },
            "degraded windows answered correctly or with explicit caveats",
        )

    @staticmethod
    def _timing(outcome: RunOutcome) -> Dict[str, float]:
        """Wall-clock latency summary (milliseconds), outside the scores."""
        timing = {"wall_s": outcome.wall_seconds}
        latencies = sorted(outcome.latencies)
        if latencies:
            timing["p50_ms"] = 1000.0 * _percentile(latencies, 0.50)
            timing["p99_ms"] = 1000.0 * _percentile(latencies, 0.99)
            timing["samples"] = float(len(latencies))
        return timing


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile over an already sorted list."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[index]
