"""Scenario replay: simulate, inject failures, diagnose, measure.

The runner is the only part of the harness that touches wall-clock
time, and only to *measure* it (per-diagnosis latency).  Everything
that determines the diagnoses themselves — topology, mixture, injection
placement — comes from the scenario's seeds, so a scenario's scores are
identical run to run.

Three execution modes, increasing in realism:

* ``engine`` — symptoms diagnosed inline on the application's engine
  (the unit of the paper's accuracy claims);
* ``service`` — the same symptoms submitted as jobs to a supervised
  :class:`~repro.service.RcaService` worker pool, optionally with
  chaos (worker crashes / delays / transient failures) scripted via
  :class:`~repro.service.faults.ServiceFaultInjector`;
* ``http`` — end to end: jobs POSTed to the sharded HTTP gateway and
  diagnoses decoded back from ``grca-diagnosis/1`` JSON.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.engine import Diagnosis
from ..core.serialize import diagnosis_from_dict, instance_to_dict
from ..simulation import (
    FeedFault,
    FeedFaultInjector,
    GroundTruth,
    SimulationResult,
    backbone_probe_month,
    bgp_flap_storm,
    bgp_month,
    cdn_month,
    pim_fortnight,
)
from ..topology.builder import TopologyParams
from .scenario import FailureInjection, Scenario

#: batch size for service/http job submission: one job per chunk keeps
#: per-job accounting meaningful without one HTTP round trip per symptom
JOB_CHUNK = 10


@dataclass
class RunOutcome:
    """Everything one scenario replay produced, ready for scoring."""

    scenario: Scenario
    diagnoses: List[Diagnosis]
    ground_truth: List[GroundTruth]
    n_symptoms: int
    start: float
    end: float
    #: injected feed impairments (empty for clean scenarios)
    feed_faults: List[FeedFault] = field(default_factory=list)
    #: wall-clock seconds per diagnosis (engine) or per job (service/http)
    latencies: List[float] = field(default_factory=list)
    #: total wall-clock seconds of the diagnosis phase
    wall_seconds: float = 0.0
    #: service-mode extras: metrics snapshot, chaos firing counts
    service_metrics: Optional[Dict[str, Any]] = None
    chaos_fired: Dict[str, int] = field(default_factory=dict)
    #: incident-dedupe rollup (scenarios tagged ``incidents`` only)
    incident_counts: Dict[str, int] = field(default_factory=dict)


def _seconds_per_day() -> float:
    return 86400.0


#: app key -> (simulation builder, application class path, size kwarg)
def _workloads():
    """The workload table, resolved lazily to keep imports cheap."""
    from ..apps import BackboneApp, BgpFlapApp, CdnApp, PimApp

    return {
        "bgp_flaps": (bgp_month, BgpFlapApp, "total_flaps"),
        "bgp_storm": (bgp_flap_storm, BgpFlapApp, "total_flaps"),
        "cdn": (cdn_month, CdnApp, "total_degradations"),
        "pim": (pim_fortnight, PimApp, "total_changes"),
        "backbone": (backbone_probe_month, BackboneApp, "total_losses"),
    }


#: workloads whose builders accept a ``feed_faults`` callback
FEED_FAULT_APPS = ("bgp_flaps", "bgp_storm", "cdn")


class ScenarioRunner:
    """Replays one :class:`Scenario` through the real pipeline."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock

    # ------------------------------------------------------------------
    # simulation

    def simulate(self, scenario: Scenario) -> SimulationResult:
        """Build the scenario's seeded simulation, feed faults applied."""
        workloads = _workloads()
        if scenario.app not in workloads:
            raise ValueError(f"unknown scenario app {scenario.app!r}")
        builder, _app_cls, size_kwarg = workloads[scenario.app]
        kwargs: Dict[str, Any] = {"seed": scenario.seed, size_kwarg: scenario.size}
        if scenario.duration_days is not None:
            kwargs["duration_days"] = scenario.duration_days
        overrides = scenario.topology_overrides()
        if overrides:
            kwargs["params"] = TopologyParams(
                seed=scenario.seed, **overrides
            )
        feed_injections = scenario.feed_injections()
        if feed_injections:
            if scenario.app not in FEED_FAULT_APPS:
                raise ValueError(
                    f"scenario {scenario.name!r}: workload {scenario.app!r} "
                    f"does not support feed-fault injection"
                )
            kwargs["feed_faults"] = self._feed_fault_script(feed_injections)
        return builder(**kwargs)

    @staticmethod
    def _feed_fault_script(
        injections: Sequence[FailureInjection],
    ) -> Callable[[FeedFaultInjector], None]:
        """Compile feed injections into a ``feed_faults`` callback.

        Injection offsets are relative to the scenario's data start;
        the callback resolves them against the emitter's ``BASE_EPOCH``
        (every workload starts there).
        """
        from ..simulation.telemetry import BASE_EPOCH

        def script(injector: FeedFaultInjector) -> None:
            for injection in injections:
                lo = BASE_EPOCH + injection.at_s
                hi = lo + injection.duration_s
                if injection.kind == "feed_outage":
                    injector.outage(injection.target, lo, hi)
                elif injection.kind == "feed_lag":
                    injector.lag(
                        injection.target, lo, hi,
                        delay=injection.param("delay", 900.0),
                    )
                elif injection.kind == "feed_corruption":
                    injector.corruption(
                        injection.target, lo, hi,
                        probability=injection.param("probability", 1.0),
                    )

        return script

    # ------------------------------------------------------------------
    # replay

    def run(self, scenario: Scenario) -> RunOutcome:
        """Simulate and diagnose one scenario; returns the raw outcome."""
        result = self.simulate(scenario)
        workloads = _workloads()
        _builder, app_cls, _size_kwarg = workloads[scenario.app]
        app = app_cls.build(result.platform())
        symptoms = app.find_symptoms(result.start, result.end)
        outcome = RunOutcome(
            scenario=scenario,
            diagnoses=[],
            ground_truth=list(result.ground_truth),
            n_symptoms=len(symptoms),
            start=result.start,
            end=result.end,
            feed_faults=self._collected_feed_faults(result),
        )
        t0 = self.clock()
        if scenario.mode == "engine":
            self._run_engine(app, symptoms, outcome)
        elif scenario.mode == "service":
            self._run_service(scenario, app, symptoms, outcome)
        else:  # http
            self._run_http(scenario, result, app, symptoms, outcome)
        outcome.wall_seconds = self.clock() - t0
        if "incidents" in scenario.tags:
            outcome.incident_counts = self._fold_incidents(outcome)
        return outcome

    @staticmethod
    def _fold_incidents(outcome: RunOutcome) -> Dict[str, int]:
        """Fold the diagnoses through the incident aggregator.

        Scenarios tagged ``incidents`` measure the dedupe layer: how
        many distinct incidents a symptom storm collapses into, and how
        hard the worst offender flapped.  Diagnoses are replayed in
        symptom order (service/http modes may complete jobs out of
        order) so the rollup is deterministic.
        """
        from ..incident import IncidentAggregator

        aggregator = IncidentAggregator(gap_seconds=3600.0)
        ordered = sorted(
            outcome.diagnoses,
            key=lambda d: (
                d.symptom.start,
                d.symptom.name,
                d.symptom.location.parts,
            ),
        )
        for diagnosis in ordered:
            aggregator.observe(diagnosis)
        aggregator.advance(outcome.end + 3600.0 + 1.0)
        incidents = aggregator.incidents()
        return {
            "incidents": len(incidents),
            "incident_flaps": sum(i.flap_count for i in incidents),
            "incident_flapping": sum(
                1 for i in incidents if i.flap_count > 1
            ),
            "incident_max_flap": max(
                (i.flap_count for i in incidents), default=0
            ),
        }

    def _collected_feed_faults(self, result: SimulationResult) -> List[FeedFault]:
        """Injected impairment intervals, read back off the registry.

        The simulation applied its faults through a private injector;
        the health registry's recorded intervals are the durable record
        (what a live transport monitor would have reported).
        """
        faults: List[FeedFault] = []
        registry = result.collector.health
        for source, feed in sorted(registry.feeds.items()):
            for interval in feed.history():
                end = interval.end if interval.end is not None else float("inf")
                faults.append(
                    FeedFault(
                        source=source,
                        kind=interval.state.value,
                        start=interval.start,
                        end=end,
                    )
                )
        return faults

    def _run_engine(self, app, symptoms, outcome: RunOutcome) -> None:
        """Inline diagnosis; one latency sample per symptom."""
        for symptom in symptoms:
            t0 = self.clock()
            outcome.diagnoses.append(app.engine.diagnose(symptom))
            outcome.latencies.append(self.clock() - t0)

    def _chaos_executor(self, scenario: Scenario, holder: Dict[str, Any]):
        """A ServiceFaultInjector executor honouring the chaos script."""
        from ..service.faults import ServiceFaultInjector
        from ..service.policy import TransientError

        injector = ServiceFaultInjector(
            lambda job, worker: holder["service"]._execute(job, worker)
        )
        for injection in scenario.service_injections():
            times = int(injection.param("times", 1))
            if injection.kind == "worker_crash":
                injector.crash_when(times=times)
            elif injection.kind == "worker_delay":
                injector.delay_when(
                    seconds=injection.param("delay", 0.05), times=times
                )
            elif injection.kind == "worker_fail":
                injector.fail_when(
                    lambda: TransientError("injected flaky execution"),
                    times=times,
                )
        holder["injector"] = injector
        return injector

    def _run_service(self, scenario: Scenario, app, symptoms, outcome: RunOutcome) -> None:
        """Job-pool diagnosis with optional chaos, one latency per job."""
        from ..service import RcaService
        from ..service.policy import RetryPolicy

        holder: Dict[str, Any] = {}
        options: Dict[str, Any] = {
            "workers": max(1, scenario.workers),
            "retry": RetryPolicy(max_attempts=3),
        }
        if scenario.service_injections():
            options["executor"] = self._chaos_executor(scenario, holder)
        service = RcaService(app.platform.store, health=app.platform.health, **options)
        holder["service"] = service
        service.register_app(scenario.app, app)
        service.start()
        try:
            jobs = []
            for chunk in _chunks(symptoms, JOB_CHUNK):
                jobs.append(
                    (self.clock(), service.submit_diagnosis(scenario.app, chunk))
                )
            for submitted, job in jobs:
                outcome.diagnoses.extend(job.outcome(timeout=120.0))
                outcome.latencies.append(self.clock() - submitted)
            outcome.service_metrics = service.metrics_snapshot()
            injector = holder.get("injector")
            if injector is not None:
                outcome.chaos_fired = {
                    rule.name: injector.fired(rule.name)
                    for rule in injector.rules
                }
        finally:
            service.shutdown(graceful=True)

    def _run_http(self, scenario: Scenario, result, app, symptoms, outcome: RunOutcome) -> None:
        """End-to-end: gateway submit, long-poll, JSON decode."""
        from ..service.http import RcaGateway

        del result  # the app's own platform carries the shared store
        router = app.platform.serve_sharded(
            {scenario.app: app},
            shards=max(1, scenario.shards),
            workers=max(1, scenario.workers),
        )
        gateway = RcaGateway(router).start()
        try:
            pending: List[Tuple[float, str]] = []
            for chunk in _chunks(symptoms, JOB_CHUNK):
                body = {
                    "app": scenario.app,
                    "symptoms": [instance_to_dict(s) for s in chunk],
                }
                doc = _http_json(
                    gateway.host, gateway.port, "POST", "/v1/jobs", body
                )
                pending.append((self.clock(), doc["job_id"]))
            for submitted, job_id in pending:
                doc = self._poll_done(gateway, job_id)
                outcome.latencies.append(self.clock() - submitted)
                outcome.diagnoses.extend(
                    diagnosis_from_dict(d) for d in doc.get("diagnoses", [])
                )
        finally:
            gateway.stop(shutdown_shards=True)

    @staticmethod
    def _poll_done(gateway, job_id: str, timeout: float = 120.0) -> Dict[str, Any]:
        """Long-poll one job until it finishes (bounded)."""
        deadline = time.monotonic() + timeout
        while True:
            doc = _http_json(
                gateway.host, gateway.port, "GET", f"/v1/jobs/{job_id}?wait=10"
            )
            if doc.get("finished"):
                if doc.get("state") != "done":
                    raise RuntimeError(
                        f"job {job_id} finished {doc.get('state')!r}: "
                        f"{doc.get('error')}"
                    )
                return doc
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} did not finish in {timeout}s")


def _chunks(items: Sequence, size: int) -> List[List]:
    """Split a sequence into consecutive chunks of at most ``size``."""
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def _http_json(
    host: str, port: int, method: str, path: str, body: Optional[dict] = None
) -> Dict[str, Any]:
    """One JSON request against the gateway; raises on non-2xx."""
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        doc = json.loads(raw) if raw else {}
        if response.status >= 400:
            raise RuntimeError(
                f"{method} {path} -> {response.status}: {doc}"
            )
        return doc
    finally:
        conn.close()
