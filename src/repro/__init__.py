"""G-RCA: a generic root cause analysis platform for service quality
management in large IP networks — reproduction.

The public API mirrors the paper's architecture (Fig. 1):

* :mod:`repro.collector` — the Data Collector: source parsers,
  normalization, the record store;
* :mod:`repro.topology` — the network element model and synthetic
  tier-1 topology generator;
* :mod:`repro.routing` — OSPF SPF/ECMP simulation, BGP decision
  emulation and the path service behind the spatial model;
* :mod:`repro.core` — events, locations, spatial-temporal correlation,
  diagnosis graphs, the generic RCA engine, rule-based and Bayesian
  reasoning, the Knowledge Library, the Correlation Tester and the
  Result Browser;
* :mod:`repro.apps` — the three RCA applications of Section III (BGP
  flaps, CDN service impairments, MVPN PIM adjacency changes);
* :mod:`repro.simulation` — the synthetic substitute for the paper's
  proprietary production telemetry (see DESIGN.md);
* :class:`repro.platform.GrcaPlatform` — wires everything together
  from collected data.

Quickstart::

    from repro import GrcaPlatform, bgp_month
    from repro.apps import BgpFlapApp

    result = bgp_month(total_flaps=500)        # simulate a month
    platform = result.platform()               # wire G-RCA from the data
    app = BgpFlapApp.build(platform)           # configure the RCA tool
    browser = app.run(result.start, result.end)
    print(browser.format_breakdown())          # the Table IV view
"""

from .collector import DataCollector, DataStore
from .core import (
    BayesianEngine,
    Diagnosis,
    DiagnosisGraph,
    DiagnosisRule,
    EventDefinition,
    EventInstance,
    EventLibrary,
    JoinLevel,
    KnowledgeLibrary,
    Location,
    LocationResolver,
    LocationType,
    RcaEngine,
    ResultBrowser,
    SpatialJoinRule,
    TemporalExpansion,
    TemporalJoinRule,
)
from .platform import GrcaPlatform
from .simulation import (
    bgp_month,
    cdn_month,
    cpu_bgp_study,
    linecard_crash,
    pim_fortnight,
)
from .topology import TopologyParams, build_topology

__version__ = "1.0.0"

__all__ = [
    "BayesianEngine",
    "DataCollector",
    "DataStore",
    "Diagnosis",
    "DiagnosisGraph",
    "DiagnosisRule",
    "EventDefinition",
    "EventInstance",
    "EventLibrary",
    "GrcaPlatform",
    "JoinLevel",
    "KnowledgeLibrary",
    "Location",
    "LocationResolver",
    "LocationType",
    "RcaEngine",
    "ResultBrowser",
    "SpatialJoinRule",
    "TemporalExpansion",
    "TemporalJoinRule",
    "TopologyParams",
    "bgp_month",
    "build_topology",
    "cdn_month",
    "cpu_bgp_study",
    "linecard_crash",
    "pim_fortnight",
]
