"""Trace aggregation and export: stage breakdowns and stable JSON.

Companions to :mod:`repro.obs.trace`: turn finished span trees into
the artifacts operators and benchmarks consume — a per-stage latency
breakdown (by span kind, using *exclusive* time so stages add up to at
most the root duration), percentile summaries across many diagnoses,
and a stable JSON document (:data:`~repro.obs.trace.TRACE_SCHEMA`)
for ``diagnose --trace`` and CI artifacts.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from .trace import TRACE_SCHEMA, Span


def stage_breakdown(root: Span) -> Dict[str, float]:
    """Exclusive seconds spent in each span kind under ``root``.

    Uses :attr:`~repro.obs.trace.Span.self_seconds`, so nested kinds
    (a ``store-query`` inside a ``retrieve`` inside a ``rule``) never
    double-count and the values sum to at most ``root.duration``.
    """
    totals: Dict[str, float] = {}
    for span in root.walk():
        totals[span.kind] = totals.get(span.kind, 0.0) + span.self_seconds
    return totals


def stage_counts(root: Span) -> Dict[str, int]:
    """Number of spans of each kind under ``root``."""
    counts: Dict[str, int] = {}
    for span in root.walk():
        counts[span.kind] = counts.get(span.kind, 0) + 1
    return counts


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def summarize_stages(
    breakdowns: Iterable[Dict[str, float]]
) -> Dict[str, Dict[str, float]]:
    """Per-stage count / mean / p50 / p95 / max across many breakdowns.

    Each input dictionary is one diagnosis's :func:`stage_breakdown`;
    the output is what ``BENCH_trace_stages.json`` records per stage.
    """
    samples: Dict[str, List[float]] = {}
    for breakdown in breakdowns:
        for stage, seconds in breakdown.items():
            samples.setdefault(stage, []).append(seconds)
    summary: Dict[str, Dict[str, float]] = {}
    for stage in sorted(samples):
        ordered = sorted(samples[stage])
        summary[stage] = {
            "count": len(ordered),
            "mean": sum(ordered) / len(ordered),
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "max": ordered[-1],
        }
    return summary


def trace_document(root: Span) -> Dict[str, object]:
    """The export envelope: schema tag plus the span tree."""
    return {"schema": TRACE_SCHEMA, "trace": root.to_dict()}


def trace_to_json(root: Span) -> str:
    """Stable (sorted-key, indented) JSON for one span tree."""
    return json.dumps(trace_document(root), indent=2, sort_keys=True) + "\n"


def write_trace(path: str, root: Span) -> None:
    """Write one span tree to ``path`` as stable JSON."""
    with open(path, "w") as handle:
        handle.write(trace_to_json(root))


def load_trace(path: str) -> Span:
    """Read a span tree exported by :func:`write_trace`."""
    with open(path) as handle:
        document = json.load(handle)
    if document.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"{path}: unsupported trace schema {document.get('schema')!r}"
        )
    return Span.from_dict(document["trace"])


def format_stage_lines(
    summary: Dict[str, Dict[str, float]], title: str = "stage breakdown"
) -> List[str]:
    """Human-readable per-stage latency lines for CLI output."""
    lines = [f"{title} (exclusive time per diagnosis):"]
    width = max((len(stage) for stage in summary), default=5)
    for stage, stats in summary.items():
        lines.append(
            f"  {stage:<{width}}  p50 {1000 * stats['p50']:.3f} ms  "
            f"p95 {1000 * stats['p95']:.3f} ms  "
            f"({stats['count']:.0f} samples)"
        )
    return lines
