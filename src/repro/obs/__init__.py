"""Observability: diagnosis tracing, stage breakdowns, trace export.

``repro.obs`` is the platform's answer to "where did this diagnosis
spend its time and which rule fired on which evidence?" — a span tree
per diagnosis mirroring the diagnosis-graph walk, produced only when a
caller opts in (the default :data:`~repro.obs.trace.NULL_TRACER` is a
no-op on the hot path).  See ``docs/observability.md``.
"""

from .report import (
    format_stage_lines,
    load_trace,
    stage_breakdown,
    stage_counts,
    summarize_stages,
    trace_document,
    trace_to_json,
    write_trace,
)
from .trace import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Span,
    SteppingClock,
    Tracer,
)

__all__ = [
    "NULL_TRACER",
    "TRACE_SCHEMA",
    "NullTracer",
    "Span",
    "SteppingClock",
    "Tracer",
    "format_stage_lines",
    "load_trace",
    "stage_breakdown",
    "stage_counts",
    "summarize_stages",
    "trace_document",
    "trace_to_json",
    "write_trace",
]
