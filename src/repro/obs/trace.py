"""Diagnosis tracing: span trees mirroring the diagnosis-graph walk.

The paper sells G-RCA on *explainability*: every conclusion is the
product of inspectable steps — a walk over the diagnosis graph, a
six-parameter temporal-join evaluation per rule (Fig. 3), location
conversions to a join level (Fig. 2), and a priority-reasoning pass
(Section II-D).  Once diagnoses run on a concurrent worker pool (PR 2)
those steps disappear into threads; this module makes them observable
again without giving up the hot path.

A :class:`Tracer` records a tree of :class:`Span` objects — one span
per diagnosis-graph node visit, with child spans for store queries,
temporal joins, spatial joins and reasoning — each carrying timing,
record counts and rule identity.  Tracing is strictly opt-in: the
default :data:`NULL_TRACER` is a no-op whose ``span()`` returns one
shared context-manager singleton, so untraced diagnoses allocate
nothing and time nothing.

Span kinds emitted by the engine stack (the trace "schema"):

========== =============================================================
kind        meaning
========== =============================================================
run         one whole CLI/benchmark run (root; covers every diagnosis)
job         one service job executed by a worker (root on that path)
advance     one streaming advance (root on the streaming path)
detect      symptom detection during a streaming advance
dispatch    hand-off of settled symptoms to a service dispatcher
diagnose    one symptom diagnosed by the engine
node        one diagnosis-graph node visit (the BFS frontier pop)
rule        one diagnosis rule (edge) evaluated out of a node
retrieve    one candidate retrieval (engine retrieval cache in front)
store-query one Data Collector table read issued by a retrieval
temporal-join  the Fig. 3 six-parameter joins for one rule's candidates
spatial-join   the Fig. 2 location conversions/joins for the survivors
reason      the rule-based reasoning / confidence scoring pass
========== =============================================================

Determinism: span *shape* (kinds, labels, order, counts — everything
except timings) is a pure function of the store contents and the
diagnosis graph, so golden tests pin :meth:`Span.shape`; timings are
deterministic too when the tracer is built with a fixed clock such as
:class:`SteppingClock`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Version tag embedded in every exported trace document.
TRACE_SCHEMA = "grca-trace/1"


@dataclass
class Span:
    """One timed step of a diagnosis, with children for its sub-steps.

    ``meta`` carries structural detail (record counts, rule identity,
    windows, priorities) — everything a golden test may pin; ``start``
    and ``end`` are clock readings and are excluded from
    :meth:`shape`.  Spans compare by value but tracing never relies on
    equality; identity matters only for leak tests.
    """

    kind: str
    label: str = ""
    start: float = 0.0
    end: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Inclusive wall time of this span (never negative)."""
        return max(0.0, self.end - self.start)

    @property
    def self_seconds(self) -> float:
        """Exclusive time: duration minus the children's durations.

        Summing ``self_seconds`` over a whole tree never exceeds the
        root's duration, which is what makes per-stage breakdowns add
        up (the acceptance property of ``diagnose --trace``).
        """
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def count(self, key: str, amount: int = 1) -> None:
        """Increment an integer counter in this span's ``meta``."""
        self.meta[key] = self.meta.get(key, 0) + amount

    def annotate(self, **meta: Any) -> None:
        """Merge keyword details into this span's ``meta``."""
        self.meta.update(meta)

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str) -> List["Span"]:
        """Every span of one kind in this subtree, in walk order."""
        return [span for span in self.walk() if span.kind == kind]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON export (see :data:`TRACE_SCHEMA`)."""
        return {
            "kind": self.kind,
            "label": self.label,
            "start": self.start,
            "duration": self.duration,
            "meta": dict(self.meta),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a span tree from its :meth:`to_dict` form."""
        return cls(
            kind=data["kind"],
            label=data.get("label", ""),
            start=data.get("start", 0.0),
            end=data.get("start", 0.0) + data.get("duration", 0.0),
            meta=dict(data.get("meta", {})),
            children=[cls.from_dict(child) for child in data.get("children", [])],
        )

    def shape(self) -> Dict[str, Any]:
        """The timing-free structure golden tests pin.

        Node order, kinds, labels and ``meta`` (rule ids, priorities,
        record counts, windows) are kept; ``start``/``duration`` are
        dropped — a golden trace must not depend on the machine.
        """
        return {
            "kind": self.kind,
            "label": self.label,
            "meta": dict(self.meta),
            "children": [child.shape() for child in self.children],
        }


class _NullSpan:
    """The span all no-op contexts yield: accepts and discards detail."""

    __slots__ = ()
    kind = ""
    label = ""
    meta: Dict[str, Any] = {}
    children: List[Span] = []

    def count(self, key: str, amount: int = 1) -> None:
        """Discard a counter increment."""

    def annotate(self, **meta: Any) -> None:
        """Discard annotations."""


class _NullSpanContext:
    """Reusable context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """The default tracer: does nothing, allocates nothing.

    Every tracing call site in the engine stack goes through this
    object when tracing is off; its methods return shared singletons so
    the per-call cost is one attribute lookup and one no-op call.
    """

    enabled = False

    @property
    def root(self) -> Optional[Span]:
        """Always ``None`` — nothing was recorded."""
        return None

    @property
    def roots(self) -> List[Span]:
        """Always empty."""
        return []

    def span(self, kind: str, label: str = "", **meta: Any) -> _NullSpanContext:
        """A no-op context manager (one shared instance)."""
        return _NULL_CONTEXT

    def count(self, key: str, amount: int = 1) -> None:
        """Discard a counter increment."""

    def annotate(self, **meta: Any) -> None:
        """Discard annotations."""

    def current(self) -> Optional[Span]:
        """No active span, ever."""
        return None


#: Shared no-op tracer used wherever tracing is off.
NULL_TRACER = NullTracer()


class _SpanContext:
    """Context manager pairing one ``begin`` with its ``finish``."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc: Any) -> bool:
        self._tracer.finish(self._span)
        return False


class Tracer:
    """Records a span tree for one unit of work.

    A tracer is *not* thread-safe and is never shared across jobs:
    every traced diagnosis (or service job, or streaming advance) gets
    its own instance, and the finished tree travels with the result —
    that is how spans survive thread and fork workers without
    cross-job leakage.

    ``clock`` is injectable; pass :class:`SteppingClock` for
    deterministic timings in tests.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @property
    def root(self) -> Optional[Span]:
        """The first top-level span recorded (usually the only one)."""
        return self.roots[0] if self.roots else None

    def span(self, kind: str, label: str = "", **meta: Any) -> _SpanContext:
        """Open a child span of the current span (context manager)."""
        return _SpanContext(self, self.begin(kind, label, **meta))

    def begin(self, kind: str, label: str = "", **meta: Any) -> Span:
        """Start a span explicitly; pair with :meth:`finish`."""
        span = Span(kind=kind, label=label, start=self.clock(), meta=dict(meta))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Optional[Span] = None) -> Span:
        """Close the current span (which must be ``span`` when given)."""
        if not self._stack:
            raise RuntimeError("no span is open")
        top = self._stack.pop()
        if span is not None and top is not span:
            raise RuntimeError(
                f"span nesting violated: closing {span.kind!r} but "
                f"{top.kind!r} is open"
            )
        top.end = self.clock()
        return top

    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def count(self, key: str, amount: int = 1) -> None:
        """Increment a counter on the innermost open span (if any)."""
        if self._stack:
            self._stack[-1].count(key, amount)

    def annotate(self, **meta: Any) -> None:
        """Merge details into the innermost open span (if any)."""
        if self._stack:
            self._stack[-1].meta.update(meta)


class SteppingClock:
    """A deterministic clock: each reading advances by a fixed step.

    Gives golden tests and doc examples reproducible timings —
    ``SteppingClock()`` reads 0, 1, 2, ... on successive calls.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self._now = start
        self.step = step

    def __call__(self) -> float:
        """Return the current reading, then advance by ``step``."""
        now = self._now
        self._now += self.step
        return now
