"""Normalization of names, identifiers and timestamps.

Section II-A: raw data "come from many devices and network management
systems provided by different vendors, all reporting different
statistics, from different time zones, and at varying intervals.  The
same device may be referenced in different ways by different systems or
at different network layers ...  The timestamps can be a mixture of
local time (depending on the time zone of the device), network time as
defined by the service provider, and GMT."

The Data Collector normalizes everything *at ingest*: all timestamps
become epoch seconds (UTC), all router names become canonical lowercase
short names, and all interface names become the canonical short form
(``se1/0`` instead of ``Serial1/0``).
"""

from __future__ import annotations

import datetime
import re
from typing import Dict, Optional

try:
    from zoneinfo import ZoneInfo

    _HAVE_ZONEINFO = True
except ImportError:  # pragma: no cover - python < 3.9
    _HAVE_ZONEINFO = False

#: Fallback fixed offsets (hours from UTC) when tzdata is unavailable.
_FIXED_OFFSETS = {
    "UTC": 0,
    "GMT": 0,
    "US/Eastern": -5,
    "US/Central": -6,
    "US/Mountain": -7,
    "US/Pacific": -8,
}

_INTERFACE_LONG_FORMS = {
    "serial": "se",
    "gigabitethernet": "gi",
    "tengigabitethernet": "te",
    "ethernet": "et",
    "pos": "pos",
    "loopback": "lo",
    "bundle": "bu",
    "multilink": "ml",
}

_TIMESTAMP_FORMATS = (
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%dT%H:%M:%S",
    "%b %d %H:%M:%S",  # syslog style, year-less
)


class NormalizationError(ValueError):
    """Raised when a record cannot be normalized."""


_QUOTED_FRAGMENT = re.compile(r"'[^']*'|\"[^\"]*\"")


def brief_reason(reason: str, max_length: int = 80) -> str:
    """Collapse a reject reason to a low-cardinality grouping key.

    Quoted fragments (the offending raw values) are stripped so that
    e.g. ``unparseable epoch 'NaN'`` and ``unparseable epoch 'x'``
    count under one reason, and the result is length-bounded so hostile
    input cannot bloat accounting structures.
    """
    collapsed = _QUOTED_FRAGMENT.sub("<…>", reason).strip()
    collapsed = " ".join(collapsed.split())
    return collapsed[:max_length] if collapsed else "unspecified"


def normalize_router_name(raw: str, aliases: Optional[Dict[str, str]] = None) -> str:
    """Canonicalize a router name.

    Strips domain suffixes (``nyc-per1.ispnet.example`` -> ``nyc-per1``),
    lowercases, and applies the alias table (systems that know a router
    only by its loopback or an inventory tag).
    """
    name = raw.strip().lower()
    name = name.split(".")[0]
    if aliases and name in aliases:
        name = aliases[name]
    if not name:
        raise NormalizationError(f"empty router name from {raw!r}")
    return name


def normalize_interface_name(raw: str) -> str:
    """Canonicalize an interface name to the short vendor form.

    ``Serial1/0`` -> ``se1/0``; ``GigabitEthernet0/2`` -> ``gi0/2``;
    already-short names pass through unchanged.
    """
    name = raw.strip().lower()
    match = re.match(r"([a-z]+)([\d/.:]+)$", name)
    if not match:
        raise NormalizationError(f"unparseable interface name {raw!r}")
    prefix, numbering = match.groups()
    prefix = _INTERFACE_LONG_FORMS.get(prefix, prefix)
    return f"{prefix}{numbering}"


def _zone_offset_seconds(timezone: str, when: datetime.datetime) -> float:
    if timezone in ("UTC", "GMT"):
        return 0.0
    if _HAVE_ZONEINFO:
        try:
            zone = ZoneInfo(timezone)
        except Exception:
            zone = None
        if zone is not None:
            offset = when.replace(tzinfo=zone).utcoffset()
            if offset is not None:
                return offset.total_seconds()
    if timezone in _FIXED_OFFSETS:
        return _FIXED_OFFSETS[timezone] * 3600.0
    raise NormalizationError(f"unknown timezone {timezone!r}")


def parse_timestamp(
    raw: str, timezone: str = "UTC", default_year: int = 2010
) -> float:
    """Parse a raw timestamp string to epoch seconds UTC.

    ``timezone`` is the zone the originating device stamps its logs in
    (from the router's ``clock timezone`` configuration).  Syslog-style
    year-less timestamps get ``default_year``.
    """
    text = raw.strip()
    parsed: Optional[datetime.datetime] = None
    for fmt in _TIMESTAMP_FORMATS:
        try:
            parsed = datetime.datetime.strptime(text, fmt)
            break
        except ValueError:
            continue
    if parsed is None:
        try:
            epoch = float(text)  # already epoch seconds
        except ValueError:
            raise NormalizationError(f"unparseable timestamp {raw!r}") from None
        # reject NaN/inf and values outside any plausible epoch range
        if not (0.0 <= epoch <= 4.0e9):
            raise NormalizationError(f"epoch timestamp out of range: {raw!r}")
        return epoch
    if parsed.year == 1900:
        parsed = parsed.replace(year=default_year)
    offset = _zone_offset_seconds(timezone, parsed)
    utc = parsed.replace(tzinfo=datetime.timezone.utc)
    return utc.timestamp() - offset


def epoch_to_text(timestamp: float) -> str:
    """Render epoch seconds as ``YYYY-mm-dd HH:MM:SS`` UTC (for display)."""
    dt = datetime.datetime.fromtimestamp(timestamp, tz=datetime.timezone.utc)
    return dt.strftime("%Y-%m-%d %H:%M:%S")


class DeviceRegistry:
    """Per-device normalization context: aliases and clock time zones.

    Populated from the config archive (each router's ``clock timezone``)
    and the inventory's alias table; consulted by every source parser.
    """

    def __init__(self) -> None:
        self._timezones: Dict[str, str] = {}
        self._aliases: Dict[str, str] = {}

    def register_device(self, name: str, timezone: str = "UTC") -> None:
        """Record a device's canonical name and clock time zone."""
        self._timezones[normalize_router_name(name)] = timezone

    def register_alias(self, alias: str, canonical: str) -> None:
        """Map an alternate identifier onto a canonical name."""
        self._aliases[alias.strip().lower()] = normalize_router_name(canonical)

    def canonical_name(self, raw: str) -> str:
        """Canonicalize a raw device name via the alias table."""
        return normalize_router_name(raw, self._aliases)

    def timezone_of(self, device: str) -> str:
        """The clock time zone a device stamps its logs in."""
        return self._timezones.get(self.canonical_name(device), "UTC")

    def parse_device_timestamp(self, raw: str, device: str) -> float:
        """Parse a timestamp stamped in the device's local clock."""
        return parse_timestamp(raw, self.timezone_of(device))
