"""Feed-health tracking for the Data Collector (Section VI robustness).

The deployed G-RCA ingests ~600 heterogeneous real-time feeds; any of
them can lag, drop out, or start emitting garbage.  This module makes
that degradation a first-class, observable condition:

* :class:`FeedHealth` tracks one source's last-record watermark,
  staleness, and accept/reject rates over a sliding window, and runs the
  ``HEALTHY -> LAGGING -> DEGRADED -> DOWN`` state machine, recording
  every non-healthy interval so later diagnoses can be annotated.
* :class:`HealthRegistry` holds one :class:`FeedHealth` per source and
  answers the engine's question "was this evidence source degraded while
  this rule's retrieval window was open?".
* :class:`FeedReader` wraps a feed transport with bounded retry,
  exponential backoff plus jitter, and a per-source circuit breaker so
  transient read failures never crash ingestion and persistent ones mark
  the feed ``DOWN``.
* :class:`DeadLetterBuffer` keeps a bounded buffer of rejected raw lines
  (with reasons) for later replay once a parser or feed is fixed.

Everything is injectable-clock friendly: no call here ever consults the
real time unless the default ``time.time``/``time.sleep`` are left in
place, so the whole chain is unit-testable without sleeping.
"""

from __future__ import annotations

import random
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple


class FeedState(Enum):
    """Health of one ingest feed, from best to worst."""

    HEALTHY = "healthy"
    LAGGING = "lagging"
    DEGRADED = "degraded"
    DOWN = "down"


#: States in which an evidence gap must be assumed (anything not healthy).
IMPAIRED_STATES = (FeedState.LAGGING, FeedState.DEGRADED, FeedState.DOWN)


@dataclass
class HealthConfig:
    """Tunables of the per-feed state machine."""

    #: watermark this far behind the observation clock -> LAGGING
    lag_seconds: float = 600.0
    #: no records for this long -> DOWN
    down_seconds: float = 3600.0
    #: rejected fraction over the window at/above this -> DEGRADED
    reject_degraded_ratio: float = 0.25
    #: reject-ratio verdicts need at least this many lines in the window
    min_window_lines: int = 20
    #: sliding accounting window for accept/reject rates
    window_seconds: float = 3600.0


@dataclass
class HealthInterval:
    """One contiguous span a feed spent in a non-healthy state.

    ``end`` is ``None`` while the condition is still open.
    """

    state: FeedState
    start: float
    end: Optional[float] = None

    def overlaps(self, lo: float, hi: float) -> bool:
        """True when [lo, hi] intersects this interval."""
        if self.end is not None and self.end < lo:
            return False
        return self.start <= hi

    def describe(self) -> str:
        """Render e.g. ``DOWN [1200, 3400]`` / ``DOWN [1200, ...)``."""
        end = f"{self.end:.0f}" if self.end is not None else "..."
        return f"{self.state.value.upper()} [{self.start:.0f}, {end}]"


class FeedHealth:
    """Watermark, rates and state machine for one ingest source."""

    def __init__(self, source: str, config: Optional[HealthConfig] = None) -> None:
        self.source = source
        self.config = config or HealthConfig()
        #: timestamp of the newest accepted record (data time)
        self.watermark: Optional[float] = None
        #: observation clock of the last observe/tick call
        self.last_observed: Optional[float] = None
        self._window: Deque[Tuple[float, int, int]] = deque()
        self._state = FeedState.HEALTHY
        self._history: List[HealthInterval] = []
        #: circuit breaker (or operator) override: feed is known down
        self._forced_down = False

    # ------------------------------------------------------------------
    # observations

    def observe(
        self,
        now: float,
        accepted: int,
        rejected: int,
        watermark: Optional[float] = None,
    ) -> FeedState:
        """Account one ingest batch and re-evaluate the state."""
        if watermark is not None and (
            self.watermark is None or watermark > self.watermark
        ):
            self.watermark = watermark
        if accepted or rejected:
            self._window.append((now, accepted, rejected))
        return self.reassess(now)

    def reassess(self, now: float) -> FeedState:
        """Re-run the state machine against the observation clock."""
        self.last_observed = max(now, self.last_observed or now)
        self._trim_window(now)
        self._transition(self._compute_state(now), now)
        return self._state

    def force_down(self, now: float) -> None:
        """Mark the feed DOWN regardless of data (circuit breaker open)."""
        self._forced_down = True
        self.reassess(now)

    def clear_forced_down(self, now: float) -> None:
        """Lift a forced-DOWN mark (circuit breaker closed again)."""
        self._forced_down = False
        self.reassess(now)

    def record_outage(
        self, start: float, end: Optional[float], state: FeedState = FeedState.DOWN
    ) -> None:
        """Record an externally known impairment interval directly.

        Batch replays have no live observation clock; a transport-level
        monitor (or a fault injector standing in for one) reports the
        outage interval it saw instead.
        """
        self._history.append(HealthInterval(state, start, end))
        self._history.sort(key=lambda i: i.start)

    # ------------------------------------------------------------------
    # views

    @property
    def state(self) -> FeedState:
        """The state as of the last observation."""
        return self._state

    @property
    def staleness(self) -> Optional[float]:
        """Observation clock minus watermark, when both are known."""
        if self.watermark is None or self.last_observed is None:
            return None
        return self.last_observed - self.watermark

    def window_counts(self) -> Tuple[int, int]:
        """(accepted, rejected) line counts over the sliding window."""
        accepted = sum(a for _, a, _ in self._window)
        rejected = sum(r for _, _, r in self._window)
        return accepted, rejected

    def reject_ratio(self) -> float:
        """Rejected fraction of the sliding window (0.0 when empty)."""
        accepted, rejected = self.window_counts()
        total = accepted + rejected
        return rejected / total if total else 0.0

    def impaired_intervals(self, lo: float, hi: float) -> List[HealthInterval]:
        """Non-healthy intervals overlapping [lo, hi], oldest first."""
        return [i for i in self._history if i.overlaps(lo, hi)]

    def history(self) -> List[HealthInterval]:
        """All recorded non-healthy intervals, oldest first."""
        return list(self._history)

    # ------------------------------------------------------------------

    def _trim_window(self, now: float) -> None:
        horizon = now - self.config.window_seconds
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()

    def _compute_state(self, now: float) -> FeedState:
        if self._forced_down:
            return FeedState.DOWN
        accepted, rejected = self.window_counts()
        if (
            accepted + rejected >= self.config.min_window_lines
            and self.reject_ratio() >= self.config.reject_degraded_ratio
        ):
            return FeedState.DEGRADED
        if self.watermark is None:
            return FeedState.HEALTHY  # nothing expected yet
        staleness = now - self.watermark
        if staleness >= self.config.down_seconds:
            return FeedState.DOWN
        if staleness >= self.config.lag_seconds:
            return FeedState.LAGGING
        return FeedState.HEALTHY

    def _transition(self, new_state: FeedState, now: float) -> None:
        if new_state is self._state:
            return
        if self._history and self._history[-1].end is None:
            self._history[-1].end = now
        if new_state is not FeedState.HEALTHY:
            # staleness-driven conditions began when the data stopped,
            # not when they were noticed
            start = now
            if new_state in (FeedState.LAGGING, FeedState.DOWN):
                if self.watermark is not None and not self._forced_down:
                    start = max(self.watermark, self._history[-1].end if self._history else self.watermark)
            self._history.append(HealthInterval(new_state, min(start, now)))
        self._state = new_state


class HealthRegistry:
    """Per-source :class:`FeedHealth`, shared by collector and engine."""

    def __init__(self, config: Optional[HealthConfig] = None) -> None:
        self.config = config or HealthConfig()
        self.feeds: Dict[str, FeedHealth] = {}

    def feed(self, source: str) -> FeedHealth:
        """The tracker for one source, created on first use."""
        if source not in self.feeds:
            self.feeds[source] = FeedHealth(source, self.config)
        return self.feeds[source]

    def observe(
        self,
        source: str,
        now: float,
        accepted: int,
        rejected: int,
        watermark: Optional[float] = None,
    ) -> FeedState:
        """Account one ingest batch for a source."""
        return self.feed(source).observe(now, accepted, rejected, watermark)

    def tick(self, now: float) -> None:
        """Re-evaluate every tracked feed (silence is also a signal)."""
        for feed in self.feeds.values():
            feed.reassess(now)

    def state(self, source: str) -> FeedState:
        """Current state of a source (HEALTHY when never observed)."""
        feed = self.feeds.get(source)
        return feed.state if feed is not None else FeedState.HEALTHY

    def mark_down(self, source: str, now: float) -> None:
        """Circuit-breaker hook: the source's transport is failing."""
        self.feed(source).force_down(now)

    def mark_restored(self, source: str, now: float) -> None:
        """Circuit-breaker hook: the source's transport recovered."""
        self.feed(source).clear_forced_down(now)

    def record_outage(
        self,
        source: str,
        start: float,
        end: Optional[float],
        state: FeedState = FeedState.DOWN,
    ) -> None:
        """Record an externally known impairment interval for a source."""
        self.feed(source).record_outage(start, end, state)

    def impaired_intervals(self, source: str, lo: float, hi: float) -> List[HealthInterval]:
        """Non-healthy intervals of a source overlapping [lo, hi]."""
        feed = self.feeds.get(source)
        return feed.impaired_intervals(lo, hi) if feed is not None else []

    def summary(self) -> Dict[str, FeedState]:
        """Source -> current state, for dashboards and the CLI."""
        return {name: feed.state for name, feed in sorted(self.feeds.items())}


# ---------------------------------------------------------------------------
# data-source name mapping

#: EventDefinition.data_source labels -> collector source (table) names.
DATA_SOURCE_TABLES: Dict[str, str] = {
    "syslog": "syslog",
    "snmp": "snmp",
    "ospf monitor": "ospfmon",
    "bgp monitor": "bgpmon",
    "tacacs": "tacacs",
    "layer-1 device log": "layer1",
    "performance monitor": "perfmon",
    "netflow": "netflow",
    "workflow": "workflow",
    "workflow log": "workflow",
    "server logs": "cdn",
    "cdn control plane": "cdn",
    "cdn": "cdn",
}


def canonical_source(data_source: str) -> Optional[str]:
    """Map an event definition's free-text data source to a feed name.

    Returns ``None`` for labels that do not correspond to an ingest feed
    (e.g. derived events with no direct table behind them).
    """
    key = (data_source or "").strip().lower()
    return DATA_SOURCE_TABLES.get(key)


# ---------------------------------------------------------------------------
# retry / backoff / circuit-breaker reader


class FeedReadError(RuntimeError):
    """All retries for one poll failed; the batch was not delivered."""


class CircuitOpenError(RuntimeError):
    """The per-source circuit breaker is open; polls are refused."""


@dataclass
class RetryConfig:
    """Tunables for :class:`FeedReader`."""

    #: attempts per poll (first try + retries)
    max_attempts: int = 4
    #: first backoff delay, seconds
    backoff_base: float = 1.0
    #: multiplier applied per further retry
    backoff_factor: float = 2.0
    #: backoff ceiling, seconds
    backoff_max: float = 60.0
    #: extra random fraction of the delay added as jitter
    jitter: float = 0.1
    #: consecutive failed attempts that open the circuit breaker
    failure_threshold: int = 8
    #: open -> half-open probe after this long, seconds
    reset_timeout: float = 300.0


class FeedReader:
    """Fault-tolerant wrapper around one feed's transport.

    ``transport`` is any zero-argument callable returning an iterable of
    raw lines (one poll); it may raise on transient failure.  A poll
    retries with exponential backoff plus jitter; when consecutive
    failed attempts reach ``failure_threshold`` the circuit opens, the
    registry (when given) marks the feed ``DOWN``, and further polls
    fail fast with :class:`CircuitOpenError` until ``reset_timeout``
    passes and a half-open probe is allowed.  No batch is ever dropped
    silently: a poll either returns the transport's lines or raises.
    """

    def __init__(
        self,
        source: str,
        transport: Callable[[], Iterable[str]],
        config: Optional[RetryConfig] = None,
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        registry: Optional[HealthRegistry] = None,
    ) -> None:
        self.source = source
        self.transport = transport
        self.config = config or RetryConfig()
        self.clock = clock
        self.sleep = sleep
        self.rng = rng or random.Random(source)
        self.registry = registry
        self.consecutive_failures = 0
        self._opened_at: Optional[float] = None

    @property
    def circuit_open(self) -> bool:
        """True while the breaker refuses polls (before the probe time)."""
        return self._opened_at is not None

    def poll(self) -> List[str]:
        """One read through retry/backoff; raises when the feed is down."""
        if self._opened_at is not None:
            if self.clock() - self._opened_at < self.config.reset_timeout:
                raise CircuitOpenError(
                    f"feed {self.source!r}: circuit open, next probe in "
                    f"{self.config.reset_timeout - (self.clock() - self._opened_at):.0f}s"
                )
            # half-open: allow exactly one probe attempt, no retries
            return self._attempt_probe()
        delay = self.config.backoff_base
        last_error: Optional[BaseException] = None
        for attempt in range(self.config.max_attempts):
            try:
                lines = list(self.transport())
            except Exception as exc:  # noqa: BLE001 - transport is arbitrary
                last_error = exc
                self.consecutive_failures += 1
                if self.consecutive_failures >= self.config.failure_threshold:
                    self._open_circuit()
                    raise CircuitOpenError(
                        f"feed {self.source!r}: {self.consecutive_failures} "
                        f"consecutive failures, circuit opened"
                    ) from exc
                if attempt + 1 < self.config.max_attempts:
                    self.sleep(self._backoff_delay(delay))
                    delay = min(
                        delay * self.config.backoff_factor, self.config.backoff_max
                    )
                continue
            self._note_success()
            return lines
        raise FeedReadError(
            f"feed {self.source!r}: {self.config.max_attempts} attempts failed"
        ) from last_error

    # ------------------------------------------------------------------

    def _attempt_probe(self) -> List[str]:
        try:
            lines = list(self.transport())
        except Exception as exc:  # noqa: BLE001
            self.consecutive_failures += 1
            self._opened_at = self.clock()  # stay open, restart the timer
            raise CircuitOpenError(
                f"feed {self.source!r}: half-open probe failed"
            ) from exc
        self._note_success()
        return lines

    def _note_success(self) -> None:
        self.consecutive_failures = 0
        if self._opened_at is not None:
            self._opened_at = None
            if self.registry is not None:
                self.registry.mark_restored(self.source, self.clock())

    def _open_circuit(self) -> None:
        self._opened_at = self.clock()
        if self.registry is not None:
            self.registry.mark_down(self.source, self.clock())

    def _backoff_delay(self, delay: float) -> float:
        return delay * (1.0 + self.config.jitter * self.rng.random())


# ---------------------------------------------------------------------------
# dead letters


@dataclass(frozen=True)
class DeadLetter:
    """One rejected raw line, kept for replay."""

    source: str
    line: str
    reason: str


class DeadLetterBuffer:
    """Bounded FIFO of rejected lines; oldest entries drop when full."""

    def __init__(self, capacity: int = 10_000) -> None:
        self.capacity = capacity
        self._entries: Deque[DeadLetter] = deque(maxlen=capacity)
        #: entries evicted because the buffer was full
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, source: str, line: str, reason: str) -> None:
        """Capture one rejected line (evicting the oldest when full)."""
        if len(self._entries) == self.capacity:
            self.dropped += 1
        self._entries.append(DeadLetter(source=source, line=line, reason=reason))

    def entries(self, source: Optional[str] = None) -> List[DeadLetter]:
        """Buffered entries, optionally restricted to one source."""
        if source is None:
            return list(self._entries)
        return [e for e in self._entries if e.source == source]

    def reason_counts(self) -> Counter:
        """Counter of reject reasons across the buffer."""
        return Counter(e.reason for e in self._entries)

    def drain(self) -> List[DeadLetter]:
        """Remove and return everything buffered (oldest first)."""
        drained = list(self._entries)
        self._entries.clear()
        return drained

    def replay_into(self, collector) -> Dict[str, Tuple[int, int]]:
        """Re-ingest every buffered line through the collector.

        Returns per-source ``(accepted, rejected)`` deltas for the
        replay.  Lines that fail again are re-captured by the parsers'
        dead-letter hook (the buffer is drained first, so nothing loops).
        """
        by_source: Dict[str, List[str]] = {}
        for entry in self.drain():
            by_source.setdefault(entry.source, []).append(entry.line)
        outcome: Dict[str, Tuple[int, int]] = {}
        for source, lines in sorted(by_source.items()):
            stats = collector.parsers[source].stats
            before = (stats.accepted, stats.rejected)
            collector.ingest(source, lines)
            outcome[source] = (
                stats.accepted - before[0],
                stats.rejected - before[1],
            )
        return outcome
