"""Data Collector substrate: ingest, normalization and storage.

The :class:`DataCollector` facade wires a :class:`DeviceRegistry`, a
:class:`DataStore` and one parser per data source, mirroring the Fig. 1
component that "pulls all the data together, normalizes them so that
they can be readily correlated, and stores them in database tables".

It also carries the degradation-awareness substrate: a
:class:`~repro.collector.health.HealthRegistry` observing every ingest
batch (watermarks, accept/reject rates, the feed state machine) and a
:class:`~repro.collector.health.DeadLetterBuffer` capturing rejected
raw lines for later replay.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .health import (
    CircuitOpenError,
    DeadLetter,
    DeadLetterBuffer,
    FeedHealth,
    FeedReader,
    FeedReadError,
    FeedState,
    HealthConfig,
    HealthInterval,
    HealthRegistry,
    RetryConfig,
    canonical_source,
)
from .normalizer import (
    DeviceRegistry,
    NormalizationError,
    brief_reason,
    epoch_to_text,
    normalize_interface_name,
    normalize_router_name,
    parse_timestamp,
)
from .sources import (
    BgpMonParser,
    CdnLogParser,
    Layer1Parser,
    NetflowParser,
    OspfMonParser,
    ParseStats,
    PerfMonParser,
    SnmpParser,
    SourceParser,
    SyslogParser,
    TacacsParser,
    WorkflowParser,
)
from .store import DataStore, Record, Table


class DataCollector:
    """All source parsers over one shared store and registry."""

    def __init__(
        self,
        registry: DeviceRegistry = None,
        store: DataStore = None,
        health: Optional[HealthRegistry] = None,
        dead_letters: Optional[DeadLetterBuffer] = None,
    ) -> None:
        self.registry = registry or DeviceRegistry()
        self.store = store or DataStore()
        self.health = health or HealthRegistry()
        self.dead_letters = dead_letters if dead_letters is not None else DeadLetterBuffer()
        self.parsers: Dict[str, SourceParser] = {}
        for parser_cls in (
            SyslogParser,
            SnmpParser,
            OspfMonParser,
            BgpMonParser,
            TacacsParser,
            Layer1Parser,
            PerfMonParser,
            NetflowParser,
            WorkflowParser,
            CdnLogParser,
        ):
            parser = parser_cls(store=self.store, registry=self.registry)
            parser.dead_letters = self.dead_letters
            self.parsers[parser.table_name] = parser

    def ingest(
        self, source: str, lines: Iterable[str], now: Optional[float] = None
    ) -> ParseStats:
        """Feed raw lines from one source through its parser.

        ``now`` is the observation clock for feed-health accounting
        (a streaming consumer passes its arrival cutoff); when omitted,
        the batch's own watermark stands in, so batch replays of clean
        historical data never look stale.
        """
        if source not in self.parsers:
            raise KeyError(f"unknown data source {source!r}")
        stats = self.parsers[source].stats
        before_accepted, before_rejected = stats.accepted, stats.rejected
        self.parsers[source].ingest(lines)
        observed_at = now if now is not None else stats.watermark
        if observed_at is not None:
            self.health.observe(
                source,
                observed_at,
                stats.accepted - before_accepted,
                stats.rejected - before_rejected,
                stats.watermark,
            )
        return stats

    def tick(self, now: float) -> None:
        """Re-evaluate feed health at a clock tick (silence counts too)."""
        self.health.tick(now)

    def replay_dead_letters(self) -> Dict[str, tuple]:
        """Re-ingest everything in the dead-letter buffer; see
        :meth:`~repro.collector.health.DeadLetterBuffer.replay_into`."""
        return self.dead_letters.replay_into(self)

    def summary(self) -> Dict[str, int]:
        """Record counts per table (the collector's dashboard view)."""
        return self.store.summary()

    def feed_stats_lines(self) -> List[str]:
        """One formatted ``stats`` line per source that saw any input,
        plus per-table storage lines (backend identity, tail-buffer and
        merge counters) so operators can see which engine served."""
        lines = []
        for source, parser in sorted(self.parsers.items()):
            stats = parser.stats
            if stats.accepted == 0 and stats.rejected == 0:
                continue
            state = self.health.state(source).value
            line = (
                f"stats {source:<8} state={state:<8} accepted={stats.accepted} "
                f"rejected={stats.rejected}"
            )
            top = stats.top_reasons(3)
            if top:
                reasons = ", ".join(f"{reason} x{count}" for reason, count in top)
                line += f"  top-rejects: {reasons}"
            lines.append(line)
        if self.dead_letters.dropped or len(self.dead_letters):
            lines.append(
                f"stats dead-letters buffered={len(self.dead_letters)} "
                f"dropped={self.dead_letters.dropped}"
            )
        storage = self.store.storage_summary()
        if storage:
            lines.append(
                f"stats storage backend={self.store.backend_name} "
                f"tables={len(storage)} records={self.store.total_records()}"
            )
            for name, table_stats in sorted(storage.items()):
                detail = " ".join(
                    f"{key}={value}"
                    for key, value in table_stats.items()
                    if key not in ("backend", "path")
                )
                lines.append(f"stats storage {name:<8} {detail}")
        return lines


__all__ = [
    "CircuitOpenError",
    "DataCollector",
    "DataStore",
    "DeadLetter",
    "DeadLetterBuffer",
    "DeviceRegistry",
    "FeedHealth",
    "FeedReadError",
    "FeedReader",
    "FeedState",
    "HealthConfig",
    "HealthInterval",
    "HealthRegistry",
    "NormalizationError",
    "Record",
    "RetryConfig",
    "Table",
    "brief_reason",
    "canonical_source",
    "epoch_to_text",
    "normalize_interface_name",
    "normalize_router_name",
    "parse_timestamp",
]
