"""Data Collector substrate: ingest, normalization and storage.

The :class:`DataCollector` facade wires a :class:`DeviceRegistry`, a
:class:`DataStore` and one parser per data source, mirroring the Fig. 1
component that "pulls all the data together, normalizes them so that
they can be readily correlated, and stores them in database tables".
"""

from __future__ import annotations

from typing import Dict, Iterable

from .normalizer import (
    DeviceRegistry,
    NormalizationError,
    epoch_to_text,
    normalize_interface_name,
    normalize_router_name,
    parse_timestamp,
)
from .sources import (
    BgpMonParser,
    CdnLogParser,
    Layer1Parser,
    NetflowParser,
    OspfMonParser,
    ParseStats,
    PerfMonParser,
    SnmpParser,
    SourceParser,
    SyslogParser,
    TacacsParser,
    WorkflowParser,
)
from .store import DataStore, Record, Table


class DataCollector:
    """All source parsers over one shared store and registry."""

    def __init__(self, registry: DeviceRegistry = None, store: DataStore = None) -> None:
        self.registry = registry or DeviceRegistry()
        self.store = store or DataStore()
        self.parsers: Dict[str, SourceParser] = {}
        for parser_cls in (
            SyslogParser,
            SnmpParser,
            OspfMonParser,
            BgpMonParser,
            TacacsParser,
            Layer1Parser,
            PerfMonParser,
            NetflowParser,
            WorkflowParser,
            CdnLogParser,
        ):
            parser = parser_cls(store=self.store, registry=self.registry)
            self.parsers[parser.table_name] = parser

    def ingest(self, source: str, lines: Iterable[str]) -> ParseStats:
        """Feed raw lines from one source through its parser."""
        if source not in self.parsers:
            raise KeyError(f"unknown data source {source!r}")
        return self.parsers[source].ingest(lines)

    def summary(self) -> Dict[str, int]:
        """Record counts per table (the collector's dashboard view)."""
        return self.store.summary()


__all__ = [
    "DataCollector",
    "DataStore",
    "DeviceRegistry",
    "NormalizationError",
    "Record",
    "Table",
    "epoch_to_text",
    "normalize_interface_name",
    "normalize_router_name",
    "parse_timestamp",
]
