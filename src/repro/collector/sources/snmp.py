"""SNMP poller parser.

The deployed collector ingests "hundreds of millions" of SNMP records a
day: 5-minute interval MIB counters.  The poller export format here is a
pipe-separated row per sample::

    2010-01-05 10:25:00|nyc-per1|cpu_util_5min||72
    2010-01-05 10:25:00|nyc-per1|link_util|se1/0|83.5
    2010-01-05 10:25:00|nyc-per1|corrupted_packets|se1/0|140

SNMP pollers stamp rows in network (UTC) time already, so only name
normalization applies.  Table I's SNMP-derived events — "CPU high
(average)", "Link congestion alarm", "Link loss alarm" — threshold these
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..normalizer import (
    NormalizationError,
    normalize_interface_name,
    parse_timestamp,
)
from .base import SourceParser

#: Metric names exported by the poller.
METRIC_CPU = "cpu_util_5min"
METRIC_LINK_UTIL = "link_util"
METRIC_CORRUPTED = "corrupted_packets"
METRIC_OVERFLOW = "overflow_packets"

_KNOWN_METRICS = {METRIC_CPU, METRIC_LINK_UTIL, METRIC_CORRUPTED, METRIC_OVERFLOW}

#: Poll interval of the SNMP collector (Table I thresholds are per 5 min).
POLL_INTERVAL_SECONDS = 300.0


@dataclass
class SnmpParser(SourceParser):
    """Parses poller export rows into the ``snmp`` table."""

    table_name: str = "snmp"

    def parse_line(self, line: str) -> None:
        """Parse one raw line and insert the normalized row."""
        parts = line.strip().split("|")
        if len(parts) != 5:
            raise NormalizationError("expected 5 pipe-separated fields")
        raw_time, raw_router, metric, raw_interface, raw_value = parts
        if metric not in _KNOWN_METRICS:
            raise NormalizationError(f"unknown metric {metric!r}")
        timestamp = parse_timestamp(raw_time, "UTC")
        router = self.registry.canonical_name(raw_router)
        value = float(raw_value)
        fields = {"router": router, "metric": metric, "value": value}
        if raw_interface:
            fields["interface"] = normalize_interface_name(raw_interface)
        self.insert(timestamp, **fields)


def render_snmp_row(
    timestamp: float, router: str, metric: str, interface: str, value: float
) -> str:
    """Produce one poller export row (UTC timestamps)."""
    from ..normalizer import epoch_to_text

    return f"{epoch_to_text(timestamp)}|{router}|{metric}|{interface}|{value}"
