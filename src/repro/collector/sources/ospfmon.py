"""OSPF route-monitor parser (the OSPFMon feed of reference [9]).

One row per link-weight update flooded in the IGP::

    1262692800.0|nyc-cr1--chi-cr1:10.0.0.0|65535

Rows stamp in epoch seconds (the monitor normalizes to network time).
Table I's "OSPF re-convergence event", "Router Cost In/Out",
"Link Cost Out/Down" and "Link Cost In/Up" events are all inferred from
this table; the OSPF simulator replays it to reconstruct historical
paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...routing.ospf import WeightChange, WeightHistory
from ..normalizer import NormalizationError
from ..store import DataStore
from .base import SourceParser, parse_epoch


@dataclass
class OspfMonParser(SourceParser):
    """Parses weight updates into the ``ospfmon`` table."""

    table_name: str = "ospfmon"

    def parse_line(self, line: str) -> None:
        """Parse one raw line and insert the normalized row."""
        parts = line.strip().split("|")
        if len(parts) != 3:
            raise NormalizationError("expected 3 pipe-separated fields")
        raw_time, link, raw_weight = parts
        if not link:
            raise NormalizationError("empty link identifier")
        timestamp = parse_epoch(raw_time)
        weight = int(raw_weight)
        if weight < 0:
            raise NormalizationError("negative weight")
        self.insert(timestamp, link=link, weight=weight)


def render_ospfmon_row(timestamp: float, link: str, weight: int) -> str:
    """Render one OSPFMon weight-update row."""
    return f"{timestamp}|{link}|{weight}"


def weight_history_from_store(store: DataStore) -> WeightHistory:
    """Build the routing simulator's weight history from the table."""
    history = WeightHistory()
    for record in store.table("ospfmon").scan():
        history.record(
            WeightChange(record.timestamp, record["link"], record["weight"])
        )
    return history
