"""Remaining data-source parsers: TACACS command logs, layer-1 device
logs, end-to-end performance measurements, NetFlow samples, workflow
(provisioning) logs, and CDN server logs.

Each is a thin line format chosen to look like the corresponding
production export; all normalize names and timestamps at ingest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..normalizer import (
    NormalizationError,
    normalize_interface_name,
    parse_timestamp,
)
from .base import SourceParser, parse_epoch

# ---------------------------------------------------------------------------
# TACACS command accounting: who typed what on which router.
#
#   2010-01-05 10:25:00|nyc-cr1|op17|conf t; router ospf 1; ... cost 65535
#
# Table I's "Command to Cost In/Out Links" events come from this table.


@dataclass
class TacacsParser(SourceParser):
    table_name: str = "tacacs"

    def parse_line(self, line: str) -> None:
        """Parse one raw line and insert the normalized row."""
        parts = line.strip().split("|", 3)
        if len(parts) != 4:
            raise NormalizationError("expected 4 pipe-separated fields")
        raw_time, raw_router, user, command = parts
        timestamp = parse_timestamp(raw_time, "UTC")
        router = self.registry.canonical_name(raw_router)
        fields = {"router": router, "user": user, "command": command}
        interface = _interface_in_command(command)
        if interface:
            fields["interface"] = interface
        self.insert(timestamp, **fields)


def _interface_in_command(command: str):
    import re

    match = re.search(r"interface\s+([A-Za-z]+[\d/.:]+)", command)
    if match:
        try:
            return normalize_interface_name(match.group(1))
        except NormalizationError:
            return None
    return None


def render_tacacs_row(timestamp: float, router: str, user: str, command: str) -> str:
    """Render one TACACS command-log row."""
    from ..normalizer import epoch_to_text

    return f"{epoch_to_text(timestamp)}|{router}|{user}|{command}"


# ---------------------------------------------------------------------------
# Layer-1 device logs: SONET / optical-mesh restoration events.
#
#   1262692800.0|adm-nyc-chi-1|sonet_restoration|c-nyc-cr1-chi-cr1-...
#
# Table I: "Regular optical mesh network restoration", "Fast optical
# mesh network restoration", "SONET restoration".

EVENT_SONET = "sonet_restoration"
EVENT_MESH_REGULAR = "mesh_restoration_regular"
EVENT_MESH_FAST = "mesh_restoration_fast"

_LAYER1_EVENTS = {EVENT_SONET, EVENT_MESH_REGULAR, EVENT_MESH_FAST}


@dataclass
class Layer1Parser(SourceParser):
    table_name: str = "layer1"

    def parse_line(self, line: str) -> None:
        """Parse one raw line and insert the normalized row."""
        parts = line.strip().split("|")
        if len(parts) != 4:
            raise NormalizationError("expected 4 pipe-separated fields")
        raw_time, device, event, circuit = parts
        if event not in _LAYER1_EVENTS:
            raise NormalizationError(f"unknown layer-1 event {event!r}")
        self.insert(
            parse_epoch(raw_time),
            device=device.strip().lower(),
            event=event,
            circuit=circuit,
        )


def render_layer1_row(timestamp: float, device: str, event: str, circuit: str) -> str:
    """Render one layer-1 device log row."""
    return f"{timestamp}|{device}|{event}|{circuit}"


# ---------------------------------------------------------------------------
# End-to-end performance monitor: probes between PoP pairs, plus CDN
# agent measurements (Keynote-style).
#
#   1262692800.0|nyc-per1|chi-per1|delay_ms|31.5
#   1262692800.0|agent-bos|dc-nyc-srv1|rtt_ms|180.0

METRIC_DELAY = "delay_ms"
METRIC_LOSS = "loss_pct"
METRIC_THROUGHPUT = "throughput_mbps"
METRIC_RTT = "rtt_ms"

_PERF_METRICS = {METRIC_DELAY, METRIC_LOSS, METRIC_THROUGHPUT, METRIC_RTT}


@dataclass
class PerfMonParser(SourceParser):
    table_name: str = "perfmon"

    def parse_line(self, line: str) -> None:
        """Parse one raw line and insert the normalized row."""
        parts = line.strip().split("|")
        if len(parts) != 5:
            raise NormalizationError("expected 5 pipe-separated fields")
        raw_time, source, destination, metric, raw_value = parts
        if metric not in _PERF_METRICS:
            raise NormalizationError(f"unknown perf metric {metric!r}")
        self.insert(
            parse_epoch(raw_time),
            source=source.strip().lower(),
            destination=destination.strip().lower(),
            metric=metric,
            value=float(raw_value),
        )


def render_perfmon_row(
    timestamp: float, source: str, destination: str, metric: str, value: float
) -> str:
    """Render one performance-monitor row."""
    return f"{timestamp}|{source}|{destination}|{metric}|{value}"


# ---------------------------------------------------------------------------
# NetFlow samples: map external sources to ingress routers (item 1 of
# the Section II-B conversions).
#
#   1262692800.0|agent-bos|198.51.100.9|nyc-per1


@dataclass
class NetflowParser(SourceParser):
    table_name: str = "netflow"

    def parse_line(self, line: str) -> None:
        """Parse one raw line and insert the normalized row."""
        parts = line.strip().split("|")
        if len(parts) != 4:
            raise NormalizationError("expected 4 pipe-separated fields")
        raw_time, source, source_ip, raw_ingress = parts
        self.insert(
            parse_epoch(raw_time),
            source=source.strip().lower(),
            source_ip=source_ip,
            ingress_router=self.registry.canonical_name(raw_ingress),
        )


def render_netflow_row(
    timestamp: float, source: str, source_ip: str, ingress_router: str
) -> str:
    """Render one NetFlow sample row."""
    return f"{timestamp}|{source}|{source_ip}|{ingress_router}"


# ---------------------------------------------------------------------------
# Workflow (provisioning) logs: operator/system activities per router.
# Section IV-B correlates 831 workflow-log time series against
# CPU-related BGP flaps.
#
#   2010-01-05 10:25:00|nyc-per1|provisioning.add_customer|ticket-123


@dataclass
class WorkflowParser(SourceParser):
    table_name: str = "workflow"

    def parse_line(self, line: str) -> None:
        """Parse one raw line and insert the normalized row."""
        parts = line.strip().split("|", 3)
        if len(parts) != 4:
            raise NormalizationError("expected 4 pipe-separated fields")
        raw_time, raw_router, activity, detail = parts
        if not activity:
            raise NormalizationError("empty activity")
        self.insert(
            parse_timestamp(raw_time, "UTC"),
            router=self.registry.canonical_name(raw_router),
            activity=activity,
            detail=detail,
        )


def render_workflow_row(timestamp: float, router: str, activity: str, detail: str) -> str:
    """Render one workflow-log row."""
    from ..normalizer import epoch_to_text

    return f"{epoch_to_text(timestamp)}|{router}|{activity}|{detail}"


# ---------------------------------------------------------------------------
# CDN server logs: per-server load samples and assignment-policy changes.
#
#   1262692800.0|dc-nyc-srv1|load|0.93
#   1262692800.0|dc-nyc-srv1|policy_change|map-v42


@dataclass
class CdnLogParser(SourceParser):
    table_name: str = "cdn"

    def parse_line(self, line: str) -> None:
        """Parse one raw line and insert the normalized row."""
        parts = line.strip().split("|")
        if len(parts) != 4:
            raise NormalizationError("expected 4 pipe-separated fields")
        raw_time, server, kind, value = parts
        if kind not in ("load", "policy_change"):
            raise NormalizationError(f"unknown cdn record kind {kind!r}")
        fields = {"server": server.strip().lower(), "kind": kind}
        if kind == "load":
            fields["value"] = float(value)
        else:
            fields["detail"] = value
        self.insert(parse_epoch(raw_time), **fields)


def render_cdn_row(timestamp: float, server: str, kind: str, value) -> str:
    """Render one CDN server-log row."""
    return f"{timestamp}|{server}|{kind}|{value}"
