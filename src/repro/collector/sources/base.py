"""Shared machinery for data-source parsers.

Every source adapter turns raw input (log lines or poller rows) into
normalized rows in one :class:`~repro.collector.store.DataStore` table.
Malformed input is counted, not raised: a production collector must keep
ingesting when one device emits garbage.  Rejected lines are optionally
captured in a dead-letter buffer for later replay, and every accepted
row advances the source's watermark so feed-health tracking can tell
"no data" apart from "late data".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple, TYPE_CHECKING

from ..normalizer import DeviceRegistry, NormalizationError, brief_reason
from ..store import DataStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..health import DeadLetterBuffer

#: Cap on distinct reject reasons tracked per source (top-N, approximate).
MAX_REJECT_REASONS = 16


@dataclass
class ParseStats:
    """Ingest accounting for one source."""

    accepted: int = 0
    rejected: int = 0
    last_error: Optional[str] = None
    #: bounded counter of normalized reject reasons (top-N, approximate:
    #: when full, the rarest tracked reason is evicted for a new one)
    reason_counts: Counter = field(default_factory=Counter)
    #: timestamp of the newest accepted record
    watermark: Optional[float] = None

    def reject(self, reason: str, line: Optional[str] = None) -> None:
        """Count one rejected line and keep its reason."""
        self.rejected += 1
        self.last_error = f"{reason} in {line!r}" if line is not None else reason
        key = brief_reason(reason)
        if key not in self.reason_counts and len(self.reason_counts) >= MAX_REJECT_REASONS:
            rarest = min(self.reason_counts, key=self.reason_counts.get)
            del self.reason_counts[rarest]
        self.reason_counts[key] += 1

    def note_insert(self, timestamp: float) -> None:
        """Advance the watermark past one accepted record."""
        if self.watermark is None or timestamp > self.watermark:
            self.watermark = timestamp

    def top_reasons(self, n: int = 5) -> List[Tuple[str, int]]:
        """The ``n`` most frequent reject reasons, most frequent first."""
        return self.reason_counts.most_common(n)

    @property
    def reject_ratio(self) -> float:
        """Rejected fraction of all lines seen (0.0 when none seen)."""
        total = self.accepted + self.rejected
        return self.rejected / total if total else 0.0


def parse_epoch(raw: str) -> float:
    """Parse an epoch-seconds field, rejecting NaN/inf/out-of-range."""
    try:
        epoch = float(raw)
    except ValueError:
        raise NormalizationError(f"unparseable epoch {raw!r}") from None
    if not (0.0 <= epoch <= 4.0e9):
        raise NormalizationError(f"epoch out of range: {raw!r}")
    return epoch


@dataclass
class SourceParser:
    """Base class: binds a store table and a device registry."""

    store: DataStore
    registry: DeviceRegistry = field(default_factory=DeviceRegistry)
    stats: ParseStats = field(default_factory=ParseStats)
    #: when set (by the collector), rejected raw lines are captured here
    dead_letters: Optional["DeadLetterBuffer"] = None

    #: override in subclasses
    table_name: str = ""

    def ingest(self, lines: Iterable[str]) -> ParseStats:
        """Parse and store an iterable of raw lines."""
        for line in lines:
            if not line.strip():
                continue
            try:
                self.parse_line(line)
                self.stats.accepted += 1
            except (NormalizationError, ValueError) as exc:
                self.stats.reject(str(exc), line)
                if self.dead_letters is not None:
                    self.dead_letters.append(
                        self.table_name, line, brief_reason(str(exc))
                    )
        return self.stats

    def insert(self, timestamp: float, **fields) -> None:
        """Insert one normalized row, advancing the source watermark."""
        self.store.insert(self.table_name, timestamp, **fields)
        self.stats.note_insert(timestamp)

    def parse_line(self, line: str) -> None:  # pragma: no cover - abstract
        """Parse one raw line and insert the normalized row."""
        raise NotImplementedError
