"""Shared machinery for data-source parsers.

Every source adapter turns raw input (log lines or poller rows) into
normalized rows in one :class:`~repro.collector.store.DataStore` table.
Malformed input is counted, not raised: a production collector must keep
ingesting when one device emits garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..normalizer import DeviceRegistry, NormalizationError
from ..store import DataStore


@dataclass
class ParseStats:
    """Ingest accounting for one source."""

    accepted: int = 0
    rejected: int = 0
    last_error: Optional[str] = None

    def reject(self, reason: str) -> None:
        """Count one rejected line and keep its reason."""
        self.rejected += 1
        self.last_error = reason


def parse_epoch(raw: str) -> float:
    """Parse an epoch-seconds field, rejecting NaN/inf/out-of-range."""
    try:
        epoch = float(raw)
    except ValueError:
        raise NormalizationError(f"unparseable epoch {raw!r}") from None
    if not (0.0 <= epoch <= 4.0e9):
        raise NormalizationError(f"epoch out of range: {raw!r}")
    return epoch


@dataclass
class SourceParser:
    """Base class: binds a store table and a device registry."""

    store: DataStore
    registry: DeviceRegistry = field(default_factory=DeviceRegistry)
    stats: ParseStats = field(default_factory=ParseStats)

    #: override in subclasses
    table_name: str = ""

    def ingest(self, lines: Iterable[str]) -> ParseStats:
        """Parse and store an iterable of raw lines."""
        for line in lines:
            if not line.strip():
                continue
            try:
                self.parse_line(line)
                self.stats.accepted += 1
            except (NormalizationError, ValueError) as exc:
                self.stats.reject(f"{exc} in {line!r}")
        return self.stats

    def parse_line(self, line: str) -> None:  # pragma: no cover - abstract
        """Parse one raw line and insert the normalized row."""
        raise NotImplementedError
