"""Data-source adapters: one parser per feed, all writing normalized
rows into the shared :class:`~repro.collector.store.DataStore`."""

from .base import ParseStats, SourceParser
from .bgpmon import BgpMonParser, render_bgpmon_row, update_log_from_store
from .misc import (
    CdnLogParser,
    Layer1Parser,
    NetflowParser,
    PerfMonParser,
    TacacsParser,
    WorkflowParser,
    render_cdn_row,
    render_layer1_row,
    render_netflow_row,
    render_perfmon_row,
    render_tacacs_row,
    render_workflow_row,
)
from .ospfmon import OspfMonParser, render_ospfmon_row, weight_history_from_store
from .snmp import SnmpParser, render_snmp_row
from .syslog import SyslogParser, render_syslog_line

__all__ = [
    "BgpMonParser",
    "CdnLogParser",
    "Layer1Parser",
    "NetflowParser",
    "OspfMonParser",
    "ParseStats",
    "PerfMonParser",
    "SnmpParser",
    "SourceParser",
    "SyslogParser",
    "TacacsParser",
    "WorkflowParser",
    "render_bgpmon_row",
    "render_cdn_row",
    "render_layer1_row",
    "render_netflow_row",
    "render_ospfmon_row",
    "render_perfmon_row",
    "render_snmp_row",
    "render_syslog_line",
    "render_tacacs_row",
    "render_workflow_row",
    "update_log_from_store",
    "weight_history_from_store",
]
