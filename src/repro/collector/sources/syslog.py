"""Syslog parser.

Router syslog is the richest diagnostic source in the paper (Table I
draws interface/line-protocol events, router reboots and CPU spikes from
it; Tables III and VII draw the BGP and PIM application events from it).
Daily volume in the deployed system is "tens of millions" of records.

Canonical line shape (Cisco-IOS flavoured)::

    Jan  5 10:22:01 nyc-per1.ispnet.example %LINK-3-UPDOWN: \
        Interface Serial0/0, changed state to down

Timestamps are in the *device's local clock* (the registry supplies the
zone); hostnames may carry domain suffixes.  Both are normalized here,
at ingest, per Section II-A.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..normalizer import NormalizationError, normalize_interface_name
from .base import SourceParser

_LINE_RE = re.compile(
    r"^(?P<timestamp>\w{3}\s+\d+\s+[\d:]+|\d{4}-\d{2}-\d{2}[ T][\d:]+)\s+"
    r"(?P<host>\S+)\s+"
    r"(?:\d+:\s+)?"  # optional sequence number
    r"%(?P<code>[A-Z0-9_]+-\d-[A-Z0-9_]+):\s*"
    r"(?P<message>.*)$"
)

_INTERFACE_RE = re.compile(r"Interface\s+([A-Za-z]+[\d/.:]+)")
_STATE_RE = re.compile(r"changed state to\s+(\w+)")
_NEIGHBOR_RE = re.compile(r"neighbor\s+(\d+\.\d+\.\d+\.\d+)")
_BGP_STATE_RE = re.compile(r"neighbor\s+\d+\.\d+\.\d+\.\d+(?:\s+\S+)*?\s+(Up|Down)\b")
_PIM_RE = re.compile(
    r"neighbor\s+(?P<neighbor>\d+\.\d+\.\d+\.\d+)\s+(?P<state>UP|DOWN)\s+"
    r"on interface\s+(?P<interface>[A-Za-z]+[\d/.:]+)(?:\s+\(vrf\s+(?P<vrf>\S+)\))?"
)
_CPU_RE = re.compile(r"utilization.*?(\d+)%")


#: Syslog message codes of interest (subset of a vendor's catalogue).
CODE_LINK = "LINK-3-UPDOWN"
CODE_LINEPROTO = "LINEPROTO-5-UPDOWN"
CODE_BGP_ADJCHANGE = "BGP-5-ADJCHANGE"
CODE_BGP_NOTIFICATION = "BGP-5-NOTIFICATION"
CODE_PIM_NBRCHG = "PIM-5-NBRCHG"
CODE_RESTART = "SYS-5-RESTART"
CODE_CPUHOG = "SYS-3-CPUHOG"
CODE_LINECARD = "OIR-3-CRASH"


@dataclass
class SyslogParser(SourceParser):
    """Parses syslog lines into the ``syslog`` table."""

    table_name: str = "syslog"

    def parse_line(self, line: str) -> None:
        """Parse one raw line and insert the normalized row."""
        match = _LINE_RE.match(line.strip())
        if not match:
            raise NormalizationError("unrecognized syslog line")
        router = self.registry.canonical_name(match.group("host"))
        timestamp = self.registry.parse_device_timestamp(match.group("timestamp"), router)
        code = match.group("code")
        message = match.group("message")
        fields: Dict[str, Any] = {
            "router": router,
            "code": code,
            "message": message,
        }
        fields.update(_extract_structured(code, message))
        self.insert(timestamp, **fields)


def _extract_structured(code: str, message: str) -> Dict[str, Any]:
    """Pull typed fields out of the free-text message body."""
    fields: Dict[str, Any] = {}
    if code == CODE_PIM_NBRCHG:
        match = _PIM_RE.search(message)
        if match:
            fields["neighbor"] = match.group("neighbor")
            fields["state"] = match.group("state").lower()
            fields["interface"] = normalize_interface_name(match.group("interface"))
            if match.group("vrf"):
                fields["vrf"] = match.group("vrf")
        return fields
    iface = _INTERFACE_RE.search(message)
    if iface:
        fields["interface"] = normalize_interface_name(iface.group(1))
    state = _STATE_RE.search(message)
    if state:
        fields["state"] = state.group(1).lower()
    neighbor = _NEIGHBOR_RE.search(message)
    if neighbor:
        fields["neighbor"] = neighbor.group(1)
    if code == CODE_BGP_ADJCHANGE:
        bgp_state = _BGP_STATE_RE.search(message)
        if bgp_state:
            fields["state"] = bgp_state.group(1).lower()
    if code == CODE_BGP_NOTIFICATION:
        fields["reason"] = _notification_reason(message)
        fields["direction"] = "sent" if "sent to" in message else "received"
    if code == CODE_CPUHOG:
        cpu = _CPU_RE.search(message)
        if cpu:
            fields["cpu_pct"] = int(cpu.group(1))
    if code == CODE_LINECARD:
        slot = re.search(r"slot\s+(\d+)", message)
        if slot:
            fields["slot"] = int(slot.group(1))
    return fields


def _notification_reason(message: str) -> Optional[str]:
    """Classify a BGP NOTIFICATION message body.

    ``hold_timer_expired`` corresponds to the paper's "eBGP HTE" event;
    ``administrative_reset`` received from the neighbor is the
    "Customer reset session" event (Table III).
    """
    lowered = message.lower()
    if "hold time expired" in lowered or "4/0" in message:
        return "hold_timer_expired"
    if "administrative reset" in lowered or "6/4" in message:
        return "administrative_reset"
    if "cease" in lowered or "6/" in message:
        return "cease"
    return "other"


# ---------------------------------------------------------------------------
# rendering helpers (used by the simulator's telemetry emitters)


def format_syslog_time(timestamp: float, timezone: str) -> str:
    """Render epoch UTC as the device's local ``%b %d %H:%M:%S``."""
    import datetime

    try:
        from zoneinfo import ZoneInfo

        zone = ZoneInfo(timezone) if timezone not in ("UTC", "GMT") else datetime.timezone.utc
    except Exception:  # pragma: no cover - no tzdata
        zone = datetime.timezone.utc
    dt = datetime.datetime.fromtimestamp(timestamp, tz=zone)
    return dt.strftime("%b %d %H:%M:%S")


def render_syslog_line(
    timestamp: float,
    router: str,
    timezone: str,
    code: str,
    message: str,
    domain: str = "ispnet.example",
) -> str:
    """Produce one raw syslog line as a device would emit it."""
    stamp = format_syslog_time(timestamp, timezone)
    return f"{stamp} {router}.{domain} %{code}: {message}"
