"""BGP route-monitor parser.

The monitor peers with the route reflectors, so this feed carries the
reflector-visible announcements and withdrawals used by the BGP decision
emulation (Section II-B, item 1).  Row format::

    1262692800.0|A|198.51.100.0/24|chi-per1|10.0.0.1|100|3
    1262692900.0|W|198.51.100.0/24|chi-per1||0|0

(A = announce, W = withdraw; the last four fields are next hop, local
preference and AS-path length.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ...routing.bgp import BgpRoute, BgpUpdate, BgpUpdateLog
from ..normalizer import NormalizationError
from ..store import DataStore
from .base import SourceParser, parse_epoch


@dataclass
class BgpMonParser(SourceParser):
    """Parses reflector-feed updates into the ``bgpmon`` table."""

    table_name: str = "bgpmon"

    def parse_line(self, line: str) -> None:
        """Parse one raw line and insert the normalized row."""
        parts = line.strip().split("|")
        if len(parts) != 7:
            raise NormalizationError("expected 7 pipe-separated fields")
        raw_time, kind, prefix, raw_egress, next_hop, raw_pref, raw_aslen = parts
        if kind not in ("A", "W"):
            raise NormalizationError(f"unknown update kind {kind!r}")
        if "/" not in prefix:
            raise NormalizationError(f"malformed prefix {prefix!r}")
        timestamp = parse_epoch(raw_time)
        egress = self.registry.canonical_name(raw_egress)
        self.insert(
            timestamp,
            kind=kind,
            prefix=prefix,
            egress_router=egress,
            next_hop=next_hop,
            local_pref=int(raw_pref or 0),
            as_path_len=int(raw_aslen or 0),
        )


def render_bgpmon_row(
    timestamp: float,
    kind: str,
    prefix: str,
    egress_router: str,
    next_hop: str = "",
    local_pref: int = 100,
    as_path_len: int = 1,
) -> str:
    """Render one BGP-monitor feed row."""
    return (
        f"{timestamp}|{kind}|{prefix}|{egress_router}|{next_hop}"
        f"|{local_pref}|{as_path_len}"
    )


def update_log_from_store(store: DataStore) -> BgpUpdateLog:
    """Build the BGP emulator's update log from the table."""
    log = BgpUpdateLog()
    for record in store.table("bgpmon").scan():
        route = BgpRoute(
            prefix=record["prefix"],
            egress_router=record["egress_router"],
            next_hop=record.get("next_hop", ""),
            local_pref=record.get("local_pref", 100),
            as_path_len=record.get("as_path_len", 1),
        )
        log.record(
            BgpUpdate(
                timestamp=record.timestamp,
                route=route,
                withdrawn=record["kind"] == "W",
            )
        )
    return log
