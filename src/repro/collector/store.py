"""Normalized record store.

The deployed Data Collector "pulls all the data together, normalizes
them so that they can be readily correlated, and stores them in database
tables in real time".  This module is that database: one :class:`Table`
per data source, each holding :class:`Record` rows sorted by timestamp,
with optional hash indexes on equality-filter columns (router, interface,
device) so that the retrieval processes of event definitions — which are
time-range plus location scans — stay fast at scale.

Thread-safety contract
----------------------

The store serves a live service: ingest threads append records while
worker threads run retrieval queries.  Every :class:`Table` guards its
mutable state with a reentrant lock; :class:`DataStore` guards table
creation with its own.  The guarantees are:

* ``insert`` / ``insert_row`` are atomic — a concurrent ``query`` sees
  the table either before or after a whole insert, never mid-rebuild;
* ``query``, ``scan``, ``distinct`` and ``time_span`` return snapshots
  taken under the lock — iterating a returned list/iterator is safe even
  while writers keep inserting;
* ``DataStore.table`` may be called concurrently for the same name and
  returns the one shared :class:`Table`;
* monotonicity: :attr:`DataStore.revision` increases by one for every
  insert through the store's tables, and insert listeners (see
  :meth:`DataStore.subscribe`) observe each ``(table, timestamp,
  revision)`` exactly once, after the row is visible to readers.

There is *no* cross-table transaction: a reader joining two tables can
observe one table ahead of the other.  Retrieval correctness does not
require it — late rows are handled by the service result cache's
footprint invalidation and the streaming reorder slack.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

#: Insert listener signature: (table name, record timestamp, store revision).
InsertListener = Callable[[str, float, int], None]


@dataclass(frozen=True)
class Record:
    """One normalized row: an epoch-UTC timestamp plus named fields."""

    timestamp: float
    fields: Tuple[Tuple[str, Any], ...]

    @classmethod
    def make(cls, timestamp: float, **fields: Any) -> "Record":
        return cls(timestamp=timestamp, fields=tuple(sorted(fields.items())))

    def __getitem__(self, key: str) -> Any:
        for name, value in self.fields:
            if name == key:
                return value
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        """Field value by name, with a default when absent."""
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def as_dict(self) -> Dict[str, Any]:
        """The record's fields as a plain dictionary."""
        return dict(self.fields)


class Table:
    """Time-sorted records with optional per-column hash indexes.

    All mutating and reading methods are safe to call from multiple
    threads; see the module docstring for the exact contract.
    """

    def __init__(
        self,
        name: str,
        indexed_columns: Iterable[str] = (),
        on_insert: Optional[Callable[[str, float], None]] = None,
    ) -> None:
        self.name = name
        self._records: List[Record] = []
        self._timestamps: List[float] = []
        self._indexes: Dict[str, Dict[Any, List[int]]] = {
            column: {} for column in indexed_columns
        }
        self._lock = threading.RLock()
        self._on_insert = on_insert

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def insert(self, record: Record) -> None:
        """Insert keeping timestamp order (append-fast for ordered feeds)."""
        with self._lock:
            if self._timestamps and record.timestamp < self._timestamps[-1]:
                position = bisect.bisect_right(self._timestamps, record.timestamp)
                self._records.insert(position, record)
                self._timestamps.insert(position, record.timestamp)
                self._rebuild_indexes()
            else:
                position = len(self._records)
                self._records.append(record)
                self._timestamps.append(record.timestamp)
                for column, index in self._indexes.items():
                    value = record.get(column)
                    if value is not None:
                        index.setdefault(value, []).append(position)
        # notify outside the table lock: listeners may take their own
        # locks (cache invalidation) and must never deadlock ingest
        if self._on_insert is not None:
            self._on_insert(self.name, record.timestamp)

    def insert_row(self, timestamp: float, **fields: Any) -> None:
        """Insert a row built from keyword fields."""
        self.insert(Record.make(timestamp, **fields))

    def _rebuild_indexes(self) -> None:
        for column in self._indexes:
            rebuilt: Dict[Any, List[int]] = {}
            for position, record in enumerate(self._records):
                value = record.get(column)
                if value is not None:
                    rebuilt.setdefault(value, []).append(position)
            self._indexes[column] = rebuilt

    def query(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
        **equals: Any,
    ) -> List[Record]:
        """Records with ``start <= timestamp <= end`` matching all filters."""
        with self._lock:
            lo = 0 if start is None else bisect.bisect_left(self._timestamps, start)
            hi = (
                len(self._records)
                if end is None
                else bisect.bisect_right(self._timestamps, end)
            )
            indexed = [
                (column, value)
                for column, value in equals.items()
                if column in self._indexes
            ]
            if indexed:
                # intersect the smallest index posting list with the time range
                column, value = min(
                    indexed, key=lambda cv: len(self._indexes[cv[0]].get(cv[1], []))
                )
                positions = self._indexes[column].get(value, [])
                p_lo = bisect.bisect_left(positions, lo)
                p_hi = bisect.bisect_left(positions, hi)
                candidates: Iterable[Record] = (
                    self._records[p] for p in positions[p_lo:p_hi]
                )
            else:
                candidates = self._records[lo:hi]
            result = []
            for record in candidates:
                if all(record.get(column) == value for column, value in equals.items()):
                    result.append(record)
            return result

    def scan(self) -> Iterator[Record]:
        """Iterate a snapshot of every record in timestamp order."""
        with self._lock:
            return iter(list(self._records))

    def distinct(self, column: str) -> List[Any]:
        """Distinct non-None values of a column."""
        with self._lock:
            if column in self._indexes:
                return sorted(self._indexes[column], key=repr)
            values = {r.get(column) for r in self._records}
            values.discard(None)
            return sorted(values, key=repr)

    @property
    def time_span(self) -> Optional[Tuple[float, float]]:
        with self._lock:
            if not self._timestamps:
                return None
            return self._timestamps[0], self._timestamps[-1]


class TracedTable:
    """Read proxy over a :class:`Table` emitting one span per read.

    Every ``query`` / ``scan`` / ``distinct`` is wrapped in a
    ``store-query`` span on the supplied tracer (any object with the
    :class:`repro.obs.Tracer` interface), carrying the table name, the
    requested window and the number of rows returned.  Writes are not
    proxied — tracing is a read-path concern; use the underlying table
    to ingest.
    """

    def __init__(self, table: Table, tracer) -> None:
        self._table = table
        self._tracer = tracer

    def query(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
        **equals: Any,
    ) -> List[Record]:
        """Delegate to :meth:`Table.query`, recording a span."""
        with self._tracer.span("store-query", label=self._table.name) as span:
            rows = self._table.query(start, end, **equals)
            span.annotate(rows=len(rows), window=[start, end])
            if equals:
                span.annotate(filters=sorted(equals))
        return rows

    def scan(self) -> Iterator[Record]:
        """Delegate to :meth:`Table.scan`, recording a span."""
        with self._tracer.span("store-query", label=self._table.name) as span:
            rows = list(self._table.scan())
            span.annotate(rows=len(rows), window=[None, None])
        return iter(rows)

    def distinct(self, column: str) -> List[Any]:
        """Delegate to :meth:`Table.distinct`, recording a span."""
        with self._tracer.span("store-query", label=self._table.name) as span:
            values = self._table.distinct(column)
            span.annotate(rows=len(values), column=column)
        return values

    def __len__(self) -> int:
        return len(self._table)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._table, name)


class TracedStore:
    """Store proxy whose tables emit ``store-query`` spans.

    Handed to retrieval processes while a diagnosis is being traced;
    passes everything except :meth:`table` straight through, so the
    proxy is transparent to retrieval code.
    """

    def __init__(self, store: "DataStore", tracer) -> None:
        self._store = store
        self._tracer = tracer

    def table(self, name: str) -> TracedTable:
        """The named table wrapped in a :class:`TracedTable`."""
        return TracedTable(self._store.table(name), self._tracer)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._store, name)


#: Default index columns per well-known table; location-bearing columns.
DEFAULT_INDEXES: Dict[str, Tuple[str, ...]] = {
    "syslog": ("router", "interface", "code"),
    "snmp": ("router", "interface", "metric"),
    "ospfmon": ("link",),
    "bgpmon": ("prefix", "egress_router"),
    "tacacs": ("router",),
    "layer1": ("device", "event"),
    "perfmon": ("source", "destination", "metric"),
    "netflow": ("source", "ingress_router"),
    "workflow": ("router", "activity"),
    "cdn": ("server",),
}


@dataclass
class DataStore:
    """All tables of the Data Collector, keyed by source name.

    Safe for concurrent ingest and query (see module docstring).  The
    :attr:`revision` counter increments on every insert through the
    store's tables; subscribers registered with :meth:`subscribe` are
    invoked after each insert with ``(table, timestamp, revision)`` —
    the hook the service result cache uses to invalidate entries whose
    retrieval windows a late record lands in.
    """

    tables: Dict[str, Table] = field(default_factory=dict)
    #: total inserts observed through this store's tables (monotonic)
    revision: int = 0
    _listeners: List[InsertListener] = field(default_factory=list, repr=False)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    def table(self, name: str) -> Table:
        """Get (creating on first use) the table for a data source."""
        with self._lock:
            if name not in self.tables:
                self.tables[name] = Table(
                    name, DEFAULT_INDEXES.get(name, ()), on_insert=self._note_insert
                )
            return self.tables[name]

    def insert(self, table: str, timestamp: float, **fields: Any) -> None:
        """Insert one row into the named table."""
        self.table(table).insert_row(timestamp, **fields)

    def subscribe(self, listener: InsertListener) -> None:
        """Register a callback fired after every insert (any table)."""
        with self._lock:
            self._listeners.append(listener)

    def unsubscribe(self, listener: InsertListener) -> None:
        """Remove a previously registered insert listener."""
        with self._lock:
            self._listeners.remove(listener)

    def _note_insert(self, table: str, timestamp: float) -> None:
        with self._lock:
            self.revision += 1
            revision = self.revision
            listeners = list(self._listeners)
        for listener in listeners:
            listener(table, timestamp, revision)

    def total_records(self) -> int:
        """Total record count across all tables."""
        with self._lock:
            tables = list(self.tables.values())
        return sum(len(t) for t in tables)

    def watermarks(self) -> Dict[str, float]:
        """Newest record timestamp per non-empty table.

        The store-side view of feed progress: a table whose watermark
        trails the others' hints at a lagging or dead feed even before
        the health registry has flagged it.
        """
        with self._lock:
            items = sorted(self.tables.items())
        marks: Dict[str, float] = {}
        for name, table in items:
            span = table.time_span
            if span is not None:
                marks[name] = span[1]
        return marks

    def summary(self) -> Dict[str, int]:
        """Record counts per table — the Data Collector's dashboard view."""
        with self._lock:
            items = sorted(self.tables.items())
        return {name: len(table) for name, table in items}
