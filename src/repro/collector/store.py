"""Normalized record store.

The deployed Data Collector "pulls all the data together, normalizes
them so that they can be readily correlated, and stores them in database
tables in real time".  This module is that database's front door: one
:class:`Table` per data source, each a thin thread-safe façade over a
pluggable :class:`~repro.collector.backends.StorageBackend` (in-memory
columnar by default, SQLite for persistence — see
:mod:`repro.collector.backends`), plus the :class:`ReadObserver` seam
through which tracing, footprint capture and future metrics watch the
read path without forking proxy class hierarchies.

Thread-safety contract
----------------------

The store serves a live service: ingest threads append records while
worker threads run retrieval queries.  Every :class:`Table` guards its
backend with a reentrant lock (backends themselves are single-threaded
by contract); :class:`DataStore` guards table creation with its own.
The guarantees are:

* ``insert`` / ``insert_row`` are atomic — a concurrent ``query`` sees
  the table either before or after a whole insert, never mid-merge;
* ``query``, ``scan``, ``distinct`` and ``time_span`` return snapshots
  taken under the lock — iterating a returned list/iterator is safe even
  while writers keep inserting;
* ``DataStore.table`` may be called concurrently for the same name and
  returns the one shared :class:`Table`;
* monotonicity: :attr:`DataStore.revision` increases by one for every
  insert through the store's tables, and insert listeners (see
  :meth:`DataStore.subscribe`) observe each ``(table, timestamp,
  revision)`` exactly once, after the row is visible to readers.

There is *no* cross-table transaction: a reader joining two tables can
observe one table ahead of the other.  Retrieval correctness does not
require it — late rows are handled by the service result cache's
footprint invalidation and the streaming reorder slack.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .backends import ColumnarSlice, StorageBackend, resolve_backend

#: Insert listener signature: (table name, record timestamp, store revision).
InsertListener = Callable[[str, float, int], None]


@dataclass(frozen=True)
class Record:
    """One normalized row: an epoch-UTC timestamp plus named fields.

    Identity, equality and hashing come from the frozen ``(timestamp,
    fields)`` tuple pair; field lookup goes through a dict built once at
    construction, so ``get``/``[]`` in the store's filter loops are O(1)
    instead of a linear scan over the tuple.
    """

    timestamp: float
    fields: Tuple[Tuple[str, Any], ...]

    def __post_init__(self) -> None:
        # cache is derived state: not a dataclass field, so it never
        # participates in __eq__/__hash__/repr
        object.__setattr__(self, "_by_name", dict(self.fields))

    @classmethod
    def make(cls, timestamp: float, **fields: Any) -> "Record":
        return cls(timestamp=timestamp, fields=tuple(sorted(fields.items())))

    def __getitem__(self, key: str) -> Any:
        try:
            return self._by_name[key]
        except KeyError:
            raise KeyError(key) from None

    def get(self, key: str, default: Any = None) -> Any:
        """Field value by name, with a default when absent."""
        return self._by_name.get(key, default)

    def as_dict(self) -> Dict[str, Any]:
        """The record's fields as a plain dictionary."""
        return dict(self.fields)

    def __getstate__(self) -> Tuple[float, Tuple[Tuple[str, Any], ...]]:
        # keep pickles (the SQLite payload format) free of the cache
        return (self.timestamp, self.fields)

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "timestamp", state[0])
        object.__setattr__(self, "fields", state[1])
        object.__setattr__(self, "_by_name", dict(state[1]))


class Table:
    """Thread-safe façade over one storage backend.

    All mutating and reading methods are safe to call from multiple
    threads; the backend underneath is single-threaded by contract and
    only ever touched under this table's lock.  ``backend`` accepts a
    ready :class:`~repro.collector.backends.StorageBackend` instance, a
    factory ``(name, indexed_columns) -> backend``, a backend name, or
    ``None`` for the process default.
    """

    def __init__(
        self,
        name: str,
        indexed_columns: Iterable[str] = (),
        on_insert: Optional[Callable[[str, float], None]] = None,
        backend: Any = None,
    ) -> None:
        self.name = name
        if not isinstance(backend, StorageBackend):
            factory = resolve_backend(backend)
            backend = factory(name, tuple(indexed_columns))
        self._backend = backend
        self._lock = threading.RLock()
        self._on_insert = on_insert

    @property
    def backend_name(self) -> str:
        """Identity of the storage engine serving this table."""
        return self._backend.name

    @property
    def indexed_columns(self) -> Tuple[str, ...]:
        """Columns the backend serves equality filters on quickly."""
        return self._backend.indexed_columns

    def __len__(self) -> int:
        with self._lock:
            return len(self._backend)

    def insert(self, record: Record) -> None:
        """Insert keeping timestamp order (append-fast for ordered feeds)."""
        with self._lock:
            self._backend.insert(record)
        # notify outside the table lock: listeners may take their own
        # locks (cache invalidation) and must never deadlock ingest
        if self._on_insert is not None:
            self._on_insert(self.name, record.timestamp)

    def insert_row(self, timestamp: float, **fields: Any) -> None:
        """Insert a row built from keyword fields."""
        self.insert(Record.make(timestamp, **fields))

    def query(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
        **equals: Any,
    ) -> List[Record]:
        """Records with ``start <= timestamp <= end`` matching all filters."""
        with self._lock:
            return self._backend.query(start, end, equals)

    def query_columns(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
        **equals: Any,
    ) -> ColumnarSlice:
        """The same rows as :meth:`query`, as parallel columnar arrays.

        Zero-copy on backends with a columnar core (see
        :meth:`repro.collector.backends.MemoryBackend.query_columns`);
        row-materializing everywhere else.  Either way
        ``slice.timestamps`` is sorted and index-aligned with
        ``slice.records``.
        """
        with self._lock:
            return self._backend.query_columns(start, end, equals)

    def scan(self) -> Iterator[Record]:
        """Iterate a snapshot of every record in timestamp order."""
        with self._lock:
            return iter(self._backend.scan())

    def distinct(self, column: str) -> List[Any]:
        """Distinct non-None values of a column."""
        with self._lock:
            return self._backend.distinct(column)

    @property
    def time_span(self) -> Optional[Tuple[float, float]]:
        with self._lock:
            return self._backend.time_span()

    def stats(self) -> Dict[str, Any]:
        """Backend identity and storage counters for this table."""
        with self._lock:
            return self._backend.stats()


# ----------------------------------------------------------------------
# the read-path observer seam


@dataclass(frozen=True)
class StoreRead:
    """One read issued against a table, as observers see it.

    ``kind`` is ``"query"``, ``"scan"`` or ``"distinct"``; ``filters``
    holds the equality filters of a query as sorted ``(column, value)``
    pairs; ``column`` is set for ``distinct`` reads.
    """

    table: str
    kind: str
    start: Optional[float] = None
    end: Optional[float] = None
    filters: Tuple[Tuple[str, Any], ...] = ()
    column: Optional[str] = None

    @property
    def window(self) -> Tuple[float, float]:
        """The read's time coverage with open bounds widened to ±inf.

        Scans and distinct reads cover the whole table — the
        conservative footprint the service cache invalidates on.
        """
        if self.kind != "query":
            return float("-inf"), float("inf")
        lo = float("-inf") if self.start is None else self.start
        hi = float("inf") if self.end is None else self.end
        return lo, hi


class ReadObserver:
    """Hook on the store read path; compose freely on one seam.

    ``begin`` fires before the backend read (returning an opaque token),
    ``end`` after it with the row count — or ``None`` when the read
    raised.  Observers watching coverage (footprints) should record in
    ``begin`` so exceptions never lose a read; observers reporting
    results (tracing, metrics) act in ``end``.
    """

    def begin(self, read: StoreRead) -> Any:
        """Called before the read executes; the return value is the
        token handed back to :meth:`end`."""
        return None

    def end(self, read: StoreRead, token: Any, rows: Optional[int]) -> None:
        """Called after the read (``rows=None`` if it raised)."""


class TraceObserver(ReadObserver):
    """Emits one ``store-query`` span per read on a tracer.

    The span carries the table name, the requested window and the row
    count — for queries also the sorted filter columns; for distinct
    reads the column.  This is the observer form of the old
    ``TracedTable`` proxy and emits byte-identical span shapes.
    """

    def __init__(self, tracer) -> None:
        self._tracer = tracer

    def begin(self, read: StoreRead) -> Any:
        return self._tracer.begin("store-query", label=read.table)

    def end(self, read: StoreRead, span: Any, rows: Optional[int]) -> None:
        if rows is not None:
            if read.kind == "query":
                span.annotate(rows=rows, window=[read.start, read.end])
                if read.filters:
                    span.annotate(filters=[column for column, _ in read.filters])
            elif read.kind == "scan":
                span.annotate(rows=rows, window=[None, None])
            else:
                span.annotate(rows=rows, column=read.column)
        self._tracer.finish(span)


class FootprintObserver(ReadObserver):
    """Records each read's conservative time coverage.

    ``note`` receives ``(table, lo, hi)`` with open bounds widened to
    ±inf — the footprint entries the engine merges per diagnosis and
    the service result cache invalidates on.  Recording happens in
    ``begin`` so a retrieval that raises mid-read still leaves its
    coverage behind.
    """

    def __init__(self, note: Callable[[Tuple[str, float, float]], Any]) -> None:
        self._note = note

    def begin(self, read: StoreRead) -> Any:
        lo, hi = read.window
        self._note((read.table, lo, hi))
        return None


class ObservedTable:
    """Read proxy over a :class:`Table` applying a list of observers.

    Observers ``begin`` in list order and ``end`` in reverse, around a
    single backend read.  Writes are not proxied — observation is a
    read-path concern; use the underlying table to ingest.
    """

    def __init__(self, table: Table, observers: Iterable[ReadObserver]) -> None:
        self._table = table
        self._observers = tuple(observers)

    def _run(self, read: StoreRead, produce: Callable[[], Any]):
        tokens = [observer.begin(read) for observer in self._observers]
        rows: Optional[int] = None
        try:
            result, rows = produce()
            return result
        finally:
            for observer, token in zip(
                reversed(self._observers), reversed(tokens)
            ):
                observer.end(read, token, rows)

    def query(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
        **equals: Any,
    ) -> List[Record]:
        """Delegate to :meth:`Table.query` through the observers."""
        read = StoreRead(
            table=self._table.name,
            kind="query",
            start=start,
            end=end,
            filters=tuple(sorted(equals.items())),
        )

        def produce():
            result = self._table.query(start, end, **equals)
            return result, len(result)

        return self._run(read, produce)

    def query_columns(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
        **equals: Any,
    ) -> ColumnarSlice:
        """Delegate to :meth:`Table.query_columns` through the observers.

        Observers see the identical :class:`StoreRead` a row query would
        produce — columnar retrievals keep the same footprint coverage
        and ``store-query`` trace spans as their row twins.
        """
        read = StoreRead(
            table=self._table.name,
            kind="query",
            start=start,
            end=end,
            filters=tuple(sorted(equals.items())),
        )

        def produce():
            result = self._table.query_columns(start, end, **equals)
            return result, len(result)

        return self._run(read, produce)

    def scan(self) -> Iterator[Record]:
        """Delegate to :meth:`Table.scan` through the observers."""
        read = StoreRead(table=self._table.name, kind="scan")

        def produce():
            result = list(self._table.scan())
            return iter(result), len(result)

        return self._run(read, produce)

    def distinct(self, column: str) -> List[Any]:
        """Delegate to :meth:`Table.distinct` through the observers."""
        read = StoreRead(table=self._table.name, kind="distinct", column=column)

        def produce():
            result = self._table.distinct(column)
            return result, len(result)

        return self._run(read, produce)

    def __len__(self) -> int:
        return len(self._table)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._table, name)


class ObservedStore:
    """Store proxy whose tables route reads through observers.

    Handed to retrieval processes while a diagnosis is traced and/or
    its footprint recorded; passes everything except :meth:`table`
    straight through, so the proxy is transparent to retrieval code.
    """

    def __init__(self, store: "DataStore", observers: Iterable[ReadObserver]) -> None:
        self._store = store
        self._observers = tuple(observers)

    def table(self, name: str) -> ObservedTable:
        """The named table wrapped in an :class:`ObservedTable`."""
        return ObservedTable(self._store.table(name), self._observers)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._store, name)


#: Default index columns per well-known table; location-bearing columns.
DEFAULT_INDEXES: Dict[str, Tuple[str, ...]] = {
    "syslog": ("router", "interface", "code"),
    "snmp": ("router", "interface", "metric"),
    "ospfmon": ("link",),
    "bgpmon": ("prefix", "egress_router"),
    "tacacs": ("router",),
    "layer1": ("device", "event"),
    "perfmon": ("source", "destination", "metric"),
    "netflow": ("source", "ingress_router"),
    "workflow": ("router", "activity"),
    "cdn": ("server",),
}


@dataclass
class DataStore:
    """All tables of the Data Collector, keyed by source name.

    Safe for concurrent ingest and query (see module docstring).  The
    :attr:`revision` counter increments on every insert through the
    store's tables; subscribers registered with :meth:`subscribe` are
    invoked after each insert with ``(table, timestamp, revision)`` —
    the hook the service result cache uses to invalidate entries whose
    retrieval windows a late record lands in.

    ``backend`` picks the storage engine for tables this store creates:
    ``"memory"`` (default), ``"sqlite"``, or a factory from
    :mod:`repro.collector.backends`.  ``None`` uses the process default
    (:func:`repro.collector.backends.set_default_backend` or the
    ``GRCA_STORE_BACKEND`` environment variable) — which is how the
    ``--backend`` CLI flag swaps engines without code changes.
    """

    tables: Dict[str, Table] = field(default_factory=dict)
    #: total inserts observed through this store's tables (monotonic)
    revision: int = 0
    #: backend spec for tables created by this store (resolved once)
    backend: Any = None
    _listeners: List[InsertListener] = field(default_factory=list, repr=False)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    def __post_init__(self) -> None:
        self._factory = resolve_backend(self.backend)

    def table(self, name: str) -> Table:
        """Get (creating on first use) the table for a data source."""
        with self._lock:
            if name not in self.tables:
                self.tables[name] = Table(
                    name,
                    DEFAULT_INDEXES.get(name, ()),
                    on_insert=self._note_insert,
                    backend=self._factory,
                )
            return self.tables[name]

    def insert(self, table: str, timestamp: float, **fields: Any) -> None:
        """Insert one row into the named table."""
        self.table(table).insert_row(timestamp, **fields)

    def subscribe(self, listener: InsertListener) -> None:
        """Register a callback fired after every insert (any table)."""
        with self._lock:
            self._listeners.append(listener)

    def unsubscribe(self, listener: InsertListener) -> None:
        """Remove a previously registered insert listener."""
        with self._lock:
            self._listeners.remove(listener)

    def _note_insert(self, table: str, timestamp: float) -> None:
        with self._lock:
            self.revision += 1
            revision = self.revision
            listeners = list(self._listeners)
        for listener in listeners:
            listener(table, timestamp, revision)

    def total_records(self) -> int:
        """Total record count across all tables."""
        with self._lock:
            tables = list(self.tables.values())
        return sum(len(t) for t in tables)

    @property
    def backend_name(self) -> str:
        """Identity of the storage engine this store creates tables on."""
        with self._lock:
            for table in self.tables.values():
                return table.backend_name
        return getattr(self._factory, "backend_name", "custom")

    def watermarks(self) -> Dict[str, float]:
        """Newest record timestamp per non-empty table.

        The store-side view of feed progress: a table whose watermark
        trails the others' hints at a lagging or dead feed even before
        the health registry has flagged it.
        """
        with self._lock:
            items = sorted(self.tables.items())
        marks: Dict[str, float] = {}
        for name, table in items:
            span = table.time_span
            if span is not None:
                marks[name] = span[1]
        return marks

    def summary(self, storage: bool = False) -> Dict[str, Any]:
        """Record counts per table — the Data Collector's dashboard view.

        With ``storage=True`` each table maps to its full backend stats
        (identity, tail-buffer/merge counters, out-of-order inserts)
        instead of a bare count — what ``--feed-stats`` prints so
        operators can see which engine served a diagnosis.
        """
        with self._lock:
            items = sorted(self.tables.items())
        if storage:
            return {name: table.stats() for name, table in items}
        return {name: len(table) for name, table in items}

    def storage_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-table backend stats (shorthand for ``summary(storage=True)``)."""
        return self.summary(storage=True)
