"""Pluggable storage backends for the Data Collector's tables.

The paper's Data Collector "stores them in database tables in real
time" across ~600 feeds; industrial descendants (Groot, CloudRCA) treat
storage as swappable infrastructure behind the correlation engine.
This module is that seam: a :class:`StorageBackend` contract plus two
implementations —

* :class:`MemoryBackend` — sorted columnar timestamps with an unsorted
  *tail buffer* for out-of-order arrivals, merged lazily.  An
  out-of-order insert is an O(1) append plus an amortized share of the
  next merge, instead of the seed store's per-insert O(n·k) wholesale
  index rebuild.
* :class:`SqliteBackend` — the platform's first persistent store: one
  WAL-mode SQLite file per table, with ``(column, ts)`` SQL indexes for
  every declared indexed column and pickled rows for byte-exact
  round-trips.

Backends are selected per :class:`~repro.collector.store.DataStore`
(``DataStore(backend=...)``), per process
(:func:`set_default_backend` / the ``GRCA_STORE_BACKEND`` environment
variable, which is how the ``--backend`` CLI flag makes the swap
config-only), or per table by passing a factory.

Contract
--------

A backend reached *through* a :class:`~repro.collector.store.Table`
façade is serialized under the table's lock, so :class:`MemoryBackend`
does not need to be thread-safe.  :class:`SqliteBackend` additionally
serializes its own connection access internally: the incident store
(:mod:`repro.incident.store`) and other direct consumers share one
backend across service worker threads without a table façade in
between, and SQLite's single shared connection
(``check_same_thread=False``) silently loses interleaved
execute/commit pairs without that guard.  Canonical result order is
``(timestamp, arrival
sequence)`` — both backends return byte-identical record lists for the
same inserts and queries (pinned by the property-based oracle tests in
``tests/collector/test_backends.py``).  Windows are inclusive on both
ends; ``None`` bounds are open.
"""

from __future__ import annotations

import bisect
import os
import pickle
import sqlite3
import tempfile
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Builds a backend for one table: ``factory(table_name, indexed_columns)``.
BackendFactory = Callable[[str, Tuple[str, ...]], "StorageBackend"]

#: What ``DataStore(backend=...)`` accepts: a name, a factory, or None
#: (meaning the process default, see :func:`set_default_backend`).
BackendSpec = Any


class ListView:
    """A zero-copy ``[lo, hi)`` window over a list.

    Supports just enough of the sequence protocol for columnar
    consumers (len / index / slice / iterate).  The window keeps a
    *reference* to the backing list: :class:`MemoryBackend` only ever
    appends past a served window's upper bound or replaces the backing
    lists wholesale on a tail merge, so a captured view stays a
    consistent snapshot either way.
    """

    __slots__ = ("_data", "_lo", "_hi")

    def __init__(self, data: List[Any], lo: int, hi: int) -> None:
        self._data = data
        self._lo = lo
        self._hi = max(lo, hi)

    def __len__(self) -> int:
        return self._hi - self._lo

    def __iter__(self):
        data = self._data
        for position in range(self._lo, self._hi):
            yield data[position]

    def __getitem__(self, key):
        length = self._hi - self._lo
        if isinstance(key, slice):
            start, stop, step = key.indices(length)
            if step == 1:
                return ListView(self._data, self._lo + start, self._lo + stop)
            return self._data[self._lo:self._hi][key]
        if key < 0:
            key += length
        if not 0 <= key < length:
            raise IndexError(key)
        return self._data[self._lo + key]

    def __repr__(self) -> str:
        return f"ListView({list(self)!r})"


class ColumnarSlice:
    """One retrieval window as parallel ``(timestamps, records)`` arrays.

    The columnar face of a backend query: ``timestamps`` is sorted
    non-decreasing and aligned index-for-index with ``records`` (both in
    the backend's canonical ``(timestamp, arrival)`` order, exactly the
    rows :meth:`StorageBackend.query` would return).  ``zero_copy``
    reports whether the arrays are views into the backend's own columnar
    core (MemoryBackend's sorted run) or were materialized row-by-row
    (SqliteBackend and any filtered query).
    """

    __slots__ = ("timestamps", "records", "zero_copy")

    def __init__(
        self,
        timestamps: Any,
        records: Any,
        zero_copy: bool = False,
    ) -> None:
        self.timestamps = timestamps
        self.records = records
        self.zero_copy = zero_copy

    def __len__(self) -> int:
        return len(self.records)


class StorageBackend:
    """Interface every table storage engine implements.

    Documented as a plain base class (not an ABC) so third-party
    backends can duck-type; the methods below are the whole contract.
    All calls arrive serialized by the owning table's lock.
    """

    #: short identity string surfaced in summaries ("memory", "sqlite")
    name: str = "abstract"

    def insert(self, record) -> None:
        """Add one record (timestamps may arrive out of order)."""
        raise NotImplementedError

    def query(
        self,
        start: Optional[float],
        end: Optional[float],
        equals: Dict[str, Any],
    ) -> List[Any]:
        """Records with ``start <= ts <= end`` matching every filter,
        in ``(timestamp, arrival)`` order."""
        raise NotImplementedError

    def query_columns(
        self,
        start: Optional[float],
        end: Optional[float],
        equals: Dict[str, Any],
    ) -> ColumnarSlice:
        """The same rows as :meth:`query`, as a :class:`ColumnarSlice`.

        The default implementation materializes through :meth:`query`
        (row order is already canonical, so the timestamp array is
        sorted); backends with a columnar core override this to serve
        genuine zero-copy views.
        """
        rows = self.query(start, end, equals)
        return ColumnarSlice(
            [record.timestamp for record in rows], rows, zero_copy=False
        )

    def scan(self) -> List[Any]:
        """Every record, in ``(timestamp, arrival)`` order."""
        raise NotImplementedError

    def distinct(self, column: str) -> List[Any]:
        """Distinct non-None values of a column, sorted by ``repr``."""
        raise NotImplementedError

    def time_span(self) -> Optional[Tuple[float, float]]:
        """(oldest, newest) timestamp, or None when empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        """Operator-facing counters (backend identity, tail/merge state)."""
        return {"backend": self.name, "records": len(self)}

    def close(self) -> None:
        """Release external resources (files, connections)."""

    @property
    def indexed_columns(self) -> Tuple[str, ...]:
        """Columns this backend can serve equality filters on quickly."""
        return ()


class MemoryBackend(StorageBackend):
    """Sorted columnar arrays plus a lazily merged out-of-order tail.

    In-order inserts append to the sorted run and its per-column hash
    indexes.  Out-of-order inserts land in an unsorted *tail buffer*;
    queries consult both (the tail linearly — it is bounded), and once
    the tail outgrows ``max(256, sorted_len // 16)`` it is merged into
    the sorted run in one O(n + t) pass that also rebuilds the index
    posting lists.  The merge cost is amortized over the inserts that
    filled the tail, so ingest never pays the seed store's per-insert
    wholesale rebuild.
    """

    name = "memory"

    def __init__(
        self,
        indexed_columns: Iterable[str] = (),
        tail_limit: Optional[int] = None,
    ) -> None:
        self._ts: List[float] = []
        self._seq: List[int] = []
        self._recs: List[Any] = []
        #: out-of-order arrivals: (timestamp, arrival seq, record)
        self._tail: List[Tuple[float, int, Any]] = []
        self._indexes: Dict[str, Dict[Any, List[int]]] = {
            column: {} for column in indexed_columns
        }
        self._next_seq = 0
        self._tail_limit = tail_limit
        self.inserts = 0
        self.out_of_order = 0
        self.merges = 0
        self.max_tail = 0

    @property
    def indexed_columns(self) -> Tuple[str, ...]:
        return tuple(self._indexes)

    def _tail_threshold(self) -> int:
        if self._tail_limit is not None:
            return self._tail_limit
        return max(256, len(self._ts) // 16)

    def insert(self, record) -> None:
        """Append in order, or buffer an out-of-order arrival in the tail."""
        seq = self._next_seq
        self._next_seq += 1
        self.inserts += 1
        if self._ts and record.timestamp < self._ts[-1]:
            self._tail.append((record.timestamp, seq, record))
            self.out_of_order += 1
            if len(self._tail) > self.max_tail:
                self.max_tail = len(self._tail)
            if len(self._tail) > self._tail_threshold():
                self._merge()
            return
        position = len(self._recs)
        self._ts.append(record.timestamp)
        self._seq.append(seq)
        self._recs.append(record)
        for column, index in self._indexes.items():
            value = record.get(column)
            if value is not None:
                index.setdefault(value, []).append(position)

    def _merge(self) -> None:
        """Fold the tail into the sorted run; one pass, amortized."""
        tail = sorted(self._tail)
        ts, seqs, recs = self._ts, self._seq, self._recs
        merged_ts: List[float] = []
        merged_seq: List[int] = []
        merged_recs: List[Any] = []
        i = j = 0
        n, t = len(ts), len(tail)
        while i < n and j < t:
            if (ts[i], seqs[i]) <= (tail[j][0], tail[j][1]):
                merged_ts.append(ts[i])
                merged_seq.append(seqs[i])
                merged_recs.append(recs[i])
                i += 1
            else:
                merged_ts.append(tail[j][0])
                merged_seq.append(tail[j][1])
                merged_recs.append(tail[j][2])
                j += 1
        while i < n:
            merged_ts.append(ts[i])
            merged_seq.append(seqs[i])
            merged_recs.append(recs[i])
            i += 1
        while j < t:
            merged_ts.append(tail[j][0])
            merged_seq.append(tail[j][1])
            merged_recs.append(tail[j][2])
            j += 1
        self._ts, self._seq, self._recs = merged_ts, merged_seq, merged_recs
        self._tail = []
        for column in self._indexes:
            rebuilt: Dict[Any, List[int]] = {}
            for position, record in enumerate(merged_recs):
                value = record.get(column)
                if value is not None:
                    rebuilt.setdefault(value, []).append(position)
            self._indexes[column] = rebuilt
        self.merges += 1

    def __len__(self) -> int:
        return len(self._recs) + len(self._tail)

    def query(
        self,
        start: Optional[float],
        end: Optional[float],
        equals: Dict[str, Any],
    ) -> List[Any]:
        """Bisect the sorted run, scan the bounded tail, merge by (ts, seq)."""
        lo = 0 if start is None else bisect.bisect_left(self._ts, start)
        hi = (
            len(self._recs)
            if end is None
            else bisect.bisect_right(self._ts, end)
        )
        if not equals and not self._tail:
            # unfiltered window over the clean sorted run: one slice,
            # no per-record filter loop
            return self._recs[lo:hi]
        indexed = [
            (column, value)
            for column, value in equals.items()
            if column in self._indexes
        ]
        if indexed:
            # intersect the smallest index posting list with the time range
            column, value = min(
                indexed, key=lambda cv: len(self._indexes[cv[0]].get(cv[1], []))
            )
            positions = self._indexes[column].get(value, [])
            p_lo = bisect.bisect_left(positions, lo)
            p_hi = bisect.bisect_left(positions, hi)
            candidates: Iterable[int] = positions[p_lo:p_hi]
        else:
            candidates = range(lo, hi)
        result: List[Tuple[float, int, Any]] = []
        for p in candidates:
            record = self._recs[p]
            if all(record.get(column) == value for column, value in equals.items()):
                result.append((self._ts[p], self._seq[p], record))
        if self._tail:
            matched_tail = [
                entry
                for entry in self._tail
                if (start is None or entry[0] >= start)
                and (end is None or entry[0] <= end)
                and all(
                    entry[2].get(column) == value
                    for column, value in equals.items()
                )
            ]
            if matched_tail:
                result.extend(matched_tail)
                result.sort(key=lambda entry: (entry[0], entry[1]))
        return [record for _ts, _seq, record in result]

    def query_columns(
        self,
        start: Optional[float],
        end: Optional[float],
        equals: Dict[str, Any],
    ) -> ColumnarSlice:
        """Zero-copy window views over the sorted columnar run.

        An unfiltered query over a clean (tail-free) run is served as
        :class:`ListView` windows directly into ``_ts``/``_recs`` — no
        rows are touched at all.  The views stay consistent snapshots:
        in-order inserts append past the window's upper bound, and a
        tail merge replaces the backing lists wholesale (the view keeps
        the pre-merge snapshot).  Filtered queries and runs with a
        pending out-of-order tail fall back to row materialization.
        """
        if not equals and not self._tail:
            lo = 0 if start is None else bisect.bisect_left(self._ts, start)
            hi = (
                len(self._recs)
                if end is None
                else bisect.bisect_right(self._ts, end)
            )
            return ColumnarSlice(
                ListView(self._ts, lo, hi),
                ListView(self._recs, lo, hi),
                zero_copy=True,
            )
        return super().query_columns(start, end, equals)

    def scan(self) -> List[Any]:
        """Every record in (timestamp, arrival) order, tail included."""
        if not self._tail:
            return list(self._recs)
        entries = [
            (ts, seq, rec)
            for ts, seq, rec in zip(self._ts, self._seq, self._recs)
        ]
        entries.extend(self._tail)
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        return [record for _ts, _seq, record in entries]

    def distinct(self, column: str) -> List[Any]:
        """Distinct non-None column values, from the index when available."""
        if column in self._indexes:
            values = set(self._indexes[column])
        else:
            values = {record.get(column) for record in self._recs}
        for _ts, _seq, record in self._tail:
            values.add(record.get(column))
        values.discard(None)
        return sorted(values, key=repr)

    def time_span(self) -> Optional[Tuple[float, float]]:
        """(oldest, newest) timestamp across sorted run and tail."""
        if not self._ts:
            return None
        oldest = self._ts[0]
        if self._tail:
            oldest = min(oldest, min(entry[0] for entry in self._tail))
        # tail entries are always older than the sorted run's newest
        return oldest, self._ts[-1]

    def stats(self) -> Dict[str, Any]:
        """Tail-buffer and merge counters alongside the backend identity."""
        return {
            "backend": self.name,
            "records": len(self),
            "inserts": self.inserts,
            "out_of_order": self.out_of_order,
            "tail": len(self._tail),
            "max_tail": self.max_tail,
            "merges": self.merges,
        }


class SqliteBackend(StorageBackend):
    """One WAL-mode SQLite file per table; rows pickled for exact fidelity.

    Indexed columns from the table's declaration become real ``TEXT``
    columns with ``(column, ts)`` SQL indexes; string equality filters
    are pushed down to SQL, everything else (and every filter, again)
    is applied in Python on the decoded records, so results are
    byte-identical to :class:`MemoryBackend` regardless of field types.
    Only string values are mirrored into the SQL columns — a non-string
    can never equal a pushed-down string, so the pushdown never loses a
    row.

    Connections are reopened transparently after a ``fork()`` (the
    service's batch fork backend inherits engines copy-on-write), keyed
    on the current PID.

    All connection access is serialized under an internal lock: the
    single shared connection (``check_same_thread=False``) is *not* safe
    for concurrent writers — interleaved execute/commit pairs silently
    drop rows or raise ``cannot start a transaction within a
    transaction`` — and direct consumers such as the incident store
    write from many service threads without a Table façade in front.
    """

    name = "sqlite"

    def __init__(
        self,
        table_name: str,
        indexed_columns: Iterable[str] = (),
        path: Optional[str] = None,
        synchronous: str = "NORMAL",
    ) -> None:
        self.table_name = table_name
        self._columns = tuple(indexed_columns)
        if path is None:
            directory = tempfile.mkdtemp(prefix="grca-store-")
            path = os.path.join(directory, f"{table_name}.sqlite")
        else:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
        self.path = path
        self._synchronous = synchronous
        self._pid: Optional[int] = None
        self._conn: Optional[sqlite3.Connection] = None
        self._last_ts: Optional[float] = None
        self._lock = threading.RLock()
        self.inserts = 0
        self.out_of_order = 0
        self._connect()

    @property
    def indexed_columns(self) -> Tuple[str, ...]:
        return self._columns

    def _column_sql(self, column: str) -> str:
        return '"col_' + column.replace('"', '""') + '"'

    def _connect(self) -> None:
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._pid = os.getpid()
        cur = self._conn
        cur.execute("PRAGMA journal_mode=WAL")
        cur.execute(f"PRAGMA synchronous={self._synchronous}")
        columns = "".join(
            f", {self._column_sql(c)} TEXT" for c in self._columns
        )
        cur.execute(
            "CREATE TABLE IF NOT EXISTS records ("
            "id INTEGER PRIMARY KEY AUTOINCREMENT, "
            f"ts REAL NOT NULL{columns}, payload BLOB NOT NULL)"
        )
        cur.execute("CREATE INDEX IF NOT EXISTS idx_ts ON records (ts)")
        for i, column in enumerate(self._columns):
            cur.execute(
                f"CREATE INDEX IF NOT EXISTS idx_col_{i} "
                f"ON records ({self._column_sql(column)}, ts)"
            )
        cur.commit()

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None or self._pid != os.getpid():
            # forked child: the parent's connection must not be reused
            self._conn = None
            self._connect()
        return self._conn

    def insert(self, record) -> None:
        """Insert one row: ts + mirrored string index columns + pickle."""
        values: List[Any] = [record.timestamp]
        for column in self._columns:
            value = record.get(column)
            values.append(value if isinstance(value, str) else None)
        values.append(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        placeholders = ", ".join("?" for _ in values)
        columns = "".join(f", {self._column_sql(c)}" for c in self._columns)
        with self._lock:
            conn = self._connection()
            conn.execute(
                f"INSERT INTO records (ts{columns}, payload) "
                f"VALUES ({placeholders})",
                values,
            )
            conn.commit()
            self.inserts += 1
            if self._last_ts is not None and record.timestamp < self._last_ts:
                self.out_of_order += 1
            elif self._last_ts is None or record.timestamp > self._last_ts:
                self._last_ts = record.timestamp

    def query(
        self,
        start: Optional[float],
        end: Optional[float],
        equals: Dict[str, Any],
    ) -> List[Any]:
        """SQL window + string-equality pushdown, re-filtered in Python."""
        clauses: List[str] = []
        params: List[Any] = []
        if start is not None:
            clauses.append("ts >= ?")
            params.append(start)
        if end is not None:
            clauses.append("ts <= ?")
            params.append(end)
        for column, value in equals.items():
            if column in self._columns and isinstance(value, str):
                clauses.append(f"{self._column_sql(column)} = ?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._connection().execute(
                f"SELECT payload FROM records{where} ORDER BY ts, id", params
            ).fetchall()
        result = []
        for (payload,) in rows:
            record = pickle.loads(payload)
            if all(record.get(column) == value for column, value in equals.items()):
                result.append(record)
        return result

    def scan(self) -> List[Any]:
        """Every record, decoded, in (ts, insertion id) order."""
        with self._lock:
            rows = self._connection().execute(
                "SELECT payload FROM records ORDER BY ts, id"
            ).fetchall()
        return [pickle.loads(payload) for (payload,) in rows]

    def distinct(self, column: str) -> List[Any]:
        """Distinct non-None column values over the decoded records."""
        values = {record.get(column) for record in self.scan()}
        values.discard(None)
        return sorted(values, key=repr)

    def time_span(self) -> Optional[Tuple[float, float]]:
        """(oldest, newest) timestamp via MIN/MAX, or None when empty."""
        with self._lock:
            row = self._connection().execute(
                "SELECT MIN(ts), MAX(ts) FROM records"
            ).fetchone()
        if row is None or row[0] is None:
            return None
        return float(row[0]), float(row[1])

    def __len__(self) -> int:
        with self._lock:
            row = self._connection().execute(
                "SELECT COUNT(*) FROM records"
            ).fetchone()
        return int(row[0])

    def stats(self) -> Dict[str, Any]:
        """Backend identity, counters and the database file path."""
        return {
            "backend": self.name,
            "records": len(self),
            "inserts": self.inserts,
            "out_of_order": self.out_of_order,
            "path": self.path,
        }

    def close(self) -> None:
        """Close the connection owned by this process (fork-safe)."""
        with self._lock:
            if self._conn is not None and self._pid == os.getpid():
                self._conn.close()
            self._conn = None


class StorageUnavailable(ConnectionError):
    """A storage read failed or was refused behind an open breaker.

    Subclasses :class:`ConnectionError` so the service's error
    classifier (:func:`repro.service.policy.is_transient`) treats it as
    transient without the collector importing the service layer: a read
    that hit a broken disk or an open circuit is worth retrying later,
    not a rule bug.
    """


class BreakerBackend(StorageBackend):
    """Circuit breaker around another backend's *read* path.

    The same state machine :class:`~repro.collector.health.FeedReader`
    runs for feed transports, applied one layer down: after
    ``failure_threshold`` consecutive read failures the circuit opens
    and reads **fail fast** with :class:`StorageUnavailable` — a wedged
    database stalls diagnoses for ``reset_timeout`` at most once, not
    once per retrieval — until a half-open probe succeeds.  Failing
    reads are re-raised wrapped in :class:`StorageUnavailable` (original
    attached as ``__cause__``) so the job-level retry policy classifies
    them uniformly.

    Writes pass through unguarded: ingest and diagnosis have different
    failure domains, and a read-side brownout must not drop feed data.
    Like every backend, instances are serialized by the owning table's
    lock; the breaker itself is thread-safe anyway, so sharing one
    breaker across tables (``breaker=``) also works.
    """

    def __init__(
        self,
        inner: StorageBackend,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        breaker: Optional[Any] = None,
    ) -> None:
        self.inner = inner
        if breaker is None:
            # lazy import: collector must stay importable without the
            # service layer loaded (policy only lazily imports back)
            from ..service.policy import CircuitBreaker

            breaker = CircuitBreaker(
                failure_threshold=failure_threshold,
                reset_timeout=reset_timeout,
                clock=clock,
            )
        self.breaker = breaker

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"{self.inner.name}+breaker"

    @property
    def indexed_columns(self) -> Tuple[str, ...]:
        return self.inner.indexed_columns

    def insert(self, record) -> None:
        """Pass the write straight through (writes are unguarded)."""
        self.inner.insert(record)

    def _read(self, op: Callable, label: str, *args) -> Any:
        if not self.breaker.allow():
            raise StorageUnavailable(
                f"{self.name}: circuit open, {label} refused (fail-fast)"
            )
        try:
            result = op(*args)
        except Exception as exc:
            self.breaker.record_failure()
            raise StorageUnavailable(
                f"{self.name}: {label} failed ({type(exc).__name__}: {exc})"
            ) from exc
        self.breaker.record_success()
        return result

    def query(
        self,
        start: Optional[float],
        end: Optional[float],
        equals: Dict[str, Any],
    ) -> List[Any]:
        """Breaker-guarded window query against the inner backend."""
        return self._read(self.inner.query, "query", start, end, equals)

    def query_columns(
        self,
        start: Optional[float],
        end: Optional[float],
        equals: Dict[str, Any],
    ) -> ColumnarSlice:
        """Breaker-guarded columnar window query against the inner backend."""
        return self._read(
            self.inner.query_columns, "query_columns", start, end, equals
        )

    def scan(self) -> List[Any]:
        """Breaker-guarded full scan of the inner backend."""
        return self._read(self.inner.scan, "scan")

    def distinct(self, column: str) -> List[Any]:
        """Breaker-guarded distinct-values read."""
        return self._read(self.inner.distinct, "distinct", column)

    def time_span(self) -> Optional[Tuple[float, float]]:
        """Breaker-guarded (oldest, newest) timestamp read."""
        return self._read(self.inner.time_span, "time_span")

    def __len__(self) -> int:
        return len(self.inner)

    def stats(self) -> Dict[str, Any]:
        """Inner backend stats plus the breaker's state and open count."""
        stats = dict(self.inner.stats())
        stats["backend"] = self.name
        stats["breaker"] = self.breaker.state()
        stats["breaker_opened"] = self.breaker.times_opened
        return stats

    def close(self) -> None:
        """Close the inner backend."""
        self.inner.close()


def breaker_backend(
    inner: Optional[BackendSpec] = None,
    failure_threshold: int = 5,
    reset_timeout: float = 30.0,
    clock: Callable[[], float] = time.monotonic,
) -> BackendFactory:
    """Factory wrapping another backend spec's tables in read breakers.

    Each table gets its own breaker (one wedged table must not open the
    circuit for healthy ones).
    """
    inner_factory = resolve_backend(inner)

    def make(table_name: str, indexed_columns: Tuple[str, ...]) -> BreakerBackend:
        return BreakerBackend(
            inner_factory(table_name, indexed_columns),
            failure_threshold=failure_threshold,
            reset_timeout=reset_timeout,
            clock=clock,
        )

    make.backend_name = (  # type: ignore[attr-defined]
        f"{backend_name(inner_factory)}+breaker"
    )
    return make


# ----------------------------------------------------------------------
# factories and process-default selection


def memory_backend(tail_limit: Optional[int] = None) -> BackendFactory:
    """Factory building a :class:`MemoryBackend` per table."""

    def make(table_name: str, indexed_columns: Tuple[str, ...]) -> MemoryBackend:
        return MemoryBackend(indexed_columns, tail_limit=tail_limit)

    make.backend_name = "memory"  # type: ignore[attr-defined]
    return make


def sqlite_backend(
    directory: Optional[str] = None, synchronous: str = "NORMAL"
) -> BackendFactory:
    """Factory building one :class:`SqliteBackend` file per table.

    ``directory`` is where the per-table database files live (created if
    missing); omitted, a fresh temporary directory is used — a cache
    store with SQLite semantics.  Point it somewhere durable to make the
    store persistent across runs.
    """
    if directory is None:
        directory = tempfile.mkdtemp(prefix="grca-store-")
    else:
        os.makedirs(directory, exist_ok=True)

    def make(table_name: str, indexed_columns: Tuple[str, ...]) -> SqliteBackend:
        return SqliteBackend(
            table_name,
            indexed_columns,
            path=os.path.join(directory, f"{table_name}.sqlite"),
            synchronous=synchronous,
        )

    make.backend_name = "sqlite"  # type: ignore[attr-defined]
    make.directory = directory  # type: ignore[attr-defined]
    return make


_default_lock = threading.Lock()
_default_backend: Optional[BackendSpec] = None


def set_default_backend(spec: Optional[BackendSpec]) -> None:
    """Set the process-wide default backend (None restores built-in).

    This is the config-only swap used by the ``--backend`` CLI flag:
    every :class:`~repro.collector.store.DataStore` built afterwards
    without an explicit ``backend=`` — including the ones scenario
    simulators create internally — uses this spec.
    """
    global _default_backend
    with _default_lock:
        _default_backend = None if spec is None else resolve_backend(spec)


def default_backend() -> BackendFactory:
    """The process default: explicit setting, else ``GRCA_STORE_BACKEND``
    (``memory`` or ``sqlite``), else memory."""
    with _default_lock:
        if _default_backend is not None:
            return _default_backend
    env = os.environ.get("GRCA_STORE_BACKEND")
    if env:
        return resolve_backend(env)
    return memory_backend()


def resolve_backend(spec: Optional[BackendSpec]) -> BackendFactory:
    """Normalize a backend spec (name / factory / None) to a factory."""
    if spec is None:
        return default_backend()
    if callable(spec):
        return spec
    if spec == "memory":
        return memory_backend()
    if spec == "sqlite":
        return sqlite_backend()
    raise ValueError(
        f"unknown storage backend {spec!r}; use 'memory', 'sqlite' or a factory"
    )


def backend_name(spec: Optional[BackendSpec]) -> str:
    """Human-readable identity of a backend spec or factory."""
    factory = resolve_backend(spec)
    return getattr(factory, "backend_name", getattr(factory, "name", "custom"))
