"""Command-line interface.

Subcommands mirror the operator workflows of the paper:

* ``repro-grca diagnose <scenario>`` — simulate a scenario, run the
  matching RCA application and print the root-cause breakdown (the
  Result Browser table view);
* ``repro-grca mine`` — run the Section IV-B correlation-mining study
  and print the prefiltered vs unfiltered comparison;
* ``repro-grca catalog events|rules`` — print the Knowledge Library;
* ``repro-grca spec check <file>`` — validate a rule-specification file
  against the library;
* ``repro-grca simulate <scenario> --out DIR`` — dump the raw feeds a
  scenario produces, one file per data source;
* ``repro-grca serve <scenario>`` — run the scenario through the RCA
  *service* layer: periodic scheduled runs on a parallel worker pool
  with result caching, then print the diagnosis breakdown and the
  service metrics (queue depth/wait, latency percentiles, cache hit
  rate, worker utilization);
* ``repro-grca api <scenario>`` — expose the scenario's RCA service
  over the network: N independent service shards behind the stdlib
  HTTP/JSON gateway (``POST /v1/jobs``, ``GET /v1/health``, ...);
* ``repro-grca incidents list|show|report|top`` — fold a scenario's
  diagnoses into deduplicated incidents (:mod:`repro.incident`): list
  them, dump one as ``grca-incident/1`` JSON, render the standardized
  sectioned RCA report, or rank top-offender locations;
* ``repro-grca eval`` — run the scored evaluation scenarios
  (:mod:`repro.eval`): seeded failure-injected replays graded on
  accuracy / coverage / localization / honesty, with a matrix artifact
  (``BENCH_scenarios.json``), CI gating (``--gate``) and artifact
  diffing (``--diff``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .apps import BackboneApp, BgpFlapApp, CdnApp, PimApp, register_bgp_events
from .apps.studies import cpu_correlation_study
from .core.knowledge import KnowledgeLibrary
from .core.rulespec import RuleSpecError, SpecCompiler
from .simulation import (
    backbone_probe_month,
    bgp_flap_storm,
    bgp_month,
    cdn_month,
    cpu_bgp_study,
    pim_fortnight,
)

_SCENARIOS = {
    "backbone-month": (backbone_probe_month, BackboneApp),
    "bgp-month": (bgp_month, BgpFlapApp),
    "bgp-storm": (bgp_flap_storm, BgpFlapApp),
    "cdn-month": (cdn_month, CdnApp),
    "pim-fortnight": (pim_fortnight, PimApp),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-grca",
        description="G-RCA reproduction: simulate, diagnose, mine, inspect.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_args(command):
        command.add_argument(
            "--backend", choices=["memory", "sqlite"], default=None,
            help="storage engine for the Data Collector tables "
                 "(default: memory)")
        command.add_argument(
            "--store-path", metavar="DIR", default=None,
            help="with --backend sqlite: directory for the per-table "
                 "database files (default: a temporary directory)")

    diagnose = sub.add_parser("diagnose", help="simulate + diagnose a scenario")
    diagnose.add_argument("scenario", choices=sorted(_SCENARIOS))
    add_backend_args(diagnose)
    diagnose.add_argument("--seed", type=int, default=1)
    diagnose.add_argument("--size", type=int, default=300,
                          help="number of symptom events to inject")
    diagnose.add_argument("--trend", action="store_true",
                          help="also print the per-day cause trend")
    diagnose.add_argument("--report", metavar="FILE",
                          help="write a markdown report to FILE")
    diagnose.add_argument("--feed-stats", action="store_true",
                          help="print per-feed ingest health statistics")
    diagnose.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="diagnose with N parallel workers "
                               "(identical results to serial)")
    diagnose.add_argument("--trace", nargs="?", const="trace.json",
                          metavar="PATH",
                          help="record a span tree of the whole run and "
                               "write it as JSON to PATH (default "
                               "trace.json); forces serial diagnosis so "
                               "stage times nest under one root")

    mine = sub.add_parser("mine", help="run the Fig. 7 correlation study")
    mine.add_argument("--seed", type=int, default=1)
    mine.add_argument("--days", type=float, default=45.0)

    catalog = sub.add_parser("catalog", help="print the Knowledge Library")
    catalog.add_argument("what", choices=["events", "rules"])

    spec = sub.add_parser("spec", help="rule-specification utilities")
    spec_sub = spec.add_subparsers(dest="spec_command", required=True)
    check = spec_sub.add_parser("check", help="validate a spec file")
    check.add_argument("file")

    simulate = sub.add_parser("simulate", help="dump a scenario's raw feeds")
    simulate.add_argument("scenario", choices=sorted(_SCENARIOS))
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument("--size", type=int, default=100)
    simulate.add_argument("--out", required=True, help="output directory")
    add_backend_args(simulate)

    serve = sub.add_parser(
        "serve", help="run a scenario through the concurrent RCA service"
    )
    serve.add_argument("scenario", choices=sorted(_SCENARIOS))
    add_backend_args(serve)
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--size", type=int, default=300,
                       help="number of symptom events to inject")
    serve.add_argument("--workers", type=int, default=4,
                       help="worker threads in the diagnosis pool")
    serve.add_argument("--rounds", type=int, default=8,
                       help="periodic scheduler rounds over the scenario span")
    serve.add_argument("--queue-depth", type=int, default=256,
                       help="job queue admission-control limit")
    serve.add_argument("--repeat", action="store_true",
                       help="re-run the full window afterwards to "
                            "exercise the result cache")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-job deadline in seconds (jobs past it "
                            "finish TIMED_OUT; default unbounded)")
    serve.add_argument("--no-supervise", action="store_true",
                       help="disable the worker supervisor (crash "
                            "recovery, hang detachment, brownout)")
    serve.add_argument("--retries", type=int, default=3,
                       help="attempts per job for transient failures "
                            "(1 disables retries)")

    api = sub.add_parser(
        "api", help="expose a scenario's RCA service over the HTTP gateway"
    )
    api.add_argument("scenario", choices=sorted(_SCENARIOS))
    add_backend_args(api)
    api.add_argument("--seed", type=int, default=1)
    api.add_argument("--size", type=int, default=300,
                     help="number of symptom events to inject")
    api.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    api.add_argument("--port", type=int, default=8080,
                     help="bind port; 0 picks an ephemeral port")
    api.add_argument("--shards", type=int, default=2,
                     help="independent RCA service shards behind the gateway")
    api.add_argument("--workers", type=int, default=2,
                     help="worker threads per shard")
    api.add_argument("--queue-depth", type=int, default=256,
                     help="per-shard job queue admission-control limit")
    api.add_argument("--deadline", type=float, default=None,
                     help="per-job deadline in seconds (default unbounded)")
    api.add_argument("--incident-gap", type=float, default=3600.0,
                     metavar="SECONDS",
                     help="incident dedupe window behind GET /v1/incidents "
                          "(default 3600)")

    incidents = sub.add_parser(
        "incidents",
        help="aggregate a scenario's diagnoses into deduplicated "
             "incidents (list / show / report / top)",
    )
    incidents_sub = incidents.add_subparsers(
        dest="incidents_command", required=True
    )

    def add_incident_args(command):
        command.add_argument("scenario", choices=sorted(_SCENARIOS))
        add_backend_args(command)
        command.add_argument("--seed", type=int, default=1)
        command.add_argument("--size", type=int, default=300,
                             help="number of symptom events to inject")
        command.add_argument("--gap", type=float, default=3600.0,
                             metavar="SECONDS",
                             help="dedupe window: a repeat symptom within "
                                  "GAP of an incident's last activity "
                                  "folds in (default 3600)")

    inc_list = incidents_sub.add_parser(
        "list", help="one line per deduplicated incident"
    )
    add_incident_args(inc_list)
    inc_list.add_argument("--cause", default=None,
                          help="only incidents with this root cause")
    inc_list.add_argument("--flapping", action="store_true",
                          help="only incidents with flap count > 1")

    inc_show = incidents_sub.add_parser(
        "show", help="one incident as grca-incident/1 JSON"
    )
    add_incident_args(inc_show)
    inc_show.add_argument("incident_id",
                          help="incident id from `incidents list`")
    inc_show.add_argument("--timeline", action="store_true",
                          help="print the revision timeline instead of "
                               "the latest document")

    inc_report = incidents_sub.add_parser(
        "report", help="standardized sectioned RCA report (markdown)"
    )
    add_incident_args(inc_report)
    inc_report.add_argument("--id", dest="incident_id", default=None,
                            help="incident to report on (default: most "
                                 "flapping)")
    inc_report.add_argument("--out", metavar="FILE", default=None,
                            help="write the report to FILE instead of "
                                 "stdout")
    inc_report.add_argument("--json", action="store_true",
                            help="emit the grca-incident/1 JSON document "
                                 "instead of markdown")

    inc_top = incidents_sub.add_parser(
        "top", help="top offender locations + cause breakdown over time"
    )
    add_incident_args(inc_top)
    inc_top.add_argument("--limit", type=int, default=10,
                         help="offender rows to print (default 10)")

    evaluate = sub.add_parser(
        "eval",
        help="run scored evaluation scenarios (accuracy/coverage/"
             "localization/honesty vs injected ground truth)",
    )
    evaluate.add_argument("names", nargs="*", metavar="SCENARIO",
                          help="registered scenario names to run "
                               "(see --list)")
    evaluate.add_argument("--list", action="store_true", dest="list_scenarios",
                          help="list the registered scenarios and exit")
    evaluate.add_argument("--matrix", action="store_true",
                          help="run the full registry (or --only subset) "
                               "and write the matrix artifact")
    evaluate.add_argument("--only", action="append", metavar="NAME",
                          help="with --matrix: restrict to NAME "
                               "(repeatable)")
    evaluate.add_argument("--gate", action="store_true",
                          help="exit 1 if any gated scenario misses its "
                               "thresholds")
    evaluate.add_argument("--out", metavar="FILE", default=None,
                          help="matrix artifact path (default "
                               "BENCH_scenarios.json with --matrix)")
    evaluate.add_argument("--no-timing", action="store_true",
                          help="omit wall-clock timing from the artifact "
                               "(byte-stable output)")
    evaluate.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                          help="compare two matrix artifact files and "
                               "exit 1 on regressions")
    return parser


def _apply_backend(args) -> None:
    """Make ``--backend`` the process default before scenarios build.

    Scenario simulators construct their own :class:`DataCollector`
    internally, so the swap has to be config-only: set the default and
    every store created afterwards uses the chosen engine.
    """
    backend = getattr(args, "backend", None)
    if backend is None:
        return
    from .collector.backends import set_default_backend, sqlite_backend

    if backend == "sqlite":
        set_default_backend(
            sqlite_backend(directory=getattr(args, "store_path", None))
        )
    else:
        set_default_backend(backend)


def _run_scenario(name: str, seed: int, size: int):
    scenario, app_cls = _SCENARIOS[name]
    kwargs = {"seed": seed}
    size_kwarg = {
        "backbone-month": "total_losses",
        "bgp-month": "total_flaps",
        "bgp-storm": "total_flaps",
        "cdn-month": "total_degradations",
        "pim-fortnight": "total_changes",
    }[name]
    kwargs[size_kwarg] = size
    result = scenario(**kwargs)
    return result, app_cls


def _traced_run(app, result, scenario: str):
    """Serial whole-run diagnosis under one ``run`` root span.

    Returns ``(browser, root_span)``.  Used by ``diagnose --trace``:
    every symptom's ``diagnose`` subtree nests under the one root, so
    per-stage exclusive times sum to at most the root duration.
    """
    from .core.browser import ResultBrowser
    from .obs import Tracer

    tracer = Tracer()
    with tracer.span("run", label=scenario, scenario=scenario) as root:
        with tracer.span(
            "detect", label=app.engine.graph.symptom_event
        ) as span:
            symptoms = app.find_symptoms(result.start, result.end)
            span.annotate(retrieved=len(symptoms))
        diagnoses = [app.engine.diagnose(s, tracer=tracer) for s in symptoms]
        root.annotate(symptoms=len(symptoms))
    return ResultBrowser(diagnoses), root


def _cmd_diagnose(args) -> int:
    result, app_cls = _run_scenario(args.scenario, args.seed, args.size)
    app = app_cls.build(result.platform())
    root = None
    if args.trace is not None:
        if args.jobs > 1:
            print("note: --trace forces serial diagnosis; --jobs ignored",
                  file=sys.stderr)
        browser, root = _traced_run(app, result, args.scenario)
    else:
        browser = app.run(result.start, result.end, jobs=max(1, args.jobs))
    print(f"scenario {args.scenario}: {len(browser)} symptoms diagnosed "
          f"({result.collector.store.total_records()} records ingested)\n")
    print(browser.format_breakdown())
    print(f"\nexplained: {100 * browser.explained_fraction():.1f}%")
    degraded = browser.degraded()
    if len(degraded):
        print(f"degraded evidence: {len(degraded)} diagnoses carry caveats "
              f"(mean confidence {degraded.mean_confidence():.2f})")
        for row in degraded.breakdown(annotated=True):
            print(f"  {row.root_cause}: {row.count}")
    if args.feed_stats:
        print()
        for line in result.collector.feed_stats_lines():
            print(line)
    if args.trend:
        print("\nper-day trend:")
        print(browser.format_trend())
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(browser.report(f"G-RCA report: {args.scenario}"))
        print(f"report written to {args.report}")
    if root is not None:
        from .obs import (
            format_stage_lines,
            stage_breakdown,
            summarize_stages,
            write_trace,
        )

        write_trace(args.trace, root)
        print(f"\ntrace written to {args.trace} "
              f"(root span covers {root.duration * 1000:.1f} ms)")
        summary = summarize_stages([stage_breakdown(root)])
        for line in format_stage_lines(summary):
            print(line)
    return 0


def _cmd_mine(args) -> int:
    result = cpu_bgp_study(seed=args.seed, duration_days=args.days)
    app = BgpFlapApp.build(result.platform())
    diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))
    study = cpu_correlation_study(app, diagnoses, result.start, result.end)
    print(f"flaps: {study.n_all_flaps}; CPU-related subset: {study.n_cpu_related}; "
          f"candidate series: {study.n_candidates}\n")
    print("significant associations, prefiltered CPU-related flaps:")
    for mined in study.significant_prefiltered():
        print(f"  {mined}")
    print("\nsignificant associations, all flaps:")
    for mined in study.significant_unfiltered():
        print(f"  {mined}")
    pre = study.prefiltered_result("provisioning.port_turnup")
    unf = study.unfiltered_result("provisioning.port_turnup")
    if pre and unf:
        print(f"\nprovisioning activity: prefiltered score {pre.score:.1f} "
              f"({'significant' if pre.significant else 'not significant'}), "
              f"unfiltered score {unf.score:.1f} "
              f"({'significant' if unf.significant else 'not significant'})")
    return 0


def _cmd_catalog(args) -> int:
    kb = KnowledgeLibrary()
    if args.what == "events":
        width = max(len(n) for n in kb.events.names())
        for name in kb.events.names():
            definition = kb.events.get(name)
            print(f"{name:<{width}}  {definition.location_type.value:<20} "
                  f"{definition.data_source}")
        print(f"\n{len(kb.events.names())} event definitions")
    else:
        pairs = kb.rules.pairs()
        width = max(len(s) for s, _ in pairs)
        for symptom, diagnostic in pairs:
            print(f"{symptom:<{width}}  ->  {diagnostic}")
        print(f"\n{len(pairs)} diagnosis rule templates")
    return 0


def _cmd_spec_check(args) -> int:
    kb = KnowledgeLibrary()
    events = kb.scoped_events()
    register_bgp_events(events)  # make the stock app events available too
    try:
        with open(args.file) as handle:
            text = handle.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    compiler = SpecCompiler(events, kb.rules)
    try:
        graph = compiler.compile_text(text)
    except RuleSpecError as exc:
        print(f"{args.file}: {exc}", file=sys.stderr)
        return 1
    print(f"{args.file}: OK — application {graph.name!r}, "
          f"symptom {graph.symptom_event!r}, {len(graph.all_rules())} rules, "
          f"{len(graph.events())} events")
    return 0


def _cmd_simulate(args) -> int:
    result, _app_cls = _run_scenario(args.scenario, args.seed, args.size)
    os.makedirs(args.out, exist_ok=True)
    # re-render is not possible post-ingest; dump the normalized tables
    total = 0
    for name, table in sorted(result.collector.store.tables.items()):
        path = os.path.join(args.out, f"{name}.tsv")
        with open(path, "w") as handle:
            for record in table.scan():
                fields = "\t".join(
                    f"{key}={value}" for key, value in record.fields
                )
                handle.write(f"{record.timestamp}\t{fields}\n")
                total += 1
        print(f"wrote {path} ({len(table)} records)")
    print(f"{total} records across {len(result.collector.store.tables)} sources; "
          f"{len(result.ground_truth)} ground-truth symptoms")
    return 0


def _cmd_serve(args) -> int:
    from .core.browser import ResultBrowser

    result, app_cls = _run_scenario(args.scenario, args.seed, args.size)
    platform = result.platform()
    app = app_cls.build(platform)
    from .service.policy import RetryPolicy

    service = platform.serve(
        {args.scenario: app},
        workers=max(1, args.workers),
        queue_depth=args.queue_depth,
        default_deadline=args.deadline,
        supervise=not args.no_supervise,
        retry=RetryPolicy(max_attempts=max(1, args.retries)),
    )
    rounds = max(1, args.rounds)
    interval = (result.end - result.start) / rounds
    service.schedule_periodic(
        args.scenario, interval, first_due=result.start + interval
    )
    # drive the scheduler with the data clock, one round at a time —
    # the shape of a live deployment, compressed to the scenario span
    jobs = []
    for k in range(rounds):
        jobs.extend(service.tick(result.start + (k + 1) * interval))
    service.drain(timeout=600.0)
    from .service.policy import OperationCancelled

    diagnoses = []
    for job in jobs:
        try:
            diagnoses.extend(job.outcome(timeout=60.0))
        except OperationCancelled as exc:
            # deadline-bounded runs: a timed-out round is reported, the
            # remaining rounds still land
            print(f"job {job.job_id} {job.state.value}: {exc}")
    browser = ResultBrowser(diagnoses)
    print(f"scenario {args.scenario}: {len(browser)} symptoms diagnosed by "
          f"{args.workers} workers over {rounds} scheduled rounds\n")
    print(browser.format_breakdown())
    print(f"\nexplained: {100 * browser.explained_fraction():.1f}%")
    if args.repeat:
        repeat = service.submit_run(
            args.scenario, result.start, result.end, block=True
        )
        repeat.outcome(timeout=600.0)
        print("\nrepeat of the full window served from the result cache:")
    print()
    for line in service.metrics_lines():
        print(line)
    service.shutdown(graceful=True)
    return 0


def _cmd_api(args) -> int:
    import time

    from .service.http import RcaGateway

    result, app_cls = _run_scenario(args.scenario, args.seed, args.size)
    platform = result.platform()
    app = app_cls.build(platform)
    router = platform.serve_sharded(
        {args.scenario: app},
        shards=max(1, args.shards),
        workers=max(1, args.workers),
        queue_depth=args.queue_depth,
        default_deadline=args.deadline,
        incidents=True,
        incident_gap=args.incident_gap,
    )
    gateway = RcaGateway(router, host=args.host, port=args.port).start()
    # the URL line is a contract: the CI smoke test (and any wrapper
    # script) parses it to find the ephemeral port
    print(f"RCA gateway listening on {gateway.url} "
          f"({len(router)} shards x {max(1, args.workers)} workers, "
          f"app {args.scenario!r}, window "
          f"[{result.start:.0f}, {result.end:.0f}])",
          flush=True)
    print(f"  try: curl {gateway.url}/v1/health", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nshutting down", flush=True)
    finally:
        gateway.stop()
    return 0


def _build_incident_store(args):
    """Diagnose the scenario and fold the stream into an IncidentStore."""
    from .incident import IncidentAggregator, IncidentStore

    result, app_cls = _run_scenario(args.scenario, args.seed, args.size)
    app = app_cls.build(result.platform())
    browser = app.run(result.start, result.end)
    if getattr(args, "backend", None) == "sqlite" and args.store_path:
        store = IncidentStore.sqlite(args.store_path)
    else:
        store = IncidentStore()
    aggregator = IncidentAggregator(gap_seconds=args.gap, sink=store.record)
    for diagnosis in browser.diagnoses:
        aggregator.observe(diagnosis)
    aggregator.advance(result.end + args.gap + 1.0)
    return store, aggregator, len(browser)


def _cmd_incidents(args) -> int:
    import json

    from .incident import render_incident_report, render_incident_summary

    store, aggregator, n_diagnoses = _build_incident_store(args)

    if args.incidents_command == "list":
        incidents = store.incidents(cause=args.cause)
        if args.flapping:
            incidents = [i for i in incidents if i.flap_count > 1]
        stats = aggregator.stats()
        print(f"scenario {args.scenario}: {n_diagnoses} diagnoses -> "
              f"{stats['incidents']} incidents "
              f"(gap {args.gap:.0f}s, "
              f"{stats['deduped_reemissions']} re-emissions deduped)\n")
        print(render_incident_summary(incidents))
        return 0

    if args.incidents_command == "show":
        try:
            if args.timeline:
                revisions = store.timeline(args.incident_id)
                document = [r.to_json() for r in revisions]
            else:
                document = store.get(args.incident_id).to_json()
        except KeyError:
            print(f"error: unknown incident {args.incident_id!r} "
                  f"(see `incidents list`)", file=sys.stderr)
            return 1
        print(json.dumps(document, indent=2, sort_keys=True,
                         allow_nan=False))
        return 0

    if args.incidents_command == "report":
        incidents = store.incidents()
        if not incidents:
            print("error: the scenario produced no incidents",
                  file=sys.stderr)
            return 1
        if args.incident_id is not None:
            try:
                incident = store.get(args.incident_id)
            except KeyError:
                print(f"error: unknown incident {args.incident_id!r} "
                      f"(see `incidents list`)", file=sys.stderr)
                return 1
        else:
            incident = max(
                incidents,
                key=lambda i: (i.flap_count, i.duration, i.incident_id),
            )
        if args.json:
            text = json.dumps(incident.to_json(), indent=2, sort_keys=True,
                              allow_nan=False) + "\n"
        else:
            text = render_incident_report(incident, related=incidents)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text)
            print(f"report written to {args.out}")
        else:
            print(text, end="")
        return 0

    # top: offender locations, then the cause distribution over time
    offenders = store.top_offenders(limit=args.limit)
    print(f"scenario {args.scenario}: top {len(offenders)} offender "
          f"location(s) across {len(store)} incidents\n")
    width = max([len("Location")] + [len(r["location"]) for r in offenders])
    print(f"{'Location':<{width}}  Incidents  Flaps  Causes")
    for row in offenders:
        print(f"{row['location']:<{width}}  {row['incidents']:>9}  "
              f"{row['flaps']:>5}  {', '.join(row['causes'])}")
    print("\nroot-cause distribution (incidents per day):")
    for cause, buckets in store.breakdown().items():
        total = sum(count for _bucket, count in buckets)
        days = len(buckets)
        print(f"  {cause}: {total} incident(s) over {days} day(s)")
    return 0


def _cmd_eval(args) -> int:
    from .eval import (
        MatrixGateFailure,
        diff_matrices,
        ensure_gate,
        format_diff_lines,
        get_scenario,
        load_matrix,
        run_matrix,
        scenario_names,
        write_matrix,
    )

    if args.diff:
        try:
            old, new = (load_matrix(path) for path in args.diff)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        rows = diff_matrices(old, new)
        for line in format_diff_lines(rows):
            print(line)
        regressed = [row for row in rows if row["status"] == "regressed"]
        if regressed:
            print(f"\n{len(regressed)} scenario(s) regressed")
            return 1
        return 0

    if args.list_scenarios:
        for name in scenario_names():
            print(get_scenario(name).describe())
        return 0

    if args.matrix:
        names = args.only or None
    elif args.names:
        names = args.names
    else:
        print("error: name at least one scenario, or use --matrix / --list",
              file=sys.stderr)
        return 2
    try:
        if names:
            for name in names:
                get_scenario(name)  # fail fast with the known-name list
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    results = run_matrix(
        names=names, progress=lambda line: print(line, flush=True)
    )
    for result in results:
        print()
        for line in result.format_lines():
            print(line)

    if args.matrix or args.out:
        out = args.out or "BENCH_scenarios.json"
        document = write_matrix(out, results,
                                include_timing=not args.no_timing)
        summary = document["summary"]
        print(f"\nmatrix artifact written to {out} "
              f"({summary['count']} scenarios, composite mean "
              f"{summary['composite_mean']:.2f})")

    if args.gate:
        try:
            ensure_gate(results)
        except MatrixGateFailure as exc:
            print("\nGATE FAILED:", file=sys.stderr)
            for failure in exc.failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        gated = [r for r in results if r.gate]
        print(f"\ngate passed ({len(gated)} gated scenarios)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    _apply_backend(args)
    if args.command == "diagnose":
        return _cmd_diagnose(args)
    if args.command == "mine":
        return _cmd_mine(args)
    if args.command == "catalog":
        return _cmd_catalog(args)
    if args.command == "spec":
        return _cmd_spec_check(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "api":
        return _cmd_api(args)
    if args.command == "incidents":
        return _cmd_incidents(args)
    if args.command == "eval":
        return _cmd_eval(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
