"""Path service: the conversion utilities of Section II-B in one place.

Given the topology, the OSPF weight history, the BGP reflector feed and
the config archive, this service answers the questions the spatial model
asks:

* which ingress router does an external source enter at (NetFlow-style
  mapping, item 1);
* which egress router serves a destination at time *t* (BGP emulation,
  item 1);
* which routers / logical links / physical links / layer-1 devices lie
  on the ingress->egress path at time *t* (OSPF simulation with ECMP,
  items 3-7);
* which interface faces a given BGP neighbor IP (config lookup, item 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..topology.config_parser import ConfigArchive
from ..topology.network import Network
from .bgp import BgpEmulator
from .ospf import EcmpPaths, OspfSimulator


class IngressMap:
    """Maps external traffic sources to their ingress routers.

    The paper derives this from traffic sampling (NetFlow) or, for
    sources the ISP controls (data centers), from configuration.  Both
    reduce to a source-identifier -> ingress-router table that this class
    maintains; the simulator populates it from synthetic NetFlow records.
    """

    def __init__(self) -> None:
        self._by_source: Dict[str, str] = {}
        #: bumped on every mutation; spatial resolution caches key on it
        self.version = 0

    def learn(self, source: str, ingress_router: str) -> None:
        """Record that a source enters the network at an ingress router."""
        if self._by_source.get(source) != ingress_router:
            self._by_source[source] = ingress_router
            self.version += 1

    def ingress_for(self, source: str) -> Optional[str]:
        """The learned ingress router for a source, or None."""
        return self._by_source.get(source)

    def __len__(self) -> int:
        return len(self._by_source)


@dataclass(frozen=True)
class PathElements:
    """Every network element on an ingress->egress path at one instant."""

    routers: FrozenSet[str]
    logical_links: FrozenSet[str]
    interfaces: FrozenSet[str]
    physical_links: FrozenSet[str]
    layer1_devices: FrozenSet[str]

    @property
    def empty(self) -> bool:
        return not self.routers


_EMPTY_PATH = PathElements(
    frozenset(), frozenset(), frozenset(), frozenset(), frozenset()
)


class PathService:
    """One-stop spatial conversions over routing + topology + configs."""

    def __init__(
        self,
        network: Network,
        ospf: OspfSimulator,
        bgp: Optional[BgpEmulator] = None,
        configs: Optional[ConfigArchive] = None,
        ingress_map: Optional[IngressMap] = None,
    ) -> None:
        self.network = network
        self.ospf = ospf
        self.bgp = bgp
        self.configs = configs
        self.ingress_map = ingress_map or IngressMap()

    # ------------------------------------------------------------------
    # endpoint resolution

    def ingress_for_source(self, source: str) -> Optional[str]:
        """Ingress router for an external source (NetFlow map)."""
        return self.ingress_map.ingress_for(source)

    def egress_for_destination(
        self, ingress_router: str, dest_ip: str, timestamp: float
    ) -> Optional[str]:
        """Best egress for a destination IP via BGP emulation."""
        if self.bgp is None:
            return None
        return self.bgp.best_egress(ingress_router, dest_ip, timestamp).egress_router

    def interface_for_neighbor(
        self, router: str, neighbor_ip: str, timestamp: float
    ) -> Optional[str]:
        """``Router:NeighborIP -> Interface`` via the config archive."""
        if self.configs is None:
            return None
        parsed = self.configs.config_at(router, timestamp)
        if parsed is None:
            return None
        if_name = parsed.neighbor_interface(neighbor_ip)
        return f"{router}:{if_name}" if if_name else None

    # ------------------------------------------------------------------
    # path expansion

    def ecmp(self, ingress: str, egress: str, timestamp: float) -> EcmpPaths:
        """All equal-cost paths between two routers at a time."""
        return self.ospf.paths(ingress, egress, timestamp)

    def path_elements(self, ingress: str, egress: str, timestamp: float) -> PathElements:
        """All elements on all equal-cost paths between two routers."""
        paths = self.ospf.paths(ingress, egress, timestamp)
        if not paths.reachable:
            return _EMPTY_PATH
        routers: Set[str] = set(paths.routers)
        links: Set[str] = set(paths.links)
        interfaces: Set[str] = set()
        physical: Set[str] = set()
        layer1: Set[str] = set()
        for link_name in links:
            link = self.network.logical_link(link_name)
            interfaces.add(link.interface_a)
            interfaces.add(link.interface_z)
            for phys in link.physical_links:
                physical.add(phys)
                layer1.update(self.network.layer1_path(phys))
        return PathElements(
            routers=frozenset(routers),
            logical_links=frozenset(links),
            interfaces=frozenset(interfaces),
            physical_links=frozenset(physical),
            layer1_devices=frozenset(layer1),
        )

    def end_to_end_elements(
        self, source: str, dest_ip: str, timestamp: float
    ) -> Tuple[Optional[str], Optional[str], PathElements]:
        """Resolve Source:Destination down to in-network path elements.

        Returns ``(ingress, egress, elements)``; elements are empty when
        either endpoint cannot be resolved — the "outside of our network"
        case that dominates Table VI.
        """
        ingress = self.ingress_for_source(source)
        if ingress is None:
            return None, None, _EMPTY_PATH
        egress = self.egress_for_destination(ingress, dest_ip, timestamp)
        if egress is None:
            return ingress, None, _EMPTY_PATH
        return ingress, egress, self.path_elements(ingress, egress, timestamp)

    # ------------------------------------------------------------------
    # element expansion (containment / cross-layer, items 4-7)

    def expand_interface(self, fqname: str) -> Dict[str, List[str]]:
        """Containment and cross-layer context of one interface."""
        iface = self.network.interface(fqname)
        result: Dict[str, List[str]] = {
            "router": [iface.router],
            "line_card": [f"{iface.router}:slot{iface.slot}"],
            "logical_link": [],
            "physical_link": [],
            "layer1_device": [],
        }
        link = self.network.link_of_interface(fqname)
        if link is not None:
            result["logical_link"] = [link.name]
            result["physical_link"] = list(link.physical_links)
            result["layer1_device"] = list(
                self.network.layer1_devices_of_logical(link.name)
            )
        return result
