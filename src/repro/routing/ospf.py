"""OSPF routing simulation over the logical-link topology.

Implements the Section II-B conversion "given the ingress router to
egress router pair, the logical link or router level path between them
can be computed via an OSPF routing simulation based on network-wide link
weights from route-monitoring tools such as OSPFMon".

Two pieces:

* :class:`WeightHistory` — a time-versioned record of link-weight
  changes as flooded into the IGP (the OSPFMon feed).  Weights at an
  arbitrary historical instant can be reconstructed, which is what lets
  G-RCA diagnose transient problems after the fact.
* :class:`OspfSimulator` — Dijkstra SPF with full Equal Cost Multipath
  (ECMP) enumeration: "in the case of ECMP, all network elements along
  all paths will be considered."

Costs use standard OSPF semantics: a link whose weight reaches
:data:`COST_OUT_WEIGHT` (LSInfinity) is costed out and carries no
traffic.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..topology.network import Network

#: MaxLinkMetric / LSInfinity — a link at this weight is out of service.
COST_OUT_WEIGHT = 65535

#: Default IGP metric for generated links.
DEFAULT_WEIGHT = 10


@dataclass(frozen=True)
class WeightChange:
    """One link-weight update observed by the route monitor."""

    timestamp: float
    link: str
    weight: int


@dataclass(frozen=True)
class EcmpPaths:
    """All equal-cost paths between one router pair.

    ``router_paths`` are sequences of router names from source to
    destination inclusive; ``links`` is the union of logical links on any
    of the paths; ``cost`` is the common path cost.
    """

    source: str
    destination: str
    cost: int
    router_paths: Tuple[Tuple[str, ...], ...]
    links: FrozenSet[str]

    @property
    def routers(self) -> FrozenSet[str]:
        """Union of routers on any equal-cost path."""
        return frozenset(r for path in self.router_paths for r in path)

    @property
    def reachable(self) -> bool:
        return bool(self.router_paths)


class WeightHistory:
    """Time-versioned link weights reconstructed from OSPFMon updates."""

    def __init__(self, initial: Optional[Dict[str, int]] = None) -> None:
        self._initial: Dict[str, int] = dict(initial or {})
        self._changes: List[WeightChange] = []
        self._timestamps: List[float] = []
        self._sorted = True
        #: bumped whenever a change lands *before* the feed's frontier:
        #: version numbering shifts at already-issued instants, so any
        #: version-keyed cache must treat the whole history as new.  An
        #: in-order append leaves historical versions intact and the
        #: generation untouched.
        self.stale_generation = 0
        self._max_timestamp = float("-inf")
        # (stale generation, version) -> full weight map; instants with
        # the same version share one dict instead of rebuilding it
        self._weights_cache: Dict[Tuple[int, int], Dict[str, int]] = {}

    def record(self, change: WeightChange) -> None:
        """Append one observed weight update."""
        self._changes.append(change)
        self._sorted = False
        if change.timestamp < self._max_timestamp:
            self.stale_generation += 1
        else:
            self._max_timestamp = change.timestamp

    def record_many(self, changes: Iterable[WeightChange]) -> None:
        """Append several observed updates."""
        for change in changes:
            self.record(change)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._changes.sort(key=lambda c: c.timestamp)
            self._timestamps = [c.timestamp for c in self._changes]
            self._sorted = True
        elif len(self._timestamps) != len(self._changes):
            self._timestamps = [c.timestamp for c in self._changes]

    def version_at(self, timestamp: float) -> int:
        """Number of changes applied at or before ``timestamp``.

        Two instants with the same version index have identical weights,
        which lets the SPF cache key on the version instead of raw time.
        """
        self._ensure_sorted()
        return bisect.bisect_right(self._timestamps, timestamp)

    def weights_at(self, timestamp: float) -> Dict[str, int]:
        """Full link-weight map as of ``timestamp``.

        The returned dict is a shared cache entry keyed by version —
        hot retrieval paths call this once per observed record — so
        callers must treat it as read-only.
        """
        self._ensure_sorted()
        version = bisect.bisect_right(self._timestamps, timestamp)
        key = (self.stale_generation, version)
        weights = self._weights_cache.get(key)
        if weights is None:
            weights = dict(self._initial)
            for change in self._changes[:version]:
                weights[change.link] = change.weight
            if len(self._weights_cache) >= 128:
                self._weights_cache.clear()
            self._weights_cache[key] = weights
        return weights

    def changes_between(self, start: float, end: float) -> List[WeightChange]:
        """Updates with ``start <= timestamp <= end`` (the OSPFMon view)."""
        self._ensure_sorted()
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_right(self._timestamps, end)
        return self._changes[lo:hi]


class OspfSimulator:
    """SPF with ECMP over a :class:`Network` and a :class:`WeightHistory`."""

    def __init__(self, network: Network, history: Optional[WeightHistory] = None) -> None:
        self.network = network
        initial = {name: DEFAULT_WEIGHT for name in network.logical_links}
        if history is None:
            history = WeightHistory(initial)
        else:
            merged = dict(initial)
            merged.update(history._initial)
            history._initial = merged
            # the baseline map changed under every version
            history._weights_cache.clear()
        self.history = history
        #: bumped when the whole history is swapped out: version numbers
        #: from different histories are not comparable, so version-keyed
        #: caches outside this class (BGP decisions, spatial resolution)
        #: include the generation in their keys
        self.generation = 0
        # (stale generation, version, source) -> {destination: EcmpPaths}
        self._spf_cache: Dict[Tuple[int, int, str], Dict[str, EcmpPaths]] = {}

    def replace_history(self, history: WeightHistory) -> None:
        """Swap in a rebuilt weight history (streaming refresh).

        Default weights are merged as in the constructor and all cached
        SPF tables are dropped, since version numbering restarts.
        """
        merged = {name: DEFAULT_WEIGHT for name in self.network.logical_links}
        merged.update(history._initial)
        history._initial = merged
        self.history = history
        self.generation += 1
        self._spf_cache.clear()

    # ------------------------------------------------------------------

    def paths(self, source: str, destination: str, timestamp: float) -> EcmpPaths:
        """All equal-cost shortest paths between two routers at a time."""
        if source == destination:
            return EcmpPaths(source, destination, 0, ((source,),), frozenset())
        # the stale generation guards against aliasing: an out-of-order
        # weight record renumbers versions at already-queried instants,
        # which would otherwise let a stale table answer for a new state
        key = (
            self.history.stale_generation,
            self.history.version_at(timestamp),
            source,
        )
        table = self._spf_cache.get(key)
        if table is None:
            table = self._run_spf(source, timestamp)
            self._spf_cache[key] = table
        result = table.get(destination)
        if result is None:
            return EcmpPaths(source, destination, 0, (), frozenset())
        return result

    def distance(self, source: str, destination: str, timestamp: float) -> Optional[int]:
        """IGP distance, or ``None`` if unreachable."""
        result = self.paths(source, destination, timestamp)
        return result.cost if result.reachable else None

    # ------------------------------------------------------------------

    def _adjacency(self, timestamp: float) -> Dict[str, List[Tuple[str, str, int]]]:
        """router -> [(neighbor, link_name, weight)] with costed-out pruned."""
        weights = self.history.weights_at(timestamp)
        adjacency: Dict[str, List[Tuple[str, str, int]]] = {
            name: [] for name in self.network.routers
        }
        for name, link in self.network.logical_links.items():
            weight = weights.get(name, DEFAULT_WEIGHT)
            if weight >= COST_OUT_WEIGHT:
                continue
            adjacency[link.router_a].append((link.router_z, name, weight))
            adjacency[link.router_z].append((link.router_a, name, weight))
        return adjacency

    def _run_spf(self, source: str, timestamp: float) -> Dict[str, EcmpPaths]:
        """Dijkstra with predecessor sets, then ECMP path enumeration."""
        adjacency = self._adjacency(timestamp)
        if source not in adjacency:
            return {}
        dist: Dict[str, int] = {source: 0}
        # destination -> set of (predecessor router, link into destination)
        preds: Dict[str, Set[Tuple[str, str]]] = {source: set()}
        heap: List[Tuple[int, str]] = [(0, source)]
        visited: Set[str] = set()
        while heap:
            cost, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for neighbor, link_name, weight in adjacency[node]:
                candidate = cost + weight
                known = dist.get(neighbor)
                if known is None or candidate < known:
                    dist[neighbor] = candidate
                    preds[neighbor] = {(node, link_name)}
                    heapq.heappush(heap, (candidate, neighbor))
                elif candidate == known:
                    preds[neighbor].add((node, link_name))
        table: Dict[str, EcmpPaths] = {}
        for destination, cost in dist.items():
            if destination == source:
                continue
            router_paths, links = self._enumerate(source, destination, preds)
            table[destination] = EcmpPaths(
                source=source,
                destination=destination,
                cost=cost,
                router_paths=tuple(router_paths),
                links=frozenset(links),
            )
        return table

    @staticmethod
    def _enumerate(
        source: str,
        destination: str,
        preds: Dict[str, Set[Tuple[str, str]]],
        max_paths: int = 64,
    ) -> Tuple[List[Tuple[str, ...]], Set[str]]:
        """Walk the predecessor DAG back from ``destination``.

        Path enumeration is capped at ``max_paths`` (real routers cap ECMP
        fan-out too); the link/router *union* is still complete because it
        is accumulated during the DAG walk, not from the enumerated paths.
        """
        links: Set[str] = set()
        stack = [destination]
        seen = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for pred, link in preds.get(node, ()):
                links.add(link)
                stack.append(pred)

        paths: List[Tuple[str, ...]] = []

        def walk(node: str, suffix: Tuple[str, ...]) -> None:
            if len(paths) >= max_paths:
                return
            if node == source:
                paths.append((source,) + suffix)
                return
            for pred, _link in sorted(preds.get(node, ())):
                walk(pred, (node,) + suffix)

        walk(destination, ())
        return paths, links


def reconvergence_windows(
    history: WeightHistory, start: float, end: float, settle_seconds: float = 10.0
) -> List[Tuple[float, float]]:
    """Group weight updates into OSPF re-convergence windows.

    Updates closer than ``settle_seconds`` apart are merged into one
    re-convergence episode — the granularity at which the "OSPF
    re-convergence event" of Table I is reported.
    """
    changes = history.changes_between(start, end)
    windows: List[Tuple[float, float]] = []
    for change in changes:
        if windows and change.timestamp - windows[-1][1] <= settle_seconds:
            windows[-1] = (windows[-1][0], change.timestamp)
        else:
            windows.append((change.timestamp, change.timestamp))
    return windows
