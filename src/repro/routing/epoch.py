"""Routing epochs: fingerprinting the state spatial resolutions depend on.

Location expansion (Fig. 2) reconstructs the network condition *at a
timestamp*: OSPF path simulation, BGP best-path emulation, config and
NetFlow lookups.  All of that state changes only at discrete instants —
a weight flood, a BGP announce/withdraw, a config snapshot, a learned
ingress mapping — so two timestamps between the same pair of changes
resolve identically.  :class:`RoutingEpoch` names those equivalence
classes: it maps an instant (or several, for lookback unions) to a small
hashable *version token* that changes exactly when the underlying
routing state does.

The spatial resolution cache (:class:`repro.core.spatial.LocationResolver`)
keys memoized expansions on ``(location, join level, token)``: a cached
entry is served for any timestamp in the same epoch and is skipped —
invalidated — the moment any state it depends on actually changes.

Version sources, each paired with a *stale generation* that guards
against renumbering (an out-of-order record shifts version counts at
already-issued instants, so the generation bump retires every token
minted under the old numbering):

* OSPF — :attr:`WeightHistory.stale_generation` +
  :meth:`WeightHistory.version_at`, plus
  :attr:`OspfSimulator.generation` (bumped when the whole history is
  swapped by a streaming refresh);
* BGP — :attr:`BgpUpdateLog.stale_generation` + the global
  :meth:`BgpUpdateLog.version_at` or the per-prefix
  :meth:`BgpUpdateLog.prefix_version_at`;
* configs — :attr:`ConfigArchive.generation` (snapshot count);
* NetFlow ingress map — :attr:`IngressMap.version`;
* topology — :attr:`RoutingEpoch.topology_generation`, bumped by
  whoever rebuilds the :class:`~repro.topology.network.Network`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .paths import PathService


class RoutingEpoch:
    """Version tokens over one :class:`PathService`'s routing state.

    The resolver asks for the narrowest token covering what one
    expansion actually reads — e.g. a pure containment expansion only
    carries the topology generation, while an Ingress:Destination path
    expansion carries OSPF *and* BGP versions at both lookback instants.
    Narrow tokens mean fewer invalidations: a BGP announce does not
    evict cached OSPF-only path expansions.
    """

    def __init__(self, paths: PathService) -> None:
        self.paths = paths
        self._topology_generation = 0

    # ------------------------------------------------------------------
    # topology

    @property
    def topology_generation(self) -> int:
        """Generation of the (otherwise static) topology model."""
        return self._topology_generation

    def bump_topology(self) -> None:
        """Retire every token: the network model itself was rebuilt."""
        self._topology_generation += 1

    # ------------------------------------------------------------------
    # per-subsystem version tokens

    def ospf_token(self, *instants: float) -> Tuple[int, ...]:
        """OSPF weight versions at each instant (plus staleness guards)."""
        ospf = self.paths.ospf
        history = ospf.history
        return (
            ospf.generation,
            history.stale_generation,
        ) + tuple(history.version_at(t) for t in instants)

    def bgp_token(self, *instants: float) -> Tuple[int, ...]:
        """Global BGP feed versions at each instant.

        Used for destination-pair expansions, where the longest-prefix
        match means any prefix's update could change the resolved
        egress.  ``(0,)`` when no BGP emulator is wired.
        """
        bgp = self.paths.bgp
        if bgp is None:
            return (0,)
        log = bgp.log
        return (log.stale_generation,) + tuple(log.version_at(t) for t in instants)

    def prefix_token(self, prefix: str, *instants: float) -> Tuple[int, ...]:
        """Per-prefix BGP update versions at each instant.

        Exact for prefix locations: updates to *other* prefixes leave
        the token — and every cached expansion of this prefix — intact.
        """
        bgp = self.paths.bgp
        if bgp is None:
            return (0,)
        log = bgp.log
        return (log.stale_generation,) + tuple(
            log.prefix_version_at(prefix, t) for t in instants
        )

    def config_token(
        self, router: Optional[str] = None, *instants: float
    ) -> Tuple[int, ...]:
        """Config archive versions: the global generation, plus — when a
        router is named — the per-router snapshot count at each instant
        (so crossing a snapshot boundary in time changes the token)."""
        configs = self.paths.configs
        if configs is None:
            return (0,)
        token: Tuple[int, ...] = (configs.generation,)
        if router is not None:
            token += tuple(configs.version_at(router, t) for t in instants)
        return token

    def ingress_token(self) -> Tuple[int, ...]:
        """NetFlow ingress map version."""
        return (self.paths.ingress_map.version,)

    # ------------------------------------------------------------------

    def fingerprint(self, timestamp: float) -> Tuple[int, ...]:
        """The full routing-state fingerprint at one instant.

        The union of every subsystem token — the coarsest (most eagerly
        invalidated) epoch.  Handy for logging and for callers that do
        not know which state a computation reads.
        """
        return (
            (self._topology_generation,)
            + self.ospf_token(timestamp)
            + self.bgp_token(timestamp)
            + self.config_token()
            + self.ingress_token()
        )
