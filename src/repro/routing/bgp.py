"""BGP route emulation for the service dependency model.

Section II-B requires mapping "Ingress router:Destination" to
"Ingress router:Egress router" by looking up *historical* BGP tables.
Because "BGP routing changes are typically not available at all ingress
routers, and only those changes at the BGP route-reflectors are
available", the deployed G-RCA emulates the ingress router's BGP decision
process from the reflector-visible routes plus the OSPF distance to the
candidate egress routers.  This module implements exactly that emulation:

* :class:`BgpUpdateLog` — the time-stamped feed of announcements and
  withdrawals as seen by the route reflectors (the BGP monitor feed);
* :class:`BgpEmulator` — longest-prefix match plus best-path selection
  (local preference, AS-path length, hot-potato IGP distance, router-id
  tiebreak) evaluated *as of* an arbitrary historical instant.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..netutils import longest_prefix_match
from .ospf import OspfSimulator


@dataclass(frozen=True)
class BgpRoute:
    """One candidate route to a prefix via an egress router."""

    prefix: str
    egress_router: str
    next_hop: str = ""
    local_pref: int = 100
    as_path_len: int = 1


@dataclass(frozen=True)
class BgpUpdate:
    """One announcement (or withdrawal) in the reflector feed."""

    timestamp: float
    route: BgpRoute
    withdrawn: bool = False


@dataclass(frozen=True)
class BgpDecision:
    """Outcome of the emulated best-path selection at an ingress router."""

    prefix: str
    route: Optional[BgpRoute]
    igp_distance: Optional[int] = None

    @property
    def egress_router(self) -> Optional[str]:
        return self.route.egress_router if self.route else None


class BgpUpdateLog:
    """Chronological BGP updates with as-of-time RIB reconstruction."""

    def __init__(self) -> None:
        self._updates: Dict[str, List[BgpUpdate]] = {}
        self._sorted = True

    def record(self, update: BgpUpdate) -> None:
        """Append one observed update."""
        self._updates.setdefault(update.route.prefix, []).append(update)
        self._sorted = False

    def record_many(self, updates: Iterable[BgpUpdate]) -> None:
        """Append several observed updates."""
        for update in updates:
            self.record(update)

    def announce(
        self,
        timestamp: float,
        prefix: str,
        egress_router: str,
        next_hop: str = "",
        local_pref: int = 100,
        as_path_len: int = 1,
    ) -> None:
        """Convenience wrapper to record an announcement."""
        self.record(
            BgpUpdate(
                timestamp=timestamp,
                route=BgpRoute(prefix, egress_router, next_hop, local_pref, as_path_len),
            )
        )

    def withdraw(self, timestamp: float, prefix: str, egress_router: str) -> None:
        """Record a withdrawal of a prefix from one egress."""
        self.record(
            BgpUpdate(
                timestamp=timestamp,
                route=BgpRoute(prefix, egress_router),
                withdrawn=True,
            )
        )

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            for updates in self._updates.values():
                updates.sort(key=lambda u: u.timestamp)
            self._sorted = True

    def prefixes(self) -> List[str]:
        """All prefixes ever seen in the feed, sorted."""
        return sorted(self._updates)

    def routes_at(self, prefix: str, timestamp: float) -> List[BgpRoute]:
        """Routes for ``prefix`` still announced as of ``timestamp``.

        Replays the per-prefix update history: the latest update from each
        egress wins (an egress either currently announces or has
        withdrawn).
        """
        self._ensure_sorted()
        updates = self._updates.get(prefix, [])
        timestamps = [u.timestamp for u in updates]
        cutoff = bisect.bisect_right(timestamps, timestamp)
        latest: Dict[str, BgpUpdate] = {}
        for update in updates[:cutoff]:
            latest[update.route.egress_router] = update
        return [u.route for u in latest.values() if not u.withdrawn]

    def updates_between(self, start: float, end: float) -> List[BgpUpdate]:
        """All updates in a window, across prefixes, in time order."""
        self._ensure_sorted()
        result: List[BgpUpdate] = []
        for updates in self._updates.values():
            timestamps = [u.timestamp for u in updates]
            lo = bisect.bisect_left(timestamps, start)
            hi = bisect.bisect_right(timestamps, end)
            result.extend(updates[lo:hi])
        result.sort(key=lambda u: u.timestamp)
        return result


@dataclass
class BgpEmulator:
    """Emulated BGP decision process at ingress routers.

    Best-path selection follows the standard order restricted to the
    attributes the reflector feed carries: highest local preference,
    shortest AS path, lowest IGP (hot-potato) distance to the egress,
    then lowest egress router name as the deterministic router-id stand-in.
    """

    log: BgpUpdateLog
    ospf: OspfSimulator
    _decision_cache: Dict[Tuple[str, str, int], BgpDecision] = field(
        default_factory=dict, repr=False
    )

    def lookup_prefix(self, dest_ip: str, timestamp: float) -> Optional[str]:
        """Longest-prefix match over prefixes with live routes."""
        live = [
            prefix
            for prefix in self.log.prefixes()
            if self.log.routes_at(prefix, timestamp)
        ]
        return longest_prefix_match(live, dest_ip)

    def best_egress(
        self, ingress_router: str, dest_ip: str, timestamp: float
    ) -> BgpDecision:
        """The egress the ingress router would pick for a destination IP."""
        prefix = self.lookup_prefix(dest_ip, timestamp)
        if prefix is None:
            return BgpDecision(prefix="", route=None)
        return self.best_egress_for_prefix(ingress_router, prefix, timestamp)

    def best_egress_for_prefix(
        self, ingress_router: str, prefix: str, timestamp: float
    ) -> BgpDecision:
        """Best-path selection for a known prefix."""
        # Cache keyed on the OSPF version: decisions only change when a
        # route or a weight changes, and route changes bust per-call below.
        version = self.ospf.history.version_at(timestamp)
        routes = self.log.routes_at(prefix, timestamp)
        if not routes:
            return BgpDecision(prefix=prefix, route=None)
        cache_key = (ingress_router, prefix, version)
        cached = self._decision_cache.get(cache_key)
        if cached is not None and cached.route in routes:
            return cached

        def sort_key(route: BgpRoute) -> Tuple[int, int, int, str]:
            distance = self.ospf.distance(ingress_router, route.egress_router, timestamp)
            if distance is None:
                distance = 1 << 30  # unreachable egress loses hot-potato
            return (-route.local_pref, route.as_path_len, distance, route.egress_router)

        best = min(routes, key=sort_key)
        distance = self.ospf.distance(ingress_router, best.egress_router, timestamp)
        decision = BgpDecision(prefix=prefix, route=best, igp_distance=distance)
        self._decision_cache[cache_key] = decision
        return decision

    def egress_timeline(
        self, ingress_router: str, dest_ip: str, start: float, end: float
    ) -> List[Tuple[float, Optional[str]]]:
        """(timestamp, egress) at ``start`` and after each relevant change.

        This is how "BGP egress change" diagnostic events are validated
        against the emulated decision process.
        """
        points = [start]
        prefix = self.lookup_prefix(dest_ip, start) or self.lookup_prefix(dest_ip, end)
        for update in self.log.updates_between(start, end):
            if prefix is None or update.route.prefix == prefix:
                points.append(update.timestamp)
        timeline: List[Tuple[float, Optional[str]]] = []
        last: Optional[str] = object()  # type: ignore[assignment]
        for point in sorted(set(points)):
            egress = self.best_egress(ingress_router, dest_ip, point).egress_router
            if egress != last:
                timeline.append((point, egress))
                last = egress
        return timeline
