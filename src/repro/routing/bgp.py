"""BGP route emulation for the service dependency model.

Section II-B requires mapping "Ingress router:Destination" to
"Ingress router:Egress router" by looking up *historical* BGP tables.
Because "BGP routing changes are typically not available at all ingress
routers, and only those changes at the BGP route-reflectors are
available", the deployed G-RCA emulates the ingress router's BGP decision
process from the reflector-visible routes plus the OSPF distance to the
candidate egress routers.  This module implements exactly that emulation:

* :class:`BgpUpdateLog` — the time-stamped feed of announcements and
  withdrawals as seen by the route reflectors (the BGP monitor feed).
  The log maintains two incremental indexes so as-of-time queries stay
  cheap on large feeds: a per-prefix-length longest-prefix-match table
  (so destination lookups probe at most 33 hash buckets instead of
  scanning every prefix ever seen) and a per-prefix *state index* (the
  live route set after every update, so :meth:`BgpUpdateLog.routes_at`
  is one bisect instead of a full history replay);
* :class:`BgpEmulator` — longest-prefix match plus best-path selection
  (local preference, AS-path length, hot-potato IGP distance, router-id
  tiebreak) evaluated *as of* an arbitrary historical instant.

The per-prefix update counts double as *versions*: two instants with the
same :meth:`BgpUpdateLog.prefix_version_at` see identical route sets for
that prefix, which is what lets the emulator's decision cache (and the
spatial resolution cache in :mod:`repro.routing.epoch` /
:mod:`repro.core.spatial`) key on versions instead of raw timestamps.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..netutils import ip_to_int, parse_prefix, prefix_mask
from .ospf import OspfSimulator


@dataclass(frozen=True)
class BgpRoute:
    """One candidate route to a prefix via an egress router."""

    prefix: str
    egress_router: str
    next_hop: str = ""
    local_pref: int = 100
    as_path_len: int = 1


@dataclass(frozen=True)
class BgpUpdate:
    """One announcement (or withdrawal) in the reflector feed."""

    timestamp: float
    route: BgpRoute
    withdrawn: bool = False


@dataclass(frozen=True)
class BgpDecision:
    """Outcome of the emulated best-path selection at an ingress router."""

    prefix: str
    route: Optional[BgpRoute]
    igp_distance: Optional[int] = None

    @property
    def egress_router(self) -> Optional[str]:
        return self.route.egress_router if self.route else None


class BgpUpdateLog:
    """Chronological BGP updates with as-of-time RIB reconstruction."""

    def __init__(self) -> None:
        self._updates: Dict[str, List[BgpUpdate]] = {}
        self._sorted = True
        #: bumped whenever an update lands before the feed's frontier;
        #: version numbering shifts at already-issued instants, so any
        #: version-keyed cache must treat the whole history as new
        self.stale_generation = 0
        self._max_timestamp = float("-inf")
        # LPM index: prefix length -> {masked network int -> prefix strings}
        self._by_plen: Dict[int, Dict[int, List[str]]] = {}
        self._plens_desc: List[int] = []
        # per-prefix state index: prefix -> (timestamps, live-route tuples)
        self._state_index: Dict[str, Tuple[List[float], List[Tuple[BgpRoute, ...]]]] = {}
        # global update timestamps (for cross-prefix versioning)
        self._all_timestamps: List[float] = []
        self._all_dirty = False

    def record(self, update: BgpUpdate) -> None:
        """Append one observed update."""
        prefix = update.route.prefix
        updates = self._updates.get(prefix)
        if updates is None:
            updates = self._updates[prefix] = []
            self._index_prefix(prefix)
        if updates and update.timestamp < updates[-1].timestamp:
            self._sorted = False
        updates.append(update)
        if update.timestamp < self._max_timestamp:
            self.stale_generation += 1
        else:
            self._max_timestamp = update.timestamp
        self._state_index.pop(prefix, None)
        self._all_dirty = True

    def record_many(self, updates: Iterable[BgpUpdate]) -> None:
        """Append several observed updates."""
        for update in updates:
            self.record(update)

    def announce(
        self,
        timestamp: float,
        prefix: str,
        egress_router: str,
        next_hop: str = "",
        local_pref: int = 100,
        as_path_len: int = 1,
    ) -> None:
        """Convenience wrapper to record an announcement."""
        self.record(
            BgpUpdate(
                timestamp=timestamp,
                route=BgpRoute(prefix, egress_router, next_hop, local_pref, as_path_len),
            )
        )

    def withdraw(self, timestamp: float, prefix: str, egress_router: str) -> None:
        """Record a withdrawal of a prefix from one egress."""
        self.record(
            BgpUpdate(
                timestamp=timestamp,
                route=BgpRoute(prefix, egress_router),
                withdrawn=True,
            )
        )

    # ------------------------------------------------------------------
    # indexes

    def _index_prefix(self, prefix: str) -> None:
        """Add a newly-seen prefix to the longest-prefix-match table."""
        try:
            network, prefix_len = parse_prefix(prefix)
        except ValueError:
            return  # unparseable prefixes can never match a destination
        bucket = self._by_plen.get(prefix_len)
        if bucket is None:
            bucket = self._by_plen[prefix_len] = {}
            self._plens_desc = sorted(self._by_plen, reverse=True)
        entries = bucket.setdefault(network, [])
        if prefix not in entries:
            bisect.insort(entries, prefix)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            for prefix, updates in self._updates.items():
                updates.sort(key=lambda u: u.timestamp)
            self._state_index.clear()
            self._sorted = True

    def _state(self, prefix: str) -> Tuple[List[float], List[Tuple[BgpRoute, ...]]]:
        """The (timestamps, live-route-sets) index for one prefix.

        Built incrementally in one pass over the prefix's updates:
        entry *i* is the live route set after applying updates[0..i]
        (latest update per egress wins).  Any new update for the prefix
        drops the entry, so the cost is amortized over the queries
        between mutations instead of paid per call.
        """
        self._ensure_sorted()
        entry = self._state_index.get(prefix)
        if entry is None:
            updates = self._updates.get(prefix, [])
            timestamps = [u.timestamp for u in updates]
            states: List[Tuple[BgpRoute, ...]] = []
            latest: Dict[str, BgpUpdate] = {}
            for update in updates:
                latest[update.route.egress_router] = update
                states.append(
                    tuple(u.route for u in latest.values() if not u.withdrawn)
                )
            entry = (timestamps, states)
            self._state_index[prefix] = entry
        return entry

    # ------------------------------------------------------------------
    # queries

    def prefixes(self) -> List[str]:
        """All prefixes ever seen in the feed, sorted."""
        return sorted(self._updates)

    def prefix_version_at(self, prefix: str, timestamp: float) -> int:
        """Updates applied to ``prefix`` at or before ``timestamp``.

        Two instants with the same version see the identical route set
        for the prefix (under one :attr:`stale_generation`), so caches
        can key on ``(stale_generation, version)`` instead of raw time.
        """
        timestamps, _ = self._state(prefix)
        return bisect.bisect_right(timestamps, timestamp)

    def version_at(self, timestamp: float) -> int:
        """Updates applied across *all* prefixes at or before ``timestamp``."""
        self._ensure_sorted()
        if self._all_dirty:
            merged: List[float] = []
            for updates in self._updates.values():
                merged.extend(u.timestamp for u in updates)
            merged.sort()
            self._all_timestamps = merged
            self._all_dirty = False
        return bisect.bisect_right(self._all_timestamps, timestamp)

    def routes_at(self, prefix: str, timestamp: float) -> List[BgpRoute]:
        """Routes for ``prefix`` still announced as of ``timestamp``.

        One bisect into the per-prefix state index; the latest update
        from each egress wins (an egress either currently announces or
        has withdrawn).
        """
        timestamps, states = self._state(prefix)
        cutoff = bisect.bisect_right(timestamps, timestamp)
        if cutoff == 0:
            return []
        return list(states[cutoff - 1])

    def match_prefix(self, address: str, timestamp: float) -> Optional[str]:
        """Most specific prefix covering ``address`` with live routes.

        Probes the per-length tables from longest to shortest: one mask
        and one hash lookup per prefix length present in the feed,
        instead of parsing and testing every prefix ever seen.
        """
        value = ip_to_int(address)
        for prefix_len in self._plens_desc:
            network = value & prefix_mask(prefix_len)
            for prefix in self._by_plen[prefix_len].get(network, ()):
                if self.routes_at(prefix, timestamp):
                    return prefix
        return None

    def updates_between(self, start: float, end: float) -> List[BgpUpdate]:
        """All updates in a window, across prefixes, in time order."""
        self._ensure_sorted()
        result: List[BgpUpdate] = []
        for prefix in self._updates:
            timestamps, _ = self._state(prefix)
            lo = bisect.bisect_left(timestamps, start)
            hi = bisect.bisect_right(timestamps, end)
            result.extend(self._updates[prefix][lo:hi])
        result.sort(key=lambda u: u.timestamp)
        return result


#: Sentinel for "no egress seen yet" in :meth:`BgpEmulator.egress_timeline`
#: — distinct from ``None``, which is a real outcome ("no route").
_NO_EGRESS_YET = object()


@dataclass
class BgpEmulator:
    """Emulated BGP decision process at ingress routers.

    Best-path selection follows the standard order restricted to the
    attributes the reflector feed carries: highest local preference,
    shortest AS path, lowest IGP (hot-potato) distance to the egress,
    then lowest egress router name as the deterministic router-id stand-in.
    """

    log: BgpUpdateLog
    ospf: OspfSimulator
    _decision_cache: Dict[Tuple, BgpDecision] = field(
        default_factory=dict, repr=False
    )

    def lookup_prefix(self, dest_ip: str, timestamp: float) -> Optional[str]:
        """Longest-prefix match over prefixes with live routes."""
        return self.log.match_prefix(dest_ip, timestamp)

    def best_egress(
        self, ingress_router: str, dest_ip: str, timestamp: float
    ) -> BgpDecision:
        """The egress the ingress router would pick for a destination IP."""
        prefix = self.lookup_prefix(dest_ip, timestamp)
        if prefix is None:
            return BgpDecision(prefix="", route=None)
        return self.best_egress_for_prefix(ingress_router, prefix, timestamp)

    def best_egress_for_prefix(
        self, ingress_router: str, prefix: str, timestamp: float
    ) -> BgpDecision:
        """Best-path selection for a known prefix.

        Cached under the exact state the decision depends on: the OSPF
        weight version (hot-potato distances) and the per-prefix update
        version (candidate routes).  Keying on the update version — not
        just "is the cached route still announced" — means a *better*
        route announced after caching (higher local-pref, shorter AS
        path) correctly busts the entry and flips the egress.
        """
        history = self.ospf.history
        cache_key = (
            ingress_router,
            prefix,
            self.ospf.generation,
            history.stale_generation,
            history.version_at(timestamp),
            self.log.stale_generation,
            self.log.prefix_version_at(prefix, timestamp),
        )
        cached = self._decision_cache.get(cache_key)
        if cached is not None:
            return cached
        routes = self.log.routes_at(prefix, timestamp)
        if not routes:
            return BgpDecision(prefix=prefix, route=None)

        def sort_key(route: BgpRoute) -> Tuple[int, int, int, str]:
            distance = self.ospf.distance(ingress_router, route.egress_router, timestamp)
            if distance is None:
                distance = 1 << 30  # unreachable egress loses hot-potato
            return (-route.local_pref, route.as_path_len, distance, route.egress_router)

        best = min(routes, key=sort_key)
        distance = self.ospf.distance(ingress_router, best.egress_router, timestamp)
        decision = BgpDecision(prefix=prefix, route=best, igp_distance=distance)
        self._decision_cache[cache_key] = decision
        return decision

    def egress_timeline(
        self, ingress_router: str, dest_ip: str, start: float, end: float
    ) -> List[Tuple[float, Optional[str]]]:
        """(timestamp, egress) at ``start`` and after each relevant change.

        This is how "BGP egress change" diagnostic events are validated
        against the emulated decision process.  The first entry always
        reports the state at ``start`` — including ``(start, None)``
        when no route exists yet.
        """
        points = [start]
        prefix = self.lookup_prefix(dest_ip, start) or self.lookup_prefix(dest_ip, end)
        for update in self.log.updates_between(start, end):
            if prefix is None or update.route.prefix == prefix:
                points.append(update.timestamp)
        timeline: List[Tuple[float, Optional[str]]] = []
        last: object = _NO_EGRESS_YET
        for point in sorted(set(points)):
            egress = self.best_egress(ingress_router, dest_ip, point).egress_router
            if egress != last:
                timeline.append((point, egress))
                last = egress
        return timeline
