"""Routing substrate: OSPF SPF/ECMP simulation, BGP decision emulation
and the combined path service used by the spatial model."""

from .bgp import BgpDecision, BgpEmulator, BgpRoute, BgpUpdate, BgpUpdateLog
from .epoch import RoutingEpoch
from .ospf import (
    COST_OUT_WEIGHT,
    DEFAULT_WEIGHT,
    EcmpPaths,
    OspfSimulator,
    WeightChange,
    WeightHistory,
    reconvergence_windows,
)
from .paths import IngressMap, PathElements, PathService

__all__ = [
    "BgpDecision",
    "BgpEmulator",
    "BgpRoute",
    "BgpUpdate",
    "BgpUpdateLog",
    "COST_OUT_WEIGHT",
    "DEFAULT_WEIGHT",
    "EcmpPaths",
    "IngressMap",
    "OspfSimulator",
    "PathElements",
    "PathService",
    "RoutingEpoch",
    "WeightChange",
    "WeightHistory",
    "reconvergence_windows",
]
