#!/usr/bin/env python3
"""Domain-knowledge building via statistical correlation (Section IV-B,
Fig. 7).

A router-software bug makes a routine provisioning activity
occasionally time out customer BGP sessions via a CPU spike.  The
incidents are buried among thousands of ordinary flaps.  This example
reproduces the paper's two-step workflow:

1. the Generic RCA Engine classifies every flap;
2. the Correlation Tester (NICE circular-permutation test) runs blindly
   between the *prefiltered* CPU-related flaps and every candidate
   signature series.

The provisioning association is significant only after prefiltering —
"by instead focusing on a small subset of the BGP flaps, the
correlation signal is amplified, revealing the hidden issue."

Run:  python examples/rule_mining.py
"""

from collections import Counter

from repro.apps import BgpFlapApp
from repro.apps.studies import cpu_correlation_study
from repro.simulation import cpu_bgp_study


def main() -> None:
    print("simulating three months of flaps with a hidden provisioning bug ...")
    result = cpu_bgp_study(seed=4)
    platform = result.platform()
    app = BgpFlapApp.build(platform)

    diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))
    counts = Counter(d.primary_cause for d in diagnoses)
    print(f"\nstep 1 — engine classified {len(diagnoses)} flaps:")
    for cause, count in counts.most_common():
        print(f"  {cause:<25} {count}")

    print("\nstep 2 — blind correlation test against all candidate series ...")
    study = cpu_correlation_study(app, diagnoses, result.start, result.end)
    print(f"  candidate series: {study.n_candidates}")
    print(f"  CPU-related flaps (prefiltered subset): {study.n_cpu_related}")

    pre = study.prefiltered_result("provisioning.port_turnup")
    unf = study.unfiltered_result("provisioning.port_turnup")
    print("\nprovisioning activity vs CPU-related flaps (prefiltered):")
    print(f"  {pre}")
    print("provisioning activity vs ALL flaps (unfiltered):")
    print(f"  {unf}")

    print("\nall significant associations in the prefiltered test:")
    for mined in study.significant_prefiltered():
        print(f"  {mined}")


if __name__ == "__main__":
    main()
