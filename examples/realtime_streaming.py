#!/usr/bin/env python3
"""Real-time root cause analysis (Section VI extension).

Replays a day of telemetry feed-by-feed into the Data Collector, the
way a live transport would deliver it, while a :class:`StreamingRca`
advances its watermark every 15 simulated minutes: each symptom is
diagnosed as soon as it has *settled* (its lagging evidence — hold
timers, SNMP polls — has had time to arrive).

Run:  python examples/realtime_streaming.py
"""

import random

from repro import DataCollector, GrcaPlatform, TopologyParams, build_topology
from repro.apps import BgpFlapApp
from repro.core import StreamingConfig, StreamingRca
from repro.core.streaming import FeedReplayer
from repro.simulation.faults import FaultInjector
from repro.simulation.telemetry import BASE_EPOCH, TelemetryEmitter


def main() -> None:
    topo = build_topology(
        TopologyParams(n_pops=4, pers_per_pop=2, customers_per_per=5, seed=7)
    )
    emitter = TelemetryEmitter(topo, random.Random(7))
    injector = FaultInjector(topo, emitter, random.Random(8))

    # a day of scattered faults
    rng = random.Random(9)
    customers = sorted(topo.customer_attachments)
    recipes = [
        injector.bgp_interface_flap,
        injector.bgp_lineproto_flap,
        injector.bgp_cpu_spike,
        injector.bgp_unknown,
    ]
    day = 86400.0
    injected = 0
    for i in range(24):
        t = BASE_EPOCH + (i + 0.5) * day / 24.0
        injected += len(rng.choice(recipes)(t, rng.choice(customers)))
    print(f"injected {injected} faults across one simulated day")

    collector = DataCollector()
    for router in topo.network.routers.values():
        collector.registry.register_device(router.name, router.timezone)
    platform = GrcaPlatform.from_collector(topo, collector, config_time=BASE_EPOCH)
    app = BgpFlapApp.build(platform)

    def announce(diagnosis):
        lag = now - diagnosis.symptom.end
        print(
            f"  [{(diagnosis.symptom.start - BASE_EPOCH) / 3600.0:5.2f} h] "
            f"{diagnosis.symptom.location.parts[0]} -> "
            f"{diagnosis.primary_cause} (diagnosed {lag / 60.0:.0f} min later)"
        )

    streaming = StreamingRca(
        app.engine,
        StreamingConfig(settle_seconds=420.0),
        on_diagnosis=announce,
        start=BASE_EPOCH,
    )
    replayer = FeedReplayer(collector, emitter.buffers.replay_order())

    print("replaying feeds in 15-minute ticks:\n")
    now = BASE_EPOCH
    while now < BASE_EPOCH + day + 3600.0:
        now += 900.0
        replayer.deliver_until(now)
        platform.refresh_routing()
        streaming.advance(now)

    print(f"\ndiagnosed {streaming.diagnosed_count} symptoms in streaming mode")


if __name__ == "__main__":
    main()
