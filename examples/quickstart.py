#!/usr/bin/env python3
"""Quickstart: diagnose a month of simulated eBGP flaps.

Simulates a small tier-1 ISP with the paper's Table IV root-cause
mixture, wires the G-RCA platform from the collected telemetry, builds
the BGP flap RCA application (Fig. 4), and prints the root-cause
breakdown — the same view Table IV reports.

Run:  python examples/quickstart.py
"""

from repro import TopologyParams, bgp_month
from repro.apps import BgpFlapApp


def main() -> None:
    print("simulating a month of eBGP flaps on a synthetic tier-1 ISP ...")
    result = bgp_month(
        total_flaps=400,
        params=TopologyParams(n_pops=5, pers_per_pop=2, customers_per_per=6, seed=1),
        seed=1,
    )
    store = result.collector.store
    print(f"  collected {store.total_records()} records "
          f"across {len(store.tables)} data sources")

    platform = result.platform()
    app = BgpFlapApp.build(platform)
    browser = app.run(result.start, result.end)

    print(f"\ndiagnosed {len(browser)} eBGP flaps; root-cause breakdown:\n")
    print(browser.format_breakdown())

    print(f"\nexplained: {100 * browser.explained_fraction():.1f}% of flaps")

    # the Result Browser can explain any single diagnosis
    example = browser.with_cause("Interface flap").diagnoses[0]
    print("\nexample diagnosis trace:")
    print(example.explain())


if __name__ == "__main__":
    main()
