#!/usr/bin/env python3
"""MVPN PIM adjacency-change analysis (Section III-C).

Thousands of PIM neighbor adjacency changes arrive per day; most are
benign (customer disconnects), some indicate real problems.  This
example reproduces the Table VIII classification over two simulated
weeks, then uses the Result Browser's filtering to focus on what is
left unexplained — the iterative-analysis workflow of Section IV-A.

Run:  python examples/pim_mvpn_analysis.py
"""

from repro.apps import PimApp
from repro.simulation import pim_fortnight


def main() -> None:
    print("simulating two weeks of MVPN PIM adjacency changes ...")
    result = pim_fortnight(total_changes=400, seed=3)
    platform = result.platform()
    app = PimApp.build(platform)

    browser = app.run(result.start, result.end)
    print(f"\ndiagnosed {len(browser)} adjacency changes:\n")
    print(browser.format_breakdown())

    coverage = browser.explained_fraction()
    print(f"\nclassification coverage: {100 * coverage:.1f}% (paper: >98%)")

    # iterative analysis: set the explained events aside, drill into the rest
    unexplained = browser.unexplained()
    print(f"\n{len(unexplained)} changes remain unexplained; drilling into one:")
    if unexplained.diagnoses:
        diagnosis = unexplained.diagnoses[0]
        nearby = browser.drill_down(platform.store, diagnosis, window_seconds=300.0)
        for table, records in nearby.items():
            print(f"  {table}: {len(records)} records near the event")

    # trending per day, per cause — the chronic-issue view
    print("\ndaily trend (events per cause per day):")
    print(browser.format_trend(bucket_seconds=86400.0))


if __name__ == "__main__":
    main()
