#!/usr/bin/env python3
"""Finding an unobservable root cause with Bayesian inference
(Section IV-C, Fig. 8).

A line card crashes and every customer session on it flaps within three
minutes.  No crash signature is in the Knowledge Library, so rule-based
reasoning diagnoses each flap as "Interface flap".  The Bayesian engine
— configured with the virtual root causes of Fig. 8 and examining the
grouped flaps *jointly* — identifies the common "Line-card Issue".

Run:  python examples/bayesian_linecard.py
"""

from repro.apps import BgpFlapApp
from repro.simulation import linecard_crash


def main() -> None:
    print("simulating a month of flaps including one line-card crash ...")
    result = linecard_crash(seed=5, n_background_flaps=150)
    crash_card = f"{result.extras['crash_router']}:slot{result.extras['crash_slot']}"
    print(f"  (ground truth: card {crash_card} crashed, unobservably)")

    platform = result.platform()
    app = BgpFlapApp.build(platform)
    diagnoses = app.engine.diagnose_all(app.find_symptoms(result.start, result.end))

    groups = app.group_by_line_card(diagnoses)
    print(f"\nrule-based reasoning over {len(diagnoses)} flaps; "
          f"{len(groups)} line-card groups of near-simultaneous flaps found")

    for card, group in groups:
        rule_based = sorted({d.primary_cause for d in group})
        verdict = app.classify_group_bayesian(card, group)
        print(f"\n  card {card}: {len(group)} flaps within minutes")
        print(f"    rule-based per-flap diagnosis : {', '.join(rule_based)}")
        print(f"    Bayesian joint diagnosis      : {verdict.best} "
              f"(log-likelihood margin {verdict.margin():.1f})")
        for name, score in verdict.scores:
            print(f"      {name:<18} {score:>8.1f}")

    # an isolated flap still classifies as a plain interface issue
    engine = app.bayesian_engine()
    single = engine.classify({"Interface flap", "Line protocol flap"})
    print(f"\nisolated flap, for contrast: {single.best}")


if __name__ == "__main__":
    main()
