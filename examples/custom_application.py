#!/usr/bin/env python3
"""Building a brand-new RCA application from the Knowledge Library.

The paper's pitch: new problems become new RCA tools "via simple
configuration".  This example builds a *link packet-loss* RCA tool from
scratch — a symptom ("Link loss alarm") and two candidate causes, both
pulled from the Table II rule library — using only the rule
specification language, then runs it against hand-injected telemetry.

Run:  python examples/custom_application.py
"""

import random

from repro import DataCollector, GrcaPlatform, TopologyParams, build_topology
from repro.core import RcaEngine, ResultBrowser
from repro.core.engine import EngineConfig
from repro.core.events import RetrievalContext
from repro.core.knowledge import names
from repro.core.rulespec import SpecCompiler
from repro.simulation.telemetry import BASE_EPOCH, TelemetryEmitter

LINK_LOSS_SPEC = f'''
application "link-loss-triage"
symptom "{names.LINK_LOSS}"

# both rules come straight from the Knowledge Library (Table II);
# congestion-induced overflow outranks a flapping line protocol
rule "{names.LINK_LOSS}" -> "{names.LINK_CONGESTION}" use library priority 90
rule "{names.LINK_LOSS}" -> "{names.LINEPROTO_FLAP}" use library priority 80
'''


def main() -> None:
    topo = build_topology(TopologyParams(n_pops=3, pers_per_pop=1, seed=6))
    emitter = TelemetryEmitter(topo, random.Random(6))
    t = BASE_EPOCH + 3600.0
    network = topo.network

    # pick three in-network interfaces to afflict
    links = sorted(network.logical_links)
    ifaces = [network.logical_links[name].interface_a for name in links[:3]]

    # case 1: congestion-driven loss
    router, _, port = ifaces[0].partition(":")
    emitter.snmp(t, router, "link_util", port, 96.0)
    emitter.snmp(t, router, "corrupted_packets", port, 800.0)
    # case 2: a flapping line protocol corrupting packets
    emitter.line_protocol_flap(t - 30.0, ifaces[1], duration=20.0)
    router2, _, port2 = ifaces[1].partition(":")
    emitter.snmp(t, router2, "corrupted_packets", port2, 300.0)
    # case 3: loss with no visible cause
    router3, _, port3 = ifaces[2].partition(":")
    emitter.snmp(t, router3, "corrupted_packets", port3, 500.0)

    collector = DataCollector()
    for r in network.routers.values():
        collector.registry.register_device(r.name, r.timezone)
    emitter.buffers.ingest_into(collector)
    platform = GrcaPlatform.from_collector(topo, collector)

    # compile the DSL spec into a diagnosis graph and build the engine
    compiler = SpecCompiler(platform.knowledge.events, platform.knowledge.rules)
    graph = compiler.compile_text(LINK_LOSS_SPEC)
    engine = RcaEngine(
        graph=graph,
        library=platform.knowledge.events,
        resolver=platform.resolver,
        store=platform.store,
        config=EngineConfig(services=platform.services),
    )

    context = RetrievalContext(
        store=platform.store, start=t - 3600, end=t + 3600,
        services=platform.services,
    )
    symptoms = platform.knowledge.events.get(names.LINK_LOSS).retrieve(context)
    browser = ResultBrowser(engine.diagnose_all(symptoms))

    print(f"new application {graph.name!r} built from "
          f"{len(graph.all_rules())} library rules\n")
    print(f"diagnosed {len(browser)} link-loss alarms:\n")
    print(browser.format_breakdown())
    for diagnosis in browser.diagnoses:
        print()
        print(diagnosis.explain())


if __name__ == "__main__":
    main()
