#!/usr/bin/env python3
"""Aggregate SQM: from probe losses to an investment decision.

The paper's introduction motivates SQM with exactly this workflow:
examine a month of sporadic packet losses between PoPs, diagnose their
root causes in bulk, and decide — capacity augmentation if congestion
dominates, MPLS fast reroute if routing reconvergence does.

The RCA application behind it is three lines of rule-spec, every rule
pulled from the Knowledge Library.

Run:  python examples/backbone_capacity_planning.py
"""

from repro.apps import BackboneApp
from repro.apps.backbone import BACKBONE_LOSS_SPEC
from repro.simulation import backbone_probe_month


def main() -> None:
    print("the whole application specification:")
    print(BACKBONE_LOSS_SPEC)

    print("simulating a month of inter-PoP probe measurements ...")
    result = backbone_probe_month(total_losses=150, seed=17)
    app = BackboneApp.build(result.platform())
    browser = app.run(result.start, result.end)

    print(f"\ndiagnosed {len(browser)} loss-increase events:\n")
    print(browser.format_breakdown())

    advice = BackboneApp.advise(browser)
    print(f"\ncongestion share     : {advice.congestion_share:.1f}%")
    print(f"reconvergence share  : {advice.reconvergence_share:.1f}%")
    print(f"recommendation       : {advice.recommendation}")


if __name__ == "__main__":
    main()
