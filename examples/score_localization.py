#!/usr/bin/env python3
"""Evidence-free localization with a SCORE-style risk model.

Section V: "G-RCA could actually incorporate SCORE-like algorithms to
infer what is happening if there is no direct evidence."  Here a
layer-1 access device degrades *silently* — it emits no restoration
log, so the diagnosis graph has nothing to join — yet every customer
circuit riding it flaps within a minute.  The shared-risk set cover
over the flapped interfaces points straight at the device.

Run:  python examples/score_localization.py
"""

import random
from collections import Counter

from repro import DataCollector, GrcaPlatform, TopologyParams, build_topology
from repro.apps import BgpFlapApp
from repro.core.locations import Location
from repro.core.reasoning.score import ScoreEngine, risk_groups_from_topology
from repro.simulation.faults import FaultInjector
from repro.simulation.telemetry import BASE_EPOCH, TelemetryEmitter


def main() -> None:
    topo = build_topology(
        TopologyParams(
            n_pops=3, pers_per_pop=2, customers_per_per=8,
            access_sonet_fraction=0.5, seed=13,
        )
    )
    emitter = TelemetryEmitter(topo, random.Random(13))
    injector = FaultInjector(topo, emitter, random.Random(14))
    t = BASE_EPOCH + 3600.0

    # the silent failure: every circuit on one access ADM flaps, but the
    # device logs nothing (stale inventory / unmonitored box)
    device = sorted(set(topo.customer_layer1.values()))[0]
    victims = sorted(c for c, d in topo.customer_layer1.items() if d == device)
    print(f"silent degradation on {device}: {len(victims)} circuits ride it")
    flapped = []
    rng = random.Random(15)
    for customer in victims:
        _per, iface, _ip = topo.customer_attachments[customer]
        emitter.interface_flap(t + rng.uniform(0, 60.0), iface, rng.uniform(10, 40))
        flapped.append(iface)
    # plus unrelated background flaps elsewhere
    others = [c for c in sorted(topo.customer_attachments) if c not in victims]
    for customer in others[:3]:
        _per, iface, _ip = topo.customer_attachments[customer]
        emitter.interface_flap(t + rng.uniform(7200, 9000), iface, 20.0)

    collector = DataCollector()
    for router in topo.network.routers.values():
        collector.registry.register_device(router.name, router.timezone)
    emitter.buffers.ingest_into(collector)
    platform = GrcaPlatform.from_collector(topo, collector, config_time=BASE_EPOCH)

    # step 1: the diagnosis graph has no layer-1 evidence to join
    app = BgpFlapApp.build(platform)
    print("\nstep 1 — the diagnosis graph finds no layer-1 evidence "
          "(the device logged nothing)")

    # step 2: shared-risk set cover over the near-simultaneous flaps
    locations = [Location.interface(fq) for fq in flapped]
    groups = risk_groups_from_topology(platform.resolver, locations, t)
    # a circuit failure flaps BOTH its end interfaces, but only the
    # provider-side ones are in the ISP's syslog, so a fully failed
    # device shows a hit ratio of ~0.5 over its blast radius
    engine = ScoreEngine(groups, min_hit_ratio=0.45)
    result = engine.localize({str(l) for l in locations})

    print(f"step 2 — risk model: {len(groups)} candidate risk groups "
          "(layer-1 devices, line cards, routers)\n")
    for hypothesis in result.hypotheses:
        print(f"  blamed: {hypothesis.group.name} ({hypothesis.group.kind}) — "
              f"explains {len(hypothesis.explained)} failures, "
              f"hit ratio {hypothesis.hit_ratio:.2f}")
    print(f"  unexplained: {len(result.unexplained)}")
    verdict = Counter(h.group.name for h in result.hypotheses)
    assert device in verdict, "expected the silent ADM to be localized"
    print(f"\nthe silent device {device} is correctly localized")


if __name__ == "__main__":
    main()
