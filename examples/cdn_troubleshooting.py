#!/usr/bin/env python3
"""CDN service impairment troubleshooting (Section III-B).

Simulates a month of CDN RTT measurements between end-users and a CDN
node, with degradations caused by policy changes, inter-domain routing
changes, congestion, loss, flaps and reconvergence — plus the dominant
category, problems outside the provider's network.  Reproduces the
Table VI breakdown and demonstrates diagnosing an operator-entered
event (a customer-service call rather than a monitor detection).

Run:  python examples/cdn_troubleshooting.py
"""

from repro.apps import CdnApp
from repro.simulation import cdn_month


def main() -> None:
    print("simulating a month of CDN RTT measurements ...")
    result = cdn_month(total_degradations=300, n_clients=24, seed=2)
    platform = result.platform()
    app = CdnApp.build(platform)

    browser = app.run(result.start, result.end)
    print(f"\ndetected and diagnosed {len(browser)} RTT degradations:\n")
    print(browser.format_breakdown())

    unknown = browser.unexplained()
    print(
        f"\n{100 * len(unknown) / len(browser):.1f}% show no in-network "
        "evidence -> outside the provider's network (paper: 74.83%)"
    )

    # Section III-B: operators can enter an event of interest directly
    clients = result.extras["clients"]
    pairs = result.extras["pairs"]
    server, client = pairs[0]
    client_ip = clients[client][0]
    explained = browser.filter(explained=True).diagnoses[0]
    window = (explained.symptom.start, explained.symptom.end)
    print("\noperator-entered event (e.g. from a customer call):")
    print(f"  server={server} client={client_ip} window={window}")
    diagnosis = app.diagnose_manual_event(window[0], window[1], server, client_ip)
    print(f"  diagnosis: {diagnosis.primary_cause}")


if __name__ == "__main__":
    main()
