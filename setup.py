"""Setup shim: enables `python setup.py develop` in offline environments
where the `wheel` package (required for PEP 660 editable installs) is
unavailable. Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
